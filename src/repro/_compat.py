"""Deprecation shims for public-API signature changes.

Policy (documented in ``docs/architecture.md``, "Deprecation policy"):
a changed public signature keeps accepting the old calling convention
for **one release**, routed through this module so every shim warns a
:class:`DeprecationWarning` exactly once per process and per call site
kind, then behaves exactly like the new convention. The next release
deletes the shim.

Current shims:

* ``MorphingSession(engine, aggregation, ...)`` positional configuration
  arguments — the session's config is keyword-only as of 1.1; positional
  values after ``engine`` are remapped here.
* ``compare_baseline_and_morphed(..., aggregation)`` positional
  ``aggregation`` — same keyword-only migration.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["positional_config", "warn_once"]

#: Shim keys that have already warned in this process.
_warned: set[str] = set()


def _reset() -> None:
    """Forget emitted warnings (test isolation hook, not public API)."""
    _warned.clear()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process.

    The standard ``default`` warning filter already dedupes per call
    site, but test runners routinely reset filters; tracking emitted
    keys here keeps the "warns exactly once" contract independent of
    the ambient filter state.
    """
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def positional_config(
    func: str, names: tuple[str, ...], args: tuple[Any, ...]
) -> dict[str, Any]:
    """Map deprecated positional config arguments onto keyword names.

    ``names`` is the old positional order. Returns the remapped
    ``{name: value}`` dict after warning once for this function.
    """
    if len(args) > len(names):
        raise TypeError(
            f"{func}() takes at most {len(names)} positional "
            f"configuration arguments ({len(args)} given)"
        )
    warn_once(
        f"{func}:positional",
        f"passing configuration to {func}() positionally is deprecated "
        f"and will be removed in the next release; use keyword arguments "
        f"({', '.join(names[: len(args)])})",
        stacklevel=4,
    )
    return dict(zip(names, args))
