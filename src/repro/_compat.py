"""Deprecation shims for public-API signature changes.

Policy (documented in ``docs/architecture.md``, "Deprecation policy"):
a changed public signature keeps accepting the old calling convention
for **one release**, routed through this module so every shim warns a
:class:`DeprecationWarning` exactly once per process and per call site
kind, then behaves exactly like the new convention. The next release
deletes the shim.

Current shims:

* ``repro.run(..., workers=4, trace=...)`` loose configuration keywords
  — consolidated into the typed :class:`repro.RunOptions` as of 1.2;
  each legacy keyword is remapped onto the matching ``RunOptions`` field
  here, warning once **per keyword**.
* ``MorphingSession(engine, aggregation, ...)`` positional configuration
  arguments — the session's config is keyword-only as of 1.1; positional
  values after ``engine`` are remapped here.
* ``compare_baseline_and_morphed(..., aggregation)`` positional
  ``aggregation`` — same keyword-only migration.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["positional_config", "run_options_from_kwargs", "warn_once"]

#: The legacy ``repro.run()`` keywords, each now a ``RunOptions`` field.
RUN_OPTION_KWARGS = (
    "aggregation",
    "morph",
    "strategy",
    "workers",
    "margin",
    "cache",
    "plan_cache",
    "trace",
    "progress",
    "batch_roots",
    "deadline_seconds",
    "checkpoint",
    "retry",
    "faults",
)

#: Shim keys that have already warned in this process.
_warned: set[str] = set()


def _reset() -> None:
    """Forget emitted warnings (test isolation hook, not public API)."""
    _warned.clear()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process.

    The standard ``default`` warning filter already dedupes per call
    site, but test runners routinely reset filters; tracking emitted
    keys here keeps the "warns exactly once" contract independent of
    the ambient filter state.
    """
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def positional_config(
    func: str, names: tuple[str, ...], args: tuple[Any, ...]
) -> dict[str, Any]:
    """Map deprecated positional config arguments onto keyword names.

    ``names`` is the old positional order. Returns the remapped
    ``{name: value}`` dict after warning once for this function.
    """
    if len(args) > len(names):
        raise TypeError(
            f"{func}() takes at most {len(names)} positional "
            f"configuration arguments ({len(args)} given)"
        )
    warn_once(
        f"{func}:positional",
        f"passing configuration to {func}() positionally is deprecated "
        f"and will be removed in the next release; use keyword arguments "
        f"({', '.join(names[: len(args)])})",
        stacklevel=4,
    )
    return dict(zip(names, args))


def run_options_from_kwargs(options: Any, kwargs: dict[str, Any]) -> Any:
    """Fold deprecated ``repro.run`` loose keywords into a ``RunOptions``.

    Unknown keywords raise :class:`TypeError` exactly like a normal
    signature mismatch would; each known legacy keyword warns a
    :class:`DeprecationWarning` once per process, then is applied onto
    ``options`` (or fresh defaults) via :meth:`RunOptions.replace` — so
    the legacy spelling and the ``options=`` spelling take the exact
    same code path and return byte-identical results.
    """
    from repro.options import RunOptions

    unknown = sorted(set(kwargs) - set(RUN_OPTION_KWARGS))
    if unknown:
        raise TypeError(
            f"run() got unexpected keyword argument(s): {', '.join(unknown)}"
        )
    for name in sorted(kwargs):
        warn_once(
            f"run:{name}",
            f"repro.run(..., {name}=...) is deprecated and will be removed "
            f"in the next release; pass options=repro.RunOptions({name}=...) "
            "instead",
            stacklevel=5,
        )
    base = options if options is not None else RunOptions()
    return base.replace(**kwargs)
