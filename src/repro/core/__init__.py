"""The paper's core contribution: the Subgraph Morphing algebra.

Modules: ``pattern`` (pattern graphs with anti-edges), ``canonical``
(canonical forms + 64-bit pattern IDs), ``isomorphism`` (phi(p, q),
automorphisms, symmetry breaking), ``atlas`` (named patterns, motif
sets), ``generation``/``sdag`` (superpattern closure, the S-DAG),
``equations`` (Eq. 1/2 and triangular solves), ``costmodel`` (Section 5.2),
``selection`` (Algorithm 1), ``conversion`` (Algorithms 2-3),
``aggregation`` (the (lambda, +) abstraction).
"""
