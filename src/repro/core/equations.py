"""The morphing equations (Section 4.3, Figure 7).

For a pattern ``p`` on ``n`` vertices, the matches of the edge-induced
variant partition disjointly over the vertex-induced variants of its
superpattern closure (Eq. 1):

    M(pᴱ) = ⨆_{q ⊇ₙ p} M(qⱽ) ∘ φ(p, q)

so for any aggregation the edge-induced result is the combination of the
vertex-induced superpattern results. For *counting*, where the combine
operator has an inverse, the system is triangular and can be solved in
either direction, which is what lets alternative sets mix edge- and
vertex-induced measurements ([SM-E3], [SM-V1]). This module implements:

* :func:`closure_coefficients` — the row of the triangular matrix ``A``
  with ``countᴱ = A · countⱽ``;
* :func:`solve_query` — symbolic triangular solve expressing a query's
  count as an integer combination of an arbitrary measured set;
* :func:`morph_equation` — human-readable equations like [SM-E1].

Items are ``(skeleton, variant)`` pairs; skeletons are canonical
edge-induced patterns and variants are ``"E"``/``"V"``. Cliques are both
at once and normalize to ``"E"``.
"""

from __future__ import annotations

from repro.core.atlas import pattern_name
from repro.core.generation import skeleton, superpattern_closure
from repro.core.isomorphism import occurrence_count
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED

Item = tuple[Pattern, str]


class UnderivableError(ValueError):
    """A query's result cannot be reconstructed from the measured set."""


def normalize_item(skel: Pattern, variant: str) -> Item:
    """Canonicalize an item; cliques are E- and V-induced simultaneously."""
    if variant not in (EDGE_INDUCED, VERTEX_INDUCED):
        raise ValueError(f"unknown variant {variant!r}")
    skel = skeleton(skel)
    if skel.is_clique:
        return (skel, EDGE_INDUCED)
    return (skel, variant)


def item_of(pattern: Pattern) -> Item:
    """The (skeleton, variant) item describing a concrete query pattern.

    Patterns that are neither pure edge-induced nor pure vertex-induced
    (a partial sprinkling of anti-edges) are outside the morphing algebra
    and rejected.
    """
    if pattern.is_edge_induced:
        return normalize_item(pattern, EDGE_INDUCED)
    if pattern.is_vertex_induced:
        return normalize_item(pattern, VERTEX_INDUCED)
    raise ValueError(
        "morphing requires a fully edge-induced or fully vertex-induced "
        f"pattern, got mixed anti-edges: {pattern!r}"
    )


def materialize(item: Item) -> Pattern:
    """Concrete pattern (with anti-edges when vertex-induced) for an item."""
    skel, variant = item
    return skel if variant == EDGE_INDUCED else skel.vertex_induced()


def closure_coefficients(skel: Pattern) -> list[tuple[Pattern, int]]:
    """Pairs ``(q, c(p, q))`` with ``countᴱ(p) = Σ c(p, q) · countⱽ(q)``.

    ``q`` ranges over the superpattern closure of ``p`` (including ``p``
    itself, coefficient 1); ``c(p, q)`` counts the distinct occurrences of
    ``p`` inside ``q`` (Figure 7's coefficients).
    """
    skel = skeleton(skel)
    out = []
    for q in superpattern_closure(skel):
        coeff = occurrence_count(skel, q)
        if coeff:
            out.append((q, coeff))
    return out


def solve_query(
    query: Item,
    measured: frozenset[Item] | set[Item],
) -> dict[Item, int]:
    """Express a query count as an integer combination of measured items.

    Returns ``{measured_item: coefficient}`` such that

        count(query) = Σ coefficient · count(measured_item).

    The solve runs densest-first over the query's superpattern closure:
    every node's vertex-induced count is either measured directly or
    rearranged from the node's measured edge-induced count minus its
    already-solved strict superpatterns ([SM-V1] direction). Raises
    :class:`UnderivableError` when the measured set does not determine the
    query — Algorithm 1 never produces such sets, but user-supplied ones
    might.
    """
    measured = {normalize_item(*m) for m in measured}
    query = normalize_item(*query)
    q_skel, q_variant = query

    if query in measured:
        return {query: 1}

    # cv_expr[skeleton] = {measured_item: coefficient} for countV(skeleton),
    # or None when the measured set does not determine that node.
    closure = sorted(superpattern_closure(q_skel), key=lambda p: -p.num_edges)
    cv_expr: dict[Pattern, dict[Item, int] | None] = {}
    for node in closure:
        v_item = normalize_item(node, VERTEX_INDUCED)
        e_item = normalize_item(node, EDGE_INDUCED)
        if v_item in measured:
            cv_expr[node] = {v_item: 1}
        elif e_item in measured:
            # Rearranged Eq. 1: countV(p) = countE(p) - Σ c(p,q)·countV(q).
            expr: dict[Item, int] | None = {e_item: 1}
            for sup, coeff in closure_coefficients(node):
                if sup == node:
                    continue
                sup_expr = cv_expr[sup]  # densest-first: already processed
                if sup_expr is None:
                    expr = None
                    break
                _accumulate(expr, sup_expr, -coeff)
            cv_expr[node] = expr
        else:
            cv_expr[node] = None

    def require(node: Pattern) -> dict[Item, int]:
        expr = cv_expr[node]
        if expr is None:
            raise UnderivableError(
                f"countV({pattern_name(node)}) is not derivable from the "
                "measured set"
            )
        return expr

    result: dict[Item, int] = {}
    if q_variant == VERTEX_INDUCED:
        _accumulate(result, require(q_skel), 1)
    else:
        for sup, coeff in closure_coefficients(q_skel):
            _accumulate(result, require(sup), coeff)
    return {item: c for item, c in result.items() if c}


def _accumulate(into: dict[Item, int], expr: dict[Item, int], scale: int) -> None:
    for item, coeff in expr.items():
        into[item] = into.get(item, 0) + scale * coeff
        if into[item] == 0:
            del into[item]


def evaluate(
    expression: dict[Item, int], measured_values: dict[Item, int]
) -> int:
    """Evaluate a solved expression against measured counts."""
    return sum(
        coeff * measured_values[normalize_item(*item)]
        for item, coeff in expression.items()
    )


def morph_equation(pattern: Pattern) -> str:
    """Render the Eq. 1 instance for a pattern, like Figure 7's [SM-E1]."""
    item = item_of(pattern)
    skel, variant = item
    terms = []
    if variant == EDGE_INDUCED:
        for q, coeff in closure_coefficients(skel):
            name = pattern_name(normalize_item(q, VERTEX_INDUCED)[0])
            variant_tag = "" if q.is_clique else "V"
            prefix = "" if coeff == 1 else f"{coeff}*"
            terms.append(f"{prefix}{name}{variant_tag and '^' + variant_tag}")
        return f"{pattern_name(skel)}^E = " + " + ".join(terms)
    # Vertex-induced: rearrange countV(p) = countE(p) - Σ extra terms.
    terms.append(f"{pattern_name(skel)}^E")
    for q, coeff in closure_coefficients(skel):
        if q == skel:
            continue
        name = pattern_name(q)
        variant_tag = "" if q.is_clique else "^V"
        prefix = "" if coeff == 1 else f"{coeff}*"
        terms.append(f"- {prefix}{name}{variant_tag}")
    return f"{pattern_name(skel)}^V = " + " ".join(terms)
