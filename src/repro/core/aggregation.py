"""Aggregation abstraction ``a = (λ, ⊕)`` (Section 4.3).

A graph mining application aggregates over matches: ``λ`` maps a match to
an aggregation value and ``⊕`` combines values commutatively. Subgraph
Morphing converts aggregation results directly through a permute operator
``∘*`` that adjusts a value for an isomorphic remapping of pattern
vertices (Eq. 2).

Whether ``⊕`` admits an inverse decides which morphing directions are
legal (DESIGN.md §6): counting does (integer subtraction), so counts may
be solved through any mix of variants; MNI tables and match streams do
not, so those conversions are restricted to the union direction of Eq. 1.

A match is a tuple of data vertices indexed by pattern vertex:
``match[u]`` is the data vertex that pattern vertex ``u`` mapped to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.core.pattern import Pattern

Match = tuple[int, ...]


class Aggregation(ABC):
    """Interface for application aggregations.

    ``per_match_cost`` is the cost-model hint from Section 5.2: the
    relative amount of work the application performs per match (counting
    is free because engines count natively; MNI pays a per-match table
    update plus O(|V|) merges).
    """

    name: str = "aggregation"
    #: Does ``combine`` admit an inverse? Gates subtraction-based morphs.
    invertible: bool = False
    #: Relative per-match UDF work for the cost model (0 = engine-native).
    per_match_cost: float = 1.0

    @abstractmethod
    def zero(self) -> Any:
        """The identity element of ``⊕``."""

    @abstractmethod
    def from_match(self, pattern: Pattern, match: Match) -> Any:
        """``λ`` on a single match."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """The ``⊕`` operator. Must be commutative and associative."""

    def merge(self, a: Any, b: Any) -> Any:
        """Join two *partial* values from disjoint shards of one run.

        The shard-parallel execution layer folds per-shard values in
        shard order, so ``merge`` may rely on ``a`` preceding ``b`` in
        the root-vertex order — which is how match lists stay in the
        exact serial enumeration order. For order-insensitive
        aggregations this is just ``combine``.
        """
        return self.combine(a, b)

    @abstractmethod
    def permute(self, value: Any, f: Sequence[int]) -> Any:
        """The ``∘*`` operator: adjust a value for the remapping ``f``.

        ``f`` maps query-pattern vertices to alternative-pattern vertices
        (an element of ``φ(p, q)``); the returned value is the same
        aggregate re-expressed over the query pattern's vertices.
        """

    def scale(self, value: Any, k: int) -> Any:
        """``value ⊕ ... ⊕ value`` (k times, k possibly negative).

        Only invertible aggregations support negative ``k``; the default
        implementation repeats ``combine``.
        """
        if k < 0:
            raise TypeError(f"{self.name} does not support negative scaling")
        out = self.zero()
        for _ in range(k):
            out = self.combine(out, value)
        return out

    def finalize(self, pattern: Pattern, value: Any) -> Any:
        """Post-process a query's final value (idempotent).

        Engines enumerate one representative per *occurrence* (symmetry
        breaking), but some aggregations are defined over all
        *embeddings*; finalize bridges the two. The default is a no-op.
        """
        return value

    def is_terminal(self, value: Any) -> bool:
        """True when further matches cannot change ``value``.

        Engines stop exploring once an aggregation value saturates
        (Peregrine's early-termination optimization); only existence-like
        aggregations ever saturate.
        """
        return False


class CountAggregation(Aggregation):
    """Match counting: ``λ(m) = 1``, ``⊕`` is integer addition.

    Engines count natively (no UDF), so the per-match cost hint is zero;
    this is what makes counting workloads prefer edge-induced alternatives
    with fewer set operations (Section 7.1).
    """

    name = "count"
    invertible = True
    per_match_cost = 0.0

    def zero(self) -> int:
        return 0

    def from_match(self, pattern: Pattern, match: Match) -> int:
        return 1

    def combine(self, a: int, b: int) -> int:
        return a + b

    def merge(self, a: int, b: int) -> int:
        """Shard counts add."""
        return a + b

    def permute(self, value: int, f: Sequence[int]) -> int:
        return value

    def scale(self, value: int, k: int) -> int:
        return value * k


class MNIAggregation(Aggregation):
    """Minimum node image tables for FSM support (Section 2).

    The value is a tuple of vertex sets, one column per pattern vertex;
    ``⊕`` joins tables by unioning columns; support is the size of the
    smallest column. Permutation reindexes columns through the isomorphism
    (Figure 10). Union has no inverse, so only Eq. 1's union direction is
    legal.
    """

    name = "mni"
    invertible = False
    per_match_cost = 8.0

    def zero(self) -> tuple[frozenset[int], ...]:
        return ()

    def from_match(self, pattern: Pattern, match: Match) -> tuple[frozenset[int], ...]:
        return tuple(frozenset((v,)) for v in match)

    def combine(self, a, b):
        if not a:
            return b
        if not b:
            return a
        if len(a) != len(b):
            raise ValueError("cannot join MNI tables of different widths")
        return tuple(ca | cb for ca, cb in zip(a, b))

    def merge(self, a, b):
        """Shard tables union per node-image column (same as ``⊕``)."""
        return self.combine(a, b)

    def permute(self, value, f: Sequence[int]):
        if not value:
            return value
        # Column for query vertex u comes from alternative column f[u].
        return tuple(value[f[u]] for u in range(len(f)))

    def finalize(self, pattern: Pattern, value):
        """Close the table under the pattern's automorphism group.

        MNI is defined over all embeddings, but engines enumerate one
        representative per occurrence; every automorphic re-assignment of
        a match contributes its vertices to permuted columns, which is
        exactly the orbit-closure below. Idempotent (closures are).
        """
        if not value:
            return value
        from repro.core.isomorphism import automorphisms

        group = automorphisms(pattern)
        if len(group) == 1:
            return value
        return tuple(
            frozenset().union(*(value[a[u]] for a in group))
            for u in range(len(value))
        )

    @staticmethod
    def support(value) -> int:
        """MNI support: size of the smallest column (0 for no matches)."""
        if not value:
            return 0
        return min(len(col) for col in value)


class MatchListAggregation(Aggregation):
    """Materialize every match (subgraph enumeration's batched output)."""

    name = "matches"
    invertible = False
    per_match_cost = 2.0

    def zero(self) -> list[Match]:
        return []

    def from_match(self, pattern: Pattern, match: Match) -> list[Match]:
        return [match]

    def combine(self, a, b):
        return a + b

    def merge(self, a, b):
        """Shard lists concatenate in shard order.

        Shards are ascending root-vertex windows, so concatenating their
        match lists in shard order reproduces the serial enumeration
        order exactly — parallel enumeration output is byte-identical to
        the serial kernel's.
        """
        return a + b

    def permute(self, value, f: Sequence[int]):
        return [tuple(m[f[u]] for u in range(len(f))) for m in value]


class ExistenceAggregation(Aggregation):
    """Boolean "does any match exist" (clique finding / filtering probes)."""

    name = "exists"
    invertible = False
    per_match_cost = 0.1

    def zero(self) -> bool:
        return False

    def from_match(self, pattern: Pattern, match: Match) -> bool:
        return True

    def combine(self, a: bool, b: bool) -> bool:
        return a or b

    def merge(self, a: bool, b: bool) -> bool:
        """Any shard finding a match settles existence."""
        return a or b

    def permute(self, value: bool, f: Sequence[int]) -> bool:
        return value

    def is_terminal(self, value: bool) -> bool:
        return value  # one match settles existence
