"""Enumerating the space of alternative pattern sets (Section 5).

Algorithm 1 *navigates* the exponential space of alternative pattern
sets; this module *enumerates* it, which is what the paper's Figure 15e
experiment does (250 alternative sets for 5-motif counting, all timed).
Enumeration is bounded and deduplicated; every yielded set is verified
derivable for every query.

For counting, a query's options are: measure it directly, or measure its
superpattern closure under any edge/vertex variant assignment (the
recursive-substitution space collapses to variant assignments once the
closure is fixed — substituting a pattern twice lands back on closure
members). For non-invertible aggregations the only legal alternative is
the all-vertex-induced closure.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Iterator

from repro.core.aggregation import Aggregation, CountAggregation
from repro.core.equations import (
    Item,
    UnderivableError,
    item_of,
    normalize_item,
    solve_query,
)
from repro.core.generation import skeleton, superpattern_closure
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED


def query_options(
    pattern: Pattern, aggregation: Aggregation | None = None
) -> list[frozenset[Item]]:
    """All single-query measurement options (direct + closure variants)."""
    aggregation = aggregation or CountAggregation()
    direct = frozenset({item_of(pattern)})
    options: list[frozenset[Item]] = [direct]
    closure = superpattern_closure(skeleton(pattern))

    if not aggregation.invertible:
        all_v = frozenset(normalize_item(q, VERTEX_INDUCED) for q in closure)
        if all_v != direct:
            options.append(all_v)
        return options

    free = [q for q in closure if not q.is_clique]
    fixed = [normalize_item(q, EDGE_INDUCED) for q in closure if q.is_clique]
    for assignment in product((EDGE_INDUCED, VERTEX_INDUCED), repeat=len(free)):
        items = frozenset(
            [normalize_item(q, variant) for q, variant in zip(free, assignment)]
            + fixed
        )
        if items not in options:
            options.append(items)
    return options


def enumerate_alternative_sets(
    patterns: list[Pattern],
    aggregation: Aggregation | None = None,
    limit: int = 512,
) -> Iterator[frozenset[Item]]:
    """Yield distinct, derivable alternative sets for a query set.

    The first yielded set is always the unmorphed query set. The space is
    the product of per-query options (deduplicated after union), truncated
    at ``limit``; each set is checked to determine every query before
    being yielded.
    """
    aggregation = aggregation or CountAggregation()
    per_query = [query_options(p, aggregation) for p in patterns]
    seen: set[frozenset[Item]] = set()

    def generate() -> Iterator[frozenset[Item]]:
        for combo in product(*per_query):
            union = frozenset().union(*combo)
            if union in seen:
                continue
            seen.add(union)
            if _derives_all(union, patterns, aggregation):
                yield union

    yield from islice(generate(), limit)


def _derives_all(
    measured: frozenset[Item], patterns: list[Pattern], aggregation: Aggregation
) -> bool:
    for p in patterns:
        item = item_of(p)
        if item in measured:
            continue
        if not aggregation.invertible:
            needed = {
                normalize_item(q, VERTEX_INDUCED)
                for q in superpattern_closure(skeleton(p))
            }
            if not needed <= measured:
                return False
            continue
        try:
            solve_query(item, measured)
        except UnderivableError:
            return False
    return True


def space_size(patterns: list[Pattern], aggregation: Aggregation | None = None) -> int:
    """Upper bound on the distinct alternative sets (before union dedup)."""
    total = 1
    for p in patterns:
        total *= len(query_options(p, aggregation))
    return total
