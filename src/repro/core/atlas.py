"""Named patterns and motif enumerations used throughout the paper.

Figure 1 names the common 3/4-vertex shapes (triangle, 4-star, tailed
triangle, 4-cycle, chordal 4-cycle, 4-clique). Figure 3 describes the motif
sets: all connected vertex-induced patterns of a given size (2 of size 3,
6 of size 4, 21 of size 5). Figure 11a lists the evaluation patterns
p1..p10 of 5–7 vertices.

The published figure for p1..p10 is graphical and its exact topologies are
not recoverable from the text, so this module defines representatives that
match every property the text states: 5–7 vertices, drawn partly from the
GraphPi/Fractal evaluation suites, with "some larger and denser patterns
to stress the systems" (Section 7), p8 being a dense 6-vertex pattern and
p9/p10 having 7 vertices (Section 7.4). This substitution is recorded in
DESIGN.md.

All constructors return fresh edge-induced skeletons; call
``.vertex_induced()`` for the anti-edge-completed variant (the paper's
``pV`` suffix).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.core.canonical import canonical_form, pattern_id
from repro.core.pattern import Pattern

# ---------------------------------------------------------------------------
# Figure 1: common pattern names.
# ---------------------------------------------------------------------------

TRIANGLE = Pattern.clique(3)
FOUR_STAR = Pattern.star(4)
TAILED_TRIANGLE = Pattern(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
FOUR_CYCLE = Pattern.cycle(4)
CHORDAL_FOUR_CYCLE = Pattern(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
FOUR_CLIQUE = Pattern.clique(4)
THREE_PATH = Pattern.path(3)
FOUR_PATH = Pattern.path(4)
FIVE_CLIQUE = Pattern.clique(5)
FIVE_CYCLE = Pattern.cycle(5)
FIVE_STAR = Pattern.star(5)

#: Short names used by the paper's figures (Figure 4 etc.).
NAMED_PATTERNS: dict[str, Pattern] = {
    "triangle": TRIANGLE,
    "3P": THREE_PATH,
    "4S": FOUR_STAR,
    "TT": TAILED_TRIANGLE,
    "C4": FOUR_CYCLE,
    "C4C": CHORDAL_FOUR_CYCLE,
    "4CL": FOUR_CLIQUE,
    "4P": FOUR_PATH,
    "5CL": FIVE_CLIQUE,
    "C5": FIVE_CYCLE,
    "5S": FIVE_STAR,
}

# ---------------------------------------------------------------------------
# Figure 11a: evaluation patterns p1..p10 (representatives; see module doc).
# ---------------------------------------------------------------------------

#: House: 4-cycle with a roof triangle (5 vertices, 6 edges).
P1 = Pattern(5, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)])
#: Pentagon (5-cycle; a staple of the GraphPi evaluation suite).
P2 = Pattern.cycle(5)
#: 4-clique with a pendant vertex (5 vertices, 7 edges).
P3 = Pattern(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)])
#: Two triangles sharing an edge, plus a bridge (hourglass-like, 5 vertices).
P4 = Pattern(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4)])
#: 5-clique minus one edge (5 vertices, 9 edges; dense).
P5 = Pattern(5, [e for e in combinations(range(5), 2) if e != (3, 4)])
#: Prism: two triangles joined by a matching (6 vertices, 9 edges).
P6 = Pattern(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (0, 3), (1, 4), (2, 5)])
#: Octahedron-like: 6-cycle with long chords (6 vertices, 9 edges).
P7 = Pattern(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (0, 3), (1, 4), (2, 5)])
#: Dense 6-vertex pattern: 6-clique minus a perfect matching (9... 12 edges).
P8 = Pattern(
    6,
    [e for e in combinations(range(6), 2) if e not in ((0, 3), (1, 4), (2, 5))],
)
#: 7-vertex pattern (Section 7.4): hexagonal wheel — 6-cycle plus a hub.
P9 = Pattern(
    7,
    [(i, (i + 1) % 6) for i in range(6)] + [(6, i) for i in range(6)],
)
#: 7-vertex pattern: two 4-cliques sharing a single vertex.
P10 = Pattern(
    7,
    list(combinations(range(4), 2)) + list(combinations((3, 4, 5, 6), 2)),
)

EVALUATION_PATTERNS: dict[str, Pattern] = {
    "p1": P1,
    "p2": P2,
    "p3": P3,
    "p4": P4,
    "p5": P5,
    "p6": P6,
    "p7": P7,
    "p8": P8,
    "p9": P9,
    "p10": P10,
}

# ---------------------------------------------------------------------------
# Motif enumeration (Figure 3).
# ---------------------------------------------------------------------------


@lru_cache(maxsize=16)
def all_connected_patterns(k: int) -> tuple[Pattern, ...]:
    """All connected unlabeled pattern topologies on ``k`` vertices.

    Enumerated by edge-subset search de-duplicated through canonical forms;
    sizes 3/4/5 yield the 2/6/21 motif topologies quoted in the paper.
    Returned edge-induced (no anti-edges), sorted by edge count so sparser
    shapes come first.
    """
    if k < 2:
        raise ValueError("motifs need at least 2 vertices")
    pairs = list(combinations(range(k), 2))
    seen: set[Pattern] = set()
    result: list[Pattern] = []
    # Grow from spanning trees upward: iterate all edge subsets of size >= k-1.
    for r in range(k - 1, len(pairs) + 1):
        for subset in combinations(pairs, r):
            p = Pattern(k, subset)
            if not p.is_connected:
                continue
            canon = canonical_form(p)
            if canon not in seen:
                seen.add(canon)
                result.append(canon)
    result.sort(key=lambda p: (p.num_edges, pattern_id(p)))
    return tuple(result)


def motif_patterns(k: int) -> tuple[Pattern, ...]:
    """The vertex-induced motif set of size ``k`` (the k-MC input patterns)."""
    return tuple(p.vertex_induced() for p in all_connected_patterns(k))


def pattern_name(p: Pattern) -> str:
    """Human-readable name for a known pattern, else a structural summary."""
    canon = canonical_form(p.edge_induced().unlabeled())
    for name, known in {**NAMED_PATTERNS, **EVALUATION_PATTERNS}.items():
        if canonical_form(known) == canon:
            suffix = "" if p.is_edge_induced else "-V"
            return name + suffix
    kind = "V" if p.is_vertex_induced and not p.is_clique else "E"
    return f"<{p.n}v{p.num_edges}e:{kind}:{pattern_id(p) & 0xFFFF:04x}>"
