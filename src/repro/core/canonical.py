"""Canonical labeling and 64-bit pattern IDs.

The paper canonicalizes patterns with the Bliss library and hashes the
canonicalized edges into a 64-bit pattern ID used for fast S-DAG lookups
(Section 5.1). This module is the from-scratch substitute: a color
refinement (1-WL) pass shrinks the permutation search space, then an
exhaustive search over color-preserving permutations picks the
lexicographically smallest encoding. Patterns in this problem domain have
at most ~8 vertices, so the exact search is cheap; results are memoized.

Canonical forms cover the full pattern: regular edges, anti-edges and
labels all participate, so ``pᴱ`` and ``pⱽ`` of the same shape receive
*different* IDs (they are different patterns), while any relabeling of the
same pattern receives the same ID.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from itertools import permutations

from repro.core.pattern import Pattern

_CACHE_SIZE = 65536


def _refine_colors(pattern: Pattern) -> list[int]:
    """Iterative 1-WL color refinement; returns a stable color per vertex.

    Initial colors combine the vertex label, degree and anti-degree; each
    round appends the sorted multiset of (edge-kind, neighbor-color) pairs.
    Colors are isomorphism-invariant, so canonical search only needs to
    permute vertices within a color class.
    """
    n = pattern.n
    signatures: list[object] = [
        (repr(pattern.label(v)), pattern.degree(v), len(pattern.anti_neighbors(v)))
        for v in range(n)
    ]
    colors = _dense_ranks(signatures)
    for _ in range(n):
        signatures = [
            (
                colors[v],
                tuple(sorted(colors[w] for w in pattern.neighbors(v))),
                tuple(sorted(colors[w] for w in pattern.anti_neighbors(v))),
            )
            for v in range(n)
        ]
        new_colors = _dense_ranks(signatures)
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def _dense_ranks(signatures: list[object]) -> list[int]:
    """Map arbitrary sortable signatures to dense integer ranks."""
    order = {sig: rank for rank, sig in enumerate(sorted(set(signatures), key=repr))}
    return [order[sig] for sig in signatures]


def _encode(pattern: Pattern, perm: tuple[int, ...]) -> tuple:
    """Encode a pattern under the vertex renaming ``v -> perm[v]``."""
    edges = tuple(sorted(tuple(sorted((perm[u], perm[v]))) for u, v in pattern.edges))
    anti = tuple(
        sorted(tuple(sorted((perm[u], perm[v]))) for u, v in pattern.anti_edges)
    )
    if pattern.labels is None:
        labels = None
    else:
        relabeled = [None] * pattern.n
        for v in range(pattern.n):
            relabeled[perm[v]] = repr(pattern.labels[v])
        labels = tuple(relabeled)
    return (pattern.n, edges, anti, labels)


def _color_class_permutations(colors: list[int]):
    """Yield all vertex renamings that sort vertices by color class.

    Vertices are assigned canonical positions class by class (classes in
    increasing color order); within a class every arrangement is tried.
    """
    n = len(colors)
    classes: dict[int, list[int]] = {}
    for v in range(n):
        classes.setdefault(colors[v], []).append(v)
    ordered_classes = [classes[c] for c in sorted(classes)]

    def rec(idx: int, base: int, perm: list[int]):
        if idx == len(ordered_classes):
            yield tuple(perm)
            return
        members = ordered_classes[idx]
        for arrangement in permutations(members):
            for offset, v in enumerate(arrangement):
                perm[v] = base + offset
            yield from rec(idx + 1, base + len(members), perm)

    yield from rec(0, 0, [0] * n)


@lru_cache(maxsize=_CACHE_SIZE)
def canonical_permutation(pattern: Pattern) -> tuple[int, ...]:
    """The vertex renaming that takes ``pattern`` to its canonical form."""
    best_perm: tuple[int, ...] | None = None
    best_encoding: tuple | None = None
    colors = _refine_colors(pattern)
    for perm in _color_class_permutations(colors):
        encoding = _encode(pattern, perm)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_perm = perm
    assert best_perm is not None
    return best_perm


@lru_cache(maxsize=_CACHE_SIZE)
def canonical_form(pattern: Pattern) -> Pattern:
    """The canonical representative of ``pattern``'s isomorphism class."""
    return pattern.relabel(canonical_permutation(pattern))


@lru_cache(maxsize=_CACHE_SIZE)
def pattern_id(pattern: Pattern) -> int:
    """A stable 64-bit ID that uniquely identifies the pattern structure.

    Isomorphic patterns (same edges/anti-edges/labels up to renaming) share
    an ID; distinct structures get distinct IDs with overwhelming
    probability (64-bit blake2b digest of the canonical encoding).
    """
    canon = canonical_form(pattern)
    encoding = _encode(canon, tuple(range(canon.n)))
    digest = hashlib.blake2b(repr(encoding).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def are_isomorphic(p: Pattern, q: Pattern) -> bool:
    """Full isomorphism check: edges, anti-edges and labels must all map."""
    if p.n != q.n or p.num_edges != q.num_edges:
        return False
    if len(p.anti_edges) != len(q.anti_edges):
        return False
    return canonical_form(p) == canonical_form(q)
