"""The S-DAG: memoized superpattern/subpattern DAG (Section 5.1).

Each S-DAG node is a pattern *skeleton* (canonical edge-induced form; see
:mod:`repro.core.generation`); a directed edge runs from each pattern with
``k`` edges to its superpatterns with ``k + 1`` edges. Nodes memoize
per-variant cost estimates, which Algorithm 1 reads and re-weights during
alternative-set selection.

Nodes are keyed by 64-bit pattern IDs for fast lookup, exactly as the
paper describes; labeled patterns produce distinct nodes per labeling
(Figure 8, right).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.canonical import pattern_id
from repro.core.generation import direct_superpatterns, skeleton
from repro.core.pattern import Pattern

#: Variant tags: edge-induced / vertex-induced.
EDGE_INDUCED = "E"
VERTEX_INDUCED = "V"


@dataclass
class SDagNode:
    """One pattern skeleton plus its DAG links and cost annotations."""

    skel: Pattern
    parents: list[int] = field(default_factory=list)  # pattern IDs, +1 edge
    children: list[int] = field(default_factory=list)  # pattern IDs, -1 edge
    is_query: bool = False
    #: Query variant if this node came in as an input pattern.
    query_variant: str | None = None
    #: Estimated match cost per variant; filled by the cost model.
    cost: dict[str, float] = field(default_factory=dict)
    #: Working cost used by Algorithm 1 (min over variants, re-weighted).
    effective_cost: float = float("inf")
    #: Variant achieving ``effective_cost``.
    best_variant: str = EDGE_INDUCED

    @property
    def id(self) -> int:
        return pattern_id(self.skel)


class SDag:
    """Superpattern DAG over a set of query patterns.

    Construction inserts every query skeleton and recursively extends each
    one with edges up to the clique, memoizing nodes by pattern ID so
    overlapping superpattern sets across queries are shared (the second
    deduplication source described in Section 5.1).
    """

    def __init__(self) -> None:
        self._nodes: dict[int, SDagNode] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, query_patterns: Iterable[Pattern]) -> "SDag":
        dag = cls()
        for p in query_patterns:
            skel = skeleton(p)
            node = dag._ensure(skel)
            node.is_query = True
            node.query_variant = VERTEX_INDUCED if p.is_vertex_induced else EDGE_INDUCED
            dag._extend(skel)
        return dag

    def _ensure(self, skel: Pattern) -> SDagNode:
        pid = pattern_id(skel)
        node = self._nodes.get(pid)
        if node is None:
            node = SDagNode(skel=skel)
            self._nodes[pid] = node
        return node

    def _extend(self, skel: Pattern) -> None:
        """Recursively add all superpatterns of ``skel``, sharing nodes."""
        pid = pattern_id(skel)
        stack = [pid]
        while stack:
            current = self._nodes[stack.pop()]
            if current.parents:
                continue  # memoized: already extended from another query
            for sp in direct_superpatterns(current.skel):
                sp_node = self._ensure(sp)
                sp_id = sp_node.id
                if sp_id not in current.parents:
                    current.parents.append(sp_id)
                if current.id not in sp_node.children:
                    sp_node.children.append(current.id)
                stack.append(sp_id)

    # -- queries ---------------------------------------------------------

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern_id(skeleton(pattern)) in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SDagNode]:
        return iter(self._nodes.values())

    def node(self, pattern: Pattern) -> SDagNode:
        """Node for a pattern (looked up through its skeleton)."""
        return self._nodes[pattern_id(skeleton(pattern))]

    def node_by_id(self, pid: int) -> SDagNode:
        return self._nodes[pid]

    def parents(self, pattern: Pattern) -> list[SDagNode]:
        return [self._nodes[i] for i in self.node(pattern).parents]

    def children(self, pattern: Pattern) -> list[SDagNode]:
        return [self._nodes[i] for i in self.node(pattern).children]

    def query_nodes(self) -> list[SDagNode]:
        return [n for n in self._nodes.values() if n.is_query]

    def closure(self, pattern: Pattern) -> list[SDagNode]:
        """All superpattern nodes of ``pattern`` including itself."""
        start = self.node(pattern)
        seen = {start.id}
        order = [start]
        stack = [start]
        while stack:
            cur = stack.pop()
            for pid in cur.parents:
                if pid not in seen:
                    seen.add(pid)
                    node = self._nodes[pid]
                    order.append(node)
                    stack.append(node)
        return order

    def by_edge_count_desc(self) -> list[SDagNode]:
        """Nodes ordered densest-first (the triangular-solve order)."""
        return sorted(self._nodes.values(), key=lambda n: -n.skel.num_edges)
