"""Superpattern generation (Section 5.1).

Superpatterns of a pattern ``p`` on the same vertex count are obtained by
adding edges between disconnected vertices, recursively, up to the clique.
Naive extension generates duplicates (symmetric insertion points, shared
superpatterns across inputs); everything here deduplicates through the
canonical forms of :mod:`repro.core.canonical`.

All functions operate on *skeletons*: edge-induced patterns that carry the
structure and labels but no anti-edges. Variant (edge- vs vertex-induced)
is chosen later by the selection algorithm.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.core.canonical import canonical_form
from repro.core.pattern import Pattern, normalize_edge


def skeleton(pattern: Pattern) -> Pattern:
    """The canonical edge-induced skeleton of a pattern (labels kept)."""
    return canonical_form(pattern.edge_induced())


@lru_cache(maxsize=65536)
def direct_superpatterns(skel: Pattern) -> tuple[Pattern, ...]:
    """Skeletons reachable by adding exactly one edge, deduplicated.

    Adding an edge between automorphic vertex pairs yields the same
    superpattern (e.g. every chord of a 4-cycle gives the chordal 4-cycle);
    canonicalization collapses those.
    """
    supers: dict[Pattern, None] = {}
    for u, v in combinations(range(skel.n), 2):
        if normalize_edge(u, v) in skel.edges:
            continue
        supers[canonical_form(skel.with_edge(u, v))] = None
    return tuple(supers)


@lru_cache(maxsize=65536)
def superpattern_closure(skel: Pattern) -> tuple[Pattern, ...]:
    """All superpattern skeletons of ``skel`` on the same vertices.

    Includes ``skel`` itself and ends at the clique (with ``skel``'s
    labels). This is the closure the morphing equations quantify over
    (``q ⊃ₙ p`` in Eq. 1, plus ``p`` itself).
    """
    skel = canonical_form(skel.edge_induced())
    seen: dict[Pattern, None] = {skel: None}
    frontier = [skel]
    while frontier:
        nxt = []
        for p in frontier:
            for sp in direct_superpatterns(p):
                if sp not in seen:
                    seen[sp] = None
                    nxt.append(sp)
        frontier = nxt
    return tuple(sorted(seen, key=lambda p: (p.num_edges, repr(p))))
