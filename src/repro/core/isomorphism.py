"""Subgraph isomorphism between patterns, automorphisms, symmetry breaking.

These are the combinatorial primitives of the morphing algebra:

* ``subgraph_isomorphisms(p, q)`` enumerates the injective, label- and
  edge-preserving maps from ``p`` into ``q`` — the set ``phi(p, q)`` of
  Eq. 1/Eq. 2. Per Section 2, isomorphism *between patterns* considers
  regular edges only; anti-edges never participate.
* ``automorphisms(p)`` is ``phi(p, p)`` restricted to bijections — the
  symmetry group of the pattern.
* ``occurrence_count(p, q)`` is the coefficient attached to a superpattern
  in the morphing equations (e.g. the "3" on the 4-clique in [SM-E2]): the
  number of *distinct* occurrences of ``p`` inside ``q``.
* ``occurrence_embeddings(p, q)`` picks one representative isomorphism per
  distinct occurrence; these drive match and MNI conversion (Section 6).
* ``symmetry_breaking_conditions(p)`` computes the partial order on pattern
  vertices that makes a matching engine emit each data subgraph exactly
  once (Grochow–Kellis style, as used by Peregrine/GraphZero/GraphPi).

All functions are memoized — the same small patterns recur constantly
through S-DAG construction and result conversion.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.pattern import Pattern, normalize_edge

_CACHE_SIZE = 65536


@lru_cache(maxsize=_CACHE_SIZE)
def subgraph_isomorphisms(p: Pattern, q: Pattern) -> tuple[tuple[int, ...], ...]:
    """All injective maps ``f: V(p) -> V(q)`` preserving edges and labels.

    Every edge of ``p`` must map onto an edge of ``q``; extra edges of
    ``q`` are allowed (this is subgraph isomorphism, not induced). Labels
    must match exactly. Anti-edges are ignored on both sides.

    Returns maps as tuples where ``f[v]`` is the image of pattern vertex
    ``v``. For ``p.n == q.n`` these are the spanning embeddings used by the
    morphing equations.
    """
    if p.n > q.n or p.num_edges > q.num_edges:
        return ()

    # Order p's vertices so each (after the first) touches a previous one
    # when possible; this keeps candidate sets small.
    order = _connected_order(p)
    results: list[tuple[int, ...]] = []
    mapping = [-1] * p.n
    used = [False] * q.n

    def extend(idx: int) -> None:
        if idx == p.n:
            results.append(tuple(mapping))
            return
        u = order[idx]
        u_label = p.label(u)
        mapped_neighbors = [w for w in p.neighbors(u) if mapping[w] >= 0]
        if mapped_neighbors:
            candidates = set(q.neighbors(mapping[mapped_neighbors[0]]))
            for w in mapped_neighbors[1:]:
                candidates &= q.neighbors(mapping[w])
        else:
            candidates = set(range(q.n))
        for c in candidates:
            if used[c]:
                continue
            if u_label is not None and q.label(c) != u_label:
                continue
            if p.degree(u) > q.degree(c):
                continue
            mapping[u] = c
            used[c] = True
            extend(idx + 1)
            mapping[u] = -1
            used[c] = False

    extend(0)
    return tuple(sorted(results))


def _connected_order(p: Pattern) -> list[int]:
    """A vertex order where each vertex neighbors an earlier one if possible."""
    order: list[int] = []
    placed = [False] * p.n
    while len(order) < p.n:
        candidates = [
            v
            for v in range(p.n)
            if not placed[v] and any(placed[w] for w in p.neighbors(v))
        ]
        if not candidates:
            candidates = [v for v in range(p.n) if not placed[v]]
            # Start a new component at its highest-degree vertex.
            v = max(candidates, key=p.degree)
        else:
            v = max(candidates, key=lambda x: sum(placed[w] for w in p.neighbors(x)))
        placed[v] = True
        order.append(v)
    return order


@lru_cache(maxsize=_CACHE_SIZE)
def automorphisms(p: Pattern) -> tuple[tuple[int, ...], ...]:
    """The automorphism group of ``p`` (edge- and label-preserving bijections).

    For a vertex-induced pattern this equals the group preserving edges and
    anti-edges simultaneously, because the anti-edges are exactly the
    complement of the edges.
    """
    return tuple(
        f
        for f in subgraph_isomorphisms(p, p)
        if all(normalize_edge(f[u], f[v]) in p.edges for u, v in p.edges)
    )


@lru_cache(maxsize=_CACHE_SIZE)
def occurrence_embeddings(p: Pattern, q: Pattern) -> tuple[tuple[int, ...], ...]:
    """One representative isomorphism per distinct occurrence of ``p`` in ``q``.

    Two isomorphisms describe the same occurrence when they select the same
    edge subset of ``q``; that happens exactly when they differ by an
    automorphism of ``p``. The morphing conversions replay each alternative
    match once per occurrence, so deduplicating here is what keeps counts
    exact.
    """
    seen: set[frozenset[tuple[int, int]]] = set()
    reps: list[tuple[int, ...]] = []
    for f in subgraph_isomorphisms(p, q):
        image = frozenset(normalize_edge(f[u], f[v]) for u, v in p.edges)
        key = image if p.labels is None else frozenset(
            {("edges", image), ("verts", frozenset((f[v], p.label(v)) for v in range(p.n)))}
        )
        if key not in seen:
            seen.add(key)
            reps.append(f)
    return tuple(reps)


def occurrence_count(p: Pattern, q: Pattern) -> int:
    """Number of distinct spanning occurrences of ``p`` inside ``q``.

    This is the coefficient of ``q`` in the morphing equation for ``p``
    (Figure 7): e.g. ``occurrence_count(four_cycle, four_clique) == 3``.
    """
    return len(occurrence_embeddings(p, q))


@lru_cache(maxsize=_CACHE_SIZE)
def symmetry_breaking_conditions(p: Pattern) -> tuple[tuple[int, int], ...]:
    """Partial-order conditions ``(u, v)`` meaning "match(u) < match(v)".

    Iteratively fixes one vertex of a non-trivial orbit and constrains it
    below the rest of its orbit, then recurses into the stabilizer — the
    standard symmetry-breaking construction [18]. An engine honoring these
    conditions enumerates each data subgraph exactly once.
    """
    group = list(automorphisms(p))
    conditions: list[tuple[int, int]] = []
    while len(group) > 1:
        anchor = None
        for v in range(p.n):
            orbit = {g[v] for g in group}
            if len(orbit) > 1:
                anchor = v
                break
        assert anchor is not None, "non-trivial group must move some vertex"
        orbit = {g[anchor] for g in group}
        for other in sorted(orbit):
            if other != anchor:
                conditions.append((anchor, other))
        group = [g for g in group if g[anchor] == anchor]
    return tuple(conditions)


def matches_of_pattern_in(p: Pattern, q: Pattern, require_induced: bool) -> int:
    """Occurrences of ``p`` in ``q`` treating ``q`` as a tiny data graph.

    Used by tests and the appendix walkthroughs; ``require_induced`` asks
    for vertex-induced occurrences (no extra ``q`` edges among the image).
    """
    count = 0
    for f in occurrence_embeddings(p, q):
        if not require_induced:
            count += 1
            continue
        image_edges = {normalize_edge(f[u], f[v]) for u, v in p.edges}
        image_vertices = sorted(f)
        extra = any(
            normalize_edge(a, b) in q.edges and normalize_edge(a, b) not in image_edges
            for i, a in enumerate(image_vertices)
            for b in image_vertices[i + 1 :]
        )
        if not extra:
            count += 1
    return count


@lru_cache(maxsize=_CACHE_SIZE)
def vertex_orbits(p: Pattern) -> tuple[frozenset[int], ...]:
    """Partition of the pattern's vertices into automorphism orbits.

    The paper's MNI table has "a column for each group of symmetric
    vertices" (Section 2) — those groups are exactly these orbits: after
    the automorphism closure, MNI columns within one orbit are equal, so
    one column per orbit suffices. Orbits are returned sorted by their
    smallest member.
    """
    group = automorphisms(p)
    seen: set[int] = set()
    orbits: list[frozenset[int]] = []
    for v in range(p.n):
        if v in seen:
            continue
        orbit = frozenset(g[v] for g in group)
        seen.update(orbit)
        orbits.append(orbit)
    return tuple(sorted(orbits, key=min))
