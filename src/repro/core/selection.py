"""Alternative pattern set selection — Algorithm 1 (Section 5.2).

Given the query patterns' S-DAG and a cost model, the greedy algorithm
starts from the query set and repeatedly replaces subsets of some
pattern's children with the union of their superpattern closures whenever
the closures are (currently) cheaper, re-weighting selected patterns to
zero so overlapping alternatives become free. It terminates when a full
pass makes no replacement.

The aggregation's invertibility restricts which variants are legal
(DESIGN.md §6): counting may measure any variant mix; non-invertible
aggregations must measure vertex-induced alternatives (Eq. 1's union
direction) and may not morph vertex-induced queries at all.

After convergence the measured set is pruned to the items actually used
by some query's conversion, so the engine never matches dead patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.aggregation import Aggregation, CountAggregation
from repro.core.canonical import pattern_id
from repro.core.costmodel import CostModel
from repro.core.equations import (
    Item,
    UnderivableError,
    item_of,
    normalize_item,
    solve_query,
)
from repro.core.generation import superpattern_closure
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED, SDag

#: Safety cap on the per-parent child subsets Algorithm 1 examines.
_MAX_SUBSET_CHILDREN = 12


@dataclass
class SelectionResult:
    """Outcome of Algorithm 1 plus the conversion bookkeeping."""

    #: Items the matching engine must measure.
    measured: frozenset[Item]
    #: Query pattern -> item describing its own direct measurement.
    query_items: dict[Pattern, Item]
    #: Query pattern -> True when its result comes from alternatives.
    morphed: dict[Pattern, bool]
    #: Estimated cost of the selected set and of the unmorphed query set.
    estimated_cost: float = 0.0
    estimated_query_cost: float = 0.0
    rounds: int = 0
    #: All per-item costs considered (for introspection / Fig. 15e).
    item_costs: dict[Item, float] = field(default_factory=dict)


def legal_variants(aggregation: Aggregation) -> tuple[str, ...]:
    """Variants an alternative pattern may take under this aggregation."""
    if aggregation.invertible:
        return (EDGE_INDUCED, VERTEX_INDUCED)
    return (VERTEX_INDUCED,)


def select_alternative_patterns(
    queries: list[Pattern],
    cost_model: CostModel,
    aggregation: Aggregation | None = None,
    sdag: SDag | None = None,
    margin: float = 0.6,
) -> SelectionResult:
    """Run Algorithm 1 and return the measured set plus metadata.

    ``margin`` is a conservatism factor: a replacement must be predicted
    to cost less than ``margin`` times what it saves. Cost estimates carry
    noise, and a marginal morph that turns out slower than the query is
    worse than no morph (the paper's §7.5 observation that several
    alternative sets underperform the query set).
    """
    aggregation = aggregation or CountAggregation()
    sdag = sdag or SDag.build(queries)
    variants = legal_variants(aggregation)

    # -- initializePatternCosts -------------------------------------------
    item_costs: dict[Item, float] = {}
    best_item: dict[int, Item] = {}
    for node in sdag:
        best = None
        for variant in (EDGE_INDUCED, VERTEX_INDUCED):
            item = normalize_item(node.skel, variant)
            if item in item_costs:
                continue
            item_costs[item] = cost_model.pattern_cost(*item)
        for variant in variants:
            item = normalize_item(node.skel, variant)
            if best is None or item_costs[item] < item_costs[best]:
                best = item
        assert best is not None
        best_item[node.id] = best
        node.cost = {
            EDGE_INDUCED: item_costs[normalize_item(node.skel, EDGE_INDUCED)],
            VERTEX_INDUCED: item_costs[normalize_item(node.skel, VERTEX_INDUCED)],
        }
        node.effective_cost = item_costs[best]
        node.best_variant = best[1]

    query_items = {q: item_of(q) for q in queries}
    morphable = {
        q: aggregation.invertible or query_items[q][1] == EDGE_INDUCED
        for q in queries
    }

    selected: set[Item] = {query_items[q] for q in queries}
    for item in selected:
        item_costs.setdefault(item, cost_model.pattern_cost(*item))
    initial_query_cost = sum(item_costs[query_items[q]] for q in queries)

    def closure_items(item: Item) -> frozenset[Item]:
        """The superpattern-closure measurement replacing ``item``.

        Every node of the item's closure (including its own) contributes
        its cheapest *legal* variant; the item's own slot thereby flips to
        whichever semantics the cost model prefers (Eq. 1 in either
        direction for counting, the V-union direction otherwise).
        """
        skel, _variant = item
        return frozenset(
            best_item[pattern_id(sup)] for sup in superpattern_closure(skel)
        )

    unmorphable_items = {query_items[q] for q in queries if not morphable[q]}

    # -- selectPatterns ------------------------------------------------------
    # The paper's greedy re-weights selected patterns to zero cost; here
    # that re-weighting is realized through set membership (an item already
    # in S costs nothing extra, a removed item saves its full cost), which
    # keeps the total measured cost strictly decreasing and guarantees
    # convergence.
    rounds = 0
    changed = True
    while changed and rounds < 64:
        changed = False
        rounds += 1
        parent_ids: set[int] = set()
        for item in selected:
            for parent in sdag.parents(item[0]):
                parent_ids.add(parent.id)
        for pid in sorted(parent_ids):
            parent = sdag.node_by_id(pid)
            eligible = []
            for child_id in parent.children:
                child = sdag.node_by_id(child_id)
                for variant in (EDGE_INDUCED, VERTEX_INDUCED):
                    item = normalize_item(child.skel, variant)
                    if item in selected and item not in unmorphable_items:
                        eligible.append(item)
            eligible = sorted(set(eligible), key=repr)[:_MAX_SUBSET_CHILDREN]
            for size in range(1, len(eligible) + 1):
                for subset in combinations(eligible, size):
                    subset_set = set(subset)
                    if not subset_set <= selected:
                        continue
                    replacement: set[Item] = set()
                    for item in subset:
                        replacement |= closure_items(item)
                    new_selected = (selected - subset_set) | replacement
                    if new_selected == selected:
                        continue
                    saved = sum(
                        item_costs[c] for c in subset_set if c not in replacement
                    )
                    added = sum(
                        item_costs[i] for i in replacement if i not in selected
                    )
                    if added < margin * saved:
                        selected = new_selected
                        changed = True

    # -- prune to items actually used by conversions -------------------------
    measured = _prune(queries, query_items, selected, aggregation)

    morphed = {q: query_items[q] not in measured for q in queries}
    return SelectionResult(
        measured=frozenset(measured),
        query_items=query_items,
        morphed=morphed,
        estimated_cost=sum(item_costs.get(i, 0.0) for i in measured),
        estimated_query_cost=initial_query_cost,
        rounds=rounds,
        item_costs=item_costs,
    )


def _prune(
    queries: list[Pattern],
    query_items: dict[Pattern, Item],
    selected: set[Item],
    aggregation: Aggregation,
) -> set[Item]:
    """Keep only the measured items some query's conversion consumes."""
    needed: set[Item] = set()
    for q in queries:
        item = query_items[q]
        if item in selected:
            needed.add(item)
            continue
        if aggregation.invertible:
            try:
                expression = solve_query(item, frozenset(selected))
            except UnderivableError:
                # Defensive: fall back to measuring the query directly.
                needed.add(item)
                continue
            needed.update(expression)
        else:
            skel, _variant = item
            for sup in superpattern_closure(skel):
                needed.add(normalize_item(sup, VERTEX_INDUCED))
    return needed
