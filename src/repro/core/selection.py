"""Alternative pattern set selection — Algorithm 1 (Section 5.2).

Compatibility facade. The greedy itself moved to
:mod:`repro.plan.search`, where it is one rewrite rule
(``SuperpatternMorph``) inside the planner's cost-driven search;
:func:`select_alternative_patterns` is now a thin wrapper kept so
existing callers and tests work unchanged. New code should call
:func:`repro.plan.search.search_plan`, which additionally lets direct
matching and IEP decomposition compete for each measured item.
"""

from __future__ import annotations

from repro.core.aggregation import Aggregation
from repro.core.costmodel import CostModel
from repro.core.pattern import Pattern
from repro.core.sdag import SDag
from repro.plan.search import (
    MAX_SUBSET_CHILDREN as _MAX_SUBSET_CHILDREN,
)
from repro.plan.search import (
    PlanTruncationWarning,
    SelectionResult,
    legal_variants,
    morph_greedy,
)

__all__ = [
    "PlanTruncationWarning",
    "SelectionResult",
    "legal_variants",
    "select_alternative_patterns",
]


def select_alternative_patterns(
    queries: list[Pattern],
    cost_model: CostModel,
    aggregation: Aggregation | None = None,
    sdag: SDag | None = None,
    margin: float = 0.6,
) -> SelectionResult:
    """Run Algorithm 1 and return the measured set plus metadata.

    ``margin`` is a conservatism factor: a replacement must be predicted
    to cost less than ``margin`` times what it saves. Cost estimates carry
    noise, and a marginal morph that turns out slower than the query is
    worse than no morph (the paper's §7.5 observation that several
    alternative sets underperform the query set).
    """
    return morph_greedy(
        queries, cost_model, aggregation=aggregation, sdag=sdag, margin=margin
    )
