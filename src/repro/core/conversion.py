"""Result transformation (Section 6): Algorithms 2 and 3.

After the matching engine processes the *alternative* patterns, their
results must become results for the original queries:

* :func:`convert_counts` — counting results via the triangular solve of
  :mod:`repro.core.equations` (coefficients may be negative; counting's
  ``⊕`` is invertible).
* :func:`convert_aggregation_store` — Algorithm 2: post-matching
  conversion of an aggregation store by permuting aggregation keys
  through ``φ(p, q)`` and reducing with the application's ``⊕``. Used for
  non-invertible aggregations (MNI, match lists), which only admit the
  union direction of Eq. 1.
* :class:`OnTheFlyConverter` — Algorithm 3: wraps the application's
  per-match UDF so matches for alternative patterns are permuted into
  query-pattern matches as the engine streams them.

A key subtlety handled here: morphing operates on *canonical skeletons*,
but the application speaks in the query pattern's own vertex numbering.
Every conversion therefore composes the canonicalizing permutation of the
query with the subgraph isomorphisms into the alternative pattern, so the
application never sees canonical ids (the "seamless" property of §6).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.aggregation import Aggregation, CountAggregation, Match
from repro.core.canonical import canonical_permutation
from repro.core.equations import (
    Item,
    UnderivableError,
    evaluate,
    item_of,
    normalize_item,
    solve_query,
)
from repro.core.generation import skeleton, superpattern_closure
from repro.core.isomorphism import occurrence_embeddings
from repro.core.pattern import Pattern
from repro.core.sdag import VERTEX_INDUCED


def query_embeddings(query: Pattern, alternative_skel: Pattern) -> list[tuple[int, ...]]:
    """Maps from the query's *original* vertices into an alternative skeleton.

    One map per distinct occurrence of the query's shape inside the
    alternative; each composes the query's canonicalizing permutation with
    an occurrence embedding, so ``g[u]`` is the alternative vertex playing
    the role of the query's own vertex ``u``.
    """
    to_canonical = canonical_permutation(query.edge_induced())
    q_skel = skeleton(query)
    maps = []
    for f in occurrence_embeddings(q_skel, alternative_skel):
        maps.append(tuple(f[to_canonical[u]] for u in range(query.n)))
    return maps


def convert_counts(
    queries: Iterable[Pattern],
    measured_values: dict[Item, int],
) -> dict[Pattern, int]:
    """Solve every query's count from the measured alternative counts."""
    measured = frozenset(measured_values)
    out: dict[Pattern, int] = {}
    for q in queries:
        expression = solve_query(item_of(q), measured)
        out[q] = evaluate(expression, measured_values)
    return out


def convert_aggregation_store(
    queries: Iterable[Pattern],
    store: dict[Item, Any],
    aggregation: Aggregation,
) -> dict[Pattern, Any]:
    """Algorithm 2: derive each query's aggregation value from the store.

    For a query measured directly, the value passes through (permuted back
    to the query's own vertex numbering). Otherwise the query must be
    edge-induced and every superpattern in its closure measured
    vertex-induced; Eq. 1's disjoint union then makes the plain ``⊕`` of
    permuted values exact, with no inverse needed.
    """
    store = {normalize_item(*k): v for k, v in store.items()}
    if isinstance(aggregation, CountAggregation):
        return convert_counts(queries, store)

    out: dict[Pattern, Any] = {}
    for query in queries:
        item = item_of(query)
        q_skel, q_variant = item
        if item in store:
            # Measured directly; only the canonical renaming must be undone.
            perm = canonical_permutation(query.edge_induced())
            out[query] = aggregation.finalize(
                query, aggregation.permute(store[item], tuple(perm))
            )
            continue
        if q_variant == VERTEX_INDUCED:
            raise UnderivableError(
                f"{aggregation.name} has no inverse; a vertex-induced query "
                "must be measured directly, not derived by subtraction"
            )
        value = aggregation.zero()
        for sup in superpattern_closure(q_skel):
            sup_item = normalize_item(sup, VERTEX_INDUCED)
            if sup_item not in store:
                raise UnderivableError(
                    f"alternative {sup_item} missing from aggregation store"
                )
            for g in query_embeddings(query, sup):
                value = aggregation.combine(
                    value, aggregation.permute(store[sup_item], g)
                )
        # Aut(query)-closure completes the per-occurrence representatives
        # into the full embedding set (see MNIAggregation.finalize).
        out[query] = aggregation.finalize(query, value)
    return out


class OnTheFlyConverter:
    """Algorithm 3: stream alternative-pattern matches as query matches.

    Instantiated per (query, alternative) pair; calling it with a match
    for the alternative pattern invokes the wrapped ``process`` UDF once
    per distinct occurrence of the query inside that match, with vertices
    arranged in the query's own numbering.
    """

    def __init__(
        self,
        query: Pattern,
        alternative_skel: Pattern,
        process: Callable[[Pattern, Match], None],
    ) -> None:
        self.query = query
        self.process = process
        self._maps = query_embeddings(query, alternative_skel)

    @property
    def expansion_factor(self) -> int:
        """Matches emitted per alternative match (the Eq. 1 coefficient)."""
        return len(self._maps)

    def __call__(self, alternative_match: Match) -> None:
        for g in self._maps:
            permuted = tuple(alternative_match[g[u]] for u in range(self.query.n))
            self.process(self.query, permuted)


def on_the_fly_plan(
    query: Pattern,
    measured_items: Iterable[Item],
    process: Callable[[Pattern, Match], None],
) -> dict[Item, OnTheFlyConverter]:
    """Build the per-alternative converters that reconstruct a query stream.

    The measured items must be the vertex-induced closure of the query
    (or contain the query itself, in which case a single identity
    converter is returned).
    """
    measured = {normalize_item(*m) for m in measured_items}
    item = item_of(query)
    q_skel, q_variant = item
    if item in measured:
        return {item: OnTheFlyConverter(query, q_skel, process)}
    if q_variant == VERTEX_INDUCED:
        raise UnderivableError(
            "match streams cannot be derived for a vertex-induced query "
            "unless it is measured directly"
        )
    plan: dict[Item, OnTheFlyConverter] = {}
    for sup in superpattern_closure(q_skel):
        sup_item = normalize_item(sup, VERTEX_INDUCED)
        if sup_item not in measured:
            raise UnderivableError(f"alternative {sup_item} not in measured set")
        plan[sup_item] = OnTheFlyConverter(query, sup, process)
    return plan
