"""A small text DSL for patterns, plus JSON-able serialization.

Peregrine exposes patterns programmatically; for a CLI and config files a
textual form is handier. The grammar, by example::

    "a-b, b-c, c-a"             triangle (vertices named, order of first
                                appearance assigns ids 0, 1, 2, ...)
    "(a, b, c) a-b"             explicit vertex declaration: fixes the id
                                order and permits isolated vertices
    "a-b, b-c, a!c"             path with an anti-edge between a and c
    "a-b-c-d-a"                 chains: consecutive pairs become edges
    "a-b [a:1, b:2]"            vertex labels in brackets
    "1-2, 2-3"                  bare integers are fine as names too

Whitespace is insignificant. ``-`` introduces a regular edge, ``!`` an
anti-edge; a chain ``a-b-c`` expands to ``a-b, b-c`` (anti-edges do not
chain). The complementary ``format_pattern`` renders any pattern back
into the DSL, and ``pattern_to_dict`` / ``pattern_from_dict`` give a
stable JSON-able form.
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.pattern import Pattern

_NAME = r"[A-Za-z0-9_]+"
_LABEL_BLOCK = re.compile(r"\[(?P<body>[^\]]*)\]\s*$")
_DECLARATION = re.compile(r"^\((?P<body>[^)]*)\)\s*")
_CHAIN_SPLIT = re.compile(r"([!-])")


class PatternSyntaxError(ValueError):
    """The pattern expression could not be parsed."""


def parse_pattern(text: str) -> Pattern:
    """Parse the DSL into a :class:`Pattern`."""
    text = text.strip()
    if not text:
        raise PatternSyntaxError("empty pattern expression")

    labels_by_name: dict[str, int] = {}
    label_match = _LABEL_BLOCK.search(text)
    if label_match:
        for assignment in _split_nonempty(label_match.group("body"), ","):
            name, _, value = assignment.partition(":")
            name, value = name.strip(), value.strip()
            if not re.fullmatch(_NAME, name) or not value:
                raise PatternSyntaxError(f"bad label assignment {assignment!r}")
            try:
                labels_by_name[name] = int(value)
            except ValueError as exc:
                raise PatternSyntaxError(
                    f"label for {name!r} must be an integer, got {value!r}"
                ) from exc
        text = text[: label_match.start()].strip()

    ids: dict[str, int] = {}

    declaration = _DECLARATION.match(text)
    if declaration:
        for name in _split_nonempty(declaration.group("body"), ","):
            if not re.fullmatch(_NAME, name):
                raise PatternSyntaxError(f"bad vertex name {name!r}")
            if name in ids:
                raise PatternSyntaxError(f"duplicate vertex {name!r}")
            ids[name] = len(ids)
        text = text[declaration.end():].strip()

    def intern(name: str) -> int:
        name = name.strip()
        if not re.fullmatch(_NAME, name):
            raise PatternSyntaxError(f"bad vertex name {name!r}")
        if name not in ids:
            ids[name] = len(ids)
        return ids[name]

    edges: list[tuple[int, int]] = []
    anti: list[tuple[int, int]] = []
    if text and not ids and text.startswith("["):
        raise PatternSyntaxError("labels without any vertices")
    for clause in _split_nonempty(text, ","):
        tokens = [t for t in _CHAIN_SPLIT.split(clause) if t.strip() or t in "-!"]
        if len(tokens) < 3 or len(tokens) % 2 == 0:
            raise PatternSyntaxError(f"malformed clause {clause!r}")
        names = tokens[0::2]
        operators = tokens[1::2]
        vertices = [intern(n) for n in names]
        for (u, v), op in zip(zip(vertices, vertices[1:]), operators):
            if u == v:
                raise PatternSyntaxError(f"self-loop on {names[0]!r} in {clause!r}")
            if op == "-":
                edges.append((u, v))
            elif op == "!":
                anti.append((u, v))
            else:  # pragma: no cover - split regex only yields - and !
                raise PatternSyntaxError(f"unknown operator {op!r}")

    if not ids:
        raise PatternSyntaxError("pattern has no vertices")
    unknown = set(labels_by_name) - set(ids)
    if unknown:
        raise PatternSyntaxError(
            f"labels for vertices not in the pattern: {sorted(unknown)}"
        )
    labels = None
    if labels_by_name:
        labels = [labels_by_name.get(name) for name in ids]
    try:
        return Pattern(len(ids), edges, anti, labels=labels)
    except ValueError as exc:
        raise PatternSyntaxError(str(exc)) from exc


def _split_nonempty(text: str, sep: str) -> list[str]:
    return [part.strip() for part in text.split(sep) if part.strip()]


def format_pattern(pattern: Pattern) -> str:
    """Render a pattern back into the DSL (parse/format round-trips).

    Emits an explicit vertex declaration so the id order survives
    re-parsing exactly (and edgeless patterns are expressible).
    """
    def name(v: int) -> str:
        return f"v{v}"

    declaration = "(" + ", ".join(name(v) for v in range(pattern.n)) + ")"
    clauses = [f"{name(u)}-{name(v)}" for u, v in sorted(pattern.edges)]
    clauses += [f"{name(u)}!{name(v)}" for u, v in sorted(pattern.anti_edges)]
    text = declaration
    if clauses:
        text += " " + ", ".join(clauses)
    if pattern.labels is not None:
        labels = ", ".join(
            f"{name(v)}:{pattern.labels[v]}"
            for v in range(pattern.n)
            if pattern.labels[v] is not None
        )
        text += f" [{labels}]"
    return text


def pattern_to_dict(pattern: Pattern) -> dict[str, Any]:
    """Stable JSON-able representation."""
    out: dict[str, Any] = {
        "n": pattern.n,
        "edges": sorted(list(e) for e in pattern.edges),
        "anti_edges": sorted(list(e) for e in pattern.anti_edges),
    }
    if pattern.labels is not None:
        out["labels"] = list(pattern.labels)
    return out


def pattern_from_dict(data: dict[str, Any]) -> Pattern:
    """Inverse of :func:`pattern_to_dict`."""
    return Pattern(
        int(data["n"]),
        [tuple(e) for e in data.get("edges", [])],
        [tuple(e) for e in data.get("anti_edges", [])],
        labels=data.get("labels"),
    )
