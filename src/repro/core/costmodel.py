"""Relative pattern cost estimation (Section 5.2).

The data graph is abstracted as a probabilistic graph where any two
vertices are adjacent with a fixed probability; matching a pattern is
modeled as nested loops over this abstract graph, and the cost is the
total expected loop work plus the application's aggregation work on the
expected matches. Two enhancements from the paper are implemented:

* **high-degree restriction** — profiling showed the top-degree vertices
  (95th percentile) contribute 66–99% of matches and most of the time;
  the model captures hub dominance through the size-biased mean degree
  (edges lead to hubs) and the graph's clustering coefficient;
* **symmetry-aware neighborhoods** — partial orders for symmetry breaking
  halve the usable neighborhood per ordering constraint, so constrained
  loops iterate over the expected number of smaller/larger-id neighbors.

Costs are *relative*: they only need to rank patterns and alternative
sets correctly per system and application, which is how Algorithm 1 uses
them. Per-system weighting lives in :class:`EngineCostProfile`
(instances in :mod:`repro.morph.profiles`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.aggregation import Aggregation, CountAggregation
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED
from repro.graph.datagraph import DataGraph


@dataclass(frozen=True)
class GraphModel:
    """Probabilistic abstraction of a data graph.

    Beyond the basic Erdős–Rényi abstraction (a fixed edge probability),
    the model carries two corrections for real, heavy-tailed graphs that
    implement the spirit of the paper's enhancements:

    * ``biased_degree`` — ``E[d²]/E[d]``, the expected degree of a vertex
      reached by following an edge. Exploration walks edges, so candidate
      neighborhoods follow the *size-biased* degree distribution — this is
      what the paper's high-degree (95th percentile) restriction captures:
      the few hub vertices dominate the work.
    * ``closure_prob`` — the global clustering coefficient, used as the
      probability that a second backward edge closes (far higher than the
      raw edge probability in clustered mining graphs).
    """

    num_vertices: float
    edge_prob: float
    avg_degree: float
    #: Size-biased mean degree E[d²]/E[d] (hub-dominance correction).
    biased_degree: float
    #: Probability a wedge closes into a triangle (clustering coefficient).
    closure_prob: float
    #: Degree at the 95th percentile (reported for introspection).
    high_degree_threshold: float
    #: Fraction of vertices per label (empty for unlabeled graphs).
    label_fractions: dict[int, float] = field(default_factory=dict, hash=False)

    @classmethod
    def from_graph(cls, graph: DataGraph, percentile: float = 95.0) -> "GraphModel":
        # Memoize on the (immutable) graph: sessions rebuild cost models
        # per run — FSM once per level — and the clustering-coefficient
        # scan is the expensive part.
        cached = getattr(graph, "_graph_model_cache", None)
        if cached is not None and cached[0] == percentile:
            return cached[1]
        model = cls._build(graph, percentile)
        graph._graph_model_cache = (percentile, model)  # type: ignore[attr-defined]
        return model

    @classmethod
    def _build(cls, graph: DataGraph, percentile: float) -> "GraphModel":
        import numpy as np

        n = max(graph.num_vertices, 2)
        edge_prob = min(1.0, 2.0 * graph.num_edges / (n * (n - 1)))
        # Degree moments come straight off the CSR row pointers: one
        # vectorized diff, no per-vertex adjacency loop.
        degrees = np.diff(graph.indptr).astype(float)
        mean_degree = max(float(degrees.mean()), 1e-9)
        biased = float((degrees**2).mean()) / mean_degree

        closure = _clustering_coefficient(graph)
        if closure <= 0.0:
            closure = edge_prob

        fractions = {}
        if graph.is_labeled:
            for lab, vs in graph.vertices_by_label.items():
                fractions[lab] = len(vs) / graph.num_vertices
        return cls(
            num_vertices=float(n),
            edge_prob=edge_prob,
            avg_degree=graph.avg_degree,
            biased_degree=biased,
            closure_prob=min(closure, 1.0),
            high_degree_threshold=float(graph.high_degree_threshold(percentile)),
            label_fractions=fractions,
        )

    def label_fraction(self, label) -> float:
        if label is None or not self.label_fractions:
            return 1.0
        return max(self.label_fractions.get(label, 0.0), 1.0 / self.num_vertices)


def _clustering_coefficient(graph: DataGraph, max_samples: int = 2000) -> float:
    """Global clustering coefficient, sampled on large graphs."""
    import numpy as np

    rng = np.random.default_rng(7)
    vertices = np.flatnonzero(np.diff(graph.indptr) >= 2).tolist()
    if not vertices:
        return 0.0
    if len(vertices) > max_samples:
        vertices = rng.choice(vertices, size=max_samples, replace=False).tolist()
    closed = 0
    wedges = 0
    for v in vertices:
        neigh = graph.neighbors(v)
        d = len(neigh)
        wedges += d * (d - 1) // 2
        for i in range(d):
            a = int(neigh[i])
            rest = neigh[i + 1 :]
            if len(rest):
                closed += int(np.intersect1d(graph.neighbors(a), rest, assume_unique=True).size)
    return closed / wedges if wedges else 0.0


@dataclass(frozen=True)
class EngineCostProfile:
    """Relative operation weights of one matching system.

    Weights are expressed in units of one inner-loop iteration of the
    engine's matching kernel, so a ``difference_weight`` of 6 means one
    set difference costs about six loop iterations. ``native_anti_edges``
    distinguishes Peregrine/AutoZero (anti-edges become set differences in
    the plan) from GraphPi/BigJoin (anti-edges require matching the
    edge-induced skeleton and filtering each match with a UDF, the
    Fig. 14 bottleneck).
    """

    name: str = "generic"
    intersection_weight: float = 2.0
    difference_weight: float = 2.5
    #: Per match emitted to a callback (tuple construction + dispatch).
    materialize_weight: float = 1.5
    #: Per user-UDF invocation on a match.
    per_udf_call_weight: float = 2.5
    #: Per anti-edge existence probe in a Filter UDF.
    filter_check_weight: float = 0.4
    native_anti_edges: bool = True
    #: Wall seconds one abstract cost unit corresponds to on this
    #: engine. Only converts units to seconds (ETAs, cross-engine
    #: comparisons); within-engine *rankings* — everything Algorithm 1
    #: decides — are scale-invariant in it. Calibrated per engine by
    #: ``tools/calibrate_costmodel.py`` from stored cost audits.
    unit_seconds: float = 4e-6
    #: Cost units per interpreted planner-side operation (the Decompose
    #: rule's per-match candidate builds and IEP terms run in Python,
    #: not in the engine kernel, so they are priced separately). The
    #: candidate builds and IEP block intersections are vectorized numpy
    #: set-ops, so one planner op prices at ~1.5 engine cost units —
    #: measured ~1.2 on power-law graphs (a 5-star decomposition runs
    #: 2-10x faster than direct), kept slightly above measurement so the
    #: margin gate stays conservative.
    python_op_weight: float = 1.5


class CostModel:
    """Pattern cost estimation for a (graph, engine, aggregation) triple."""

    def __init__(
        self,
        model: GraphModel,
        profile: EngineCostProfile | None = None,
        aggregation: Aggregation | None = None,
    ) -> None:
        self.model = model
        self.profile = profile or EngineCostProfile()
        self.aggregation = aggregation or CountAggregation()

    @classmethod
    def for_graph(
        cls,
        graph: DataGraph,
        profile: EngineCostProfile | None = None,
        aggregation: Aggregation | None = None,
    ) -> "CostModel":
        return cls(GraphModel.from_graph(graph), profile, aggregation)

    # -- match estimation -------------------------------------------------

    def estimated_matches(self, skel: Pattern, variant: str) -> float:
        """Expected number of unique matches under the graph model.

        Computed as the innermost-loop volume of the nested-loop profile,
        with symmetry-breaking constraints standing in for the
        automorphism quotient. Absolute accuracy is not required — the
        selection algorithm only compares patterns against each other.
        """
        _cost, matches = self._loop_profile(skel, variant)
        return matches

    # -- pattern cost -------------------------------------------------------

    def pattern_cost(self, skel: Pattern, variant: str) -> float:
        """Estimated relative time to match one pattern variant.

        Nested-loop model over the abstract graph plus the application's
        aggregation work on the estimated matches. For engines without
        native anti-edge support, the vertex-induced variant costs the
        edge-induced match work plus per-match materialization and filter
        probes (the Figure 14 baseline).
        """
        if variant not in (EDGE_INDUCED, VERTEX_INDUCED):
            raise ValueError(f"unknown variant {variant!r}")
        if skel.is_clique:
            variant = EDGE_INDUCED

        profile = self.profile
        if variant == VERTEX_INDUCED and not profile.native_anti_edges:
            # Match the edge-induced skeleton, materialize every match and
            # probe anti-edges per match (early exit halves the probes).
            base, matches_e = self._loop_profile(skel, EDGE_INDUCED)
            num_anti = skel.n * (skel.n - 1) // 2 - skel.num_edges
            expected_probes = 1.0 + num_anti / 2.0
            filter_cost = matches_e * (
                profile.materialize_weight
                + expected_probes * profile.filter_check_weight
            )
            _cost_v, matches_v = self._loop_profile(skel, VERTEX_INDUCED)
            return base + filter_cost + self._aggregation_cost(matches_v)

        loop, matches = self._loop_profile(skel, variant)
        return loop + self._aggregation_cost(matches)

    def pattern_set_cost(self, items) -> float:
        """Cost of matching a set of ``(skeleton, variant)`` items."""
        return sum(self.pattern_cost(skel, variant) for skel, variant in items)

    def _aggregation_cost(self, matches: float) -> float:
        per_match = self.aggregation.per_match_cost
        if per_match <= 0.0:
            return 0.0
        return matches * (
            per_match
            + self.profile.per_udf_call_weight
            + self.profile.materialize_weight
        )

    def order_cost(self, skel: Pattern, variant: str, order: list[int]) -> float:
        """Loop cost of matching with a specific matching order.

        This is the scoring function GraphPi-style order selection uses:
        it enumerates candidate orders and keeps the cheapest.
        """
        cost, _matches = self._loop_profile(skel, variant, order)
        return cost

    def _loop_profile(
        self, skel: Pattern, variant: str, order: list[int] | None = None
    ) -> tuple[float, float]:
        """Expected loop work and match volume of the nested-loop match.

        Candidate sizes follow the size-biased degree (edges lead to
        hubs), second and later backward edges close with the clustering
        coefficient, and each symmetry-breaking constraint halves the
        usable neighborhood (the paper's enhancement). Returns
        ``(cost, expected_matches)``; cost is in loop-iteration units and
        excludes iterating the innermost loop (the counting fast path
        never does).
        """
        m = self.model
        if order is None:
            order = matching_order(skel)
        anti_adj = (
            skel.vertex_induced().anti_adjacency
            if variant == VERTEX_INDUCED
            else skel.anti_adjacency
        )
        position = {v: i for i, v in enumerate(order)}
        constraints = _constraint_counts(skel, order)

        partial = 1.0
        cost = 0.0
        final_candidates = 1.0
        for i, v in enumerate(order):
            back_edges = sum(1 for w in skel.neighbors(v) if position[w] < i)
            back_anti = sum(1 for w in anti_adj[v] if position[w] < i)

            if i == 0:
                candidates = m.num_vertices * m.label_fraction(skel.label(v))
            else:
                if back_edges == 0:
                    candidates = m.num_vertices * m.label_fraction(skel.label(v))
                else:
                    candidates = m.biased_degree * m.label_fraction(skel.label(v))
                    candidates *= m.closure_prob ** (back_edges - 1)
                anti_prob = m.closure_prob if back_edges else m.edge_prob
                candidates *= (1.0 - anti_prob) ** back_anti
                # Symmetry enhancement: each partial-order constraint halves
                # the usable neighborhood (expected smaller/larger-id part).
                candidates *= 0.5 ** constraints[i]
                ops = (
                    max(back_edges - 1, 0) * self.profile.intersection_weight
                    + back_anti * self.profile.difference_weight
                )
                # Set-operation work happens once per partial match of the
                # previous level; weights are in loop-iteration units.
                cost += partial * ops
            if i < len(order) - 1:
                # The innermost loop is never iterated when counting (the
                # fast path takes the candidate array's length), so only
                # levels 0..n-2 contribute iteration overhead.
                partial *= max(candidates, 1e-12)
                cost += partial
            else:
                final_candidates = max(candidates, 0.0)
        return cost, partial * final_candidates



def _constraint_counts(skel: Pattern, order: list[int]) -> list[int]:
    """Symmetry-breaking constraints that become active at each level."""
    from repro.core.isomorphism import symmetry_breaking_conditions

    position = {v: i for i, v in enumerate(order)}
    counts = [0] * len(order)
    for u, v in symmetry_breaking_conditions(skel):
        counts[max(position[u], position[v])] += 1
    return counts


@lru_cache(maxsize=65536)
def _matching_order_cached(skel: Pattern) -> tuple[int, ...]:
    degrees = [skel.degree(v) for v in range(skel.n)]
    order = [max(range(skel.n), key=lambda v: (degrees[v], -v))]
    placed = set(order)
    while len(order) < skel.n:
        best = max(
            (v for v in range(skel.n) if v not in placed),
            key=lambda v: (
                sum(1 for w in skel.neighbors(v) if w in placed),
                degrees[v],
                -v,
            ),
        )
        order.append(best)
        placed.add(best)
    return tuple(order)


def matching_order(skel: Pattern) -> list[int]:
    """Default core-first matching order: densest vertex, then max backward
    connectivity — the heuristic Peregrine-style planners use."""
    return list(_matching_order_cached(skel))


#: Rough seconds per cost-model unit (one kernel loop iteration) on the
#: reference machine; used to translate profiled UDF times into the
#: relative units the rest of the model speaks. Only ratios matter, so
#: this constant needs to be right only to within a small factor.
UNIT_SECONDS = 4e-6


def profile_udf_cost(
    udf,
    pattern: Pattern,
    graph: DataGraph,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Estimate a UDF's per-invocation cost in model units (Section 5.2).

    Implements the paper's profiling strategy: generate dummy matches by
    randomly selecting ``|V(p)|`` data vertices, time the UDF on them, and
    return the per-call cost. The UDF must accept a single match tuple
    (like the streaming vertex filters); exceptions from nonsense dummy
    matches are treated as ordinary work.
    """
    import time as _time

    import numpy as _np

    rng = _np.random.default_rng(seed)
    dummies = [
        tuple(int(v) for v in rng.choice(graph.num_vertices, size=pattern.n, replace=False))
        for _ in range(samples)
    ]
    start = _time.perf_counter()
    for match in dummies:
        try:
            udf(match)
        except Exception:
            pass
    elapsed = _time.perf_counter() - start
    return (elapsed / samples) / UNIT_SECONDS
