"""Pattern graphs: the query objects of pattern-centric graph mining.

A :class:`Pattern` is a small graph whose vertices are ``0..n-1``. Besides
regular edges it may carry *anti-edges* (Section 2 of the paper): an
anti-edge ``{u, v}`` disqualifies any candidate subgraph in which the data
vertices matched to ``u`` and ``v`` are adjacent. Anti-edges are how the two
exploration semantics are encoded:

* an *edge-induced* pattern has no anti-edges — any extra edges among the
  matched data vertices are tolerated;
* a *vertex-induced* pattern has an anti-edge between every pair of
  vertices not joined by a regular edge — matches must be exact induced
  subgraphs.

Patterns may also carry per-vertex labels (used by FSM); a label of ``None``
on every vertex means the pattern is unlabeled.

Patterns are immutable and hashable. Structural equality (``==``) compares
the literal vertex numbering; isomorphism-aware identity goes through
:mod:`repro.core.canonical`.
"""

from __future__ import annotations

from functools import cached_property
from itertools import combinations
from typing import Iterable, Sequence


def normalize_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loop on vertex {u} is not a valid pattern edge")
    return (u, v) if u < v else (v, u)


class Pattern:
    """An immutable small graph with edges, anti-edges and optional labels.

    Parameters
    ----------
    n:
        Number of vertices; vertices are the integers ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` regular edges.
    anti_edges:
        Iterable of ``(u, v)`` anti-edges; must be disjoint from ``edges``.
    labels:
        Optional sequence of ``n`` hashable vertex labels. ``None`` means
        unlabeled (equivalent to all labels being ``None``).
    """

    __slots__ = ("n", "edges", "anti_edges", "labels", "_hash", "__dict__")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        anti_edges: Iterable[tuple[int, int]] = (),
        labels: Sequence | None = None,
    ) -> None:
        if n < 1:
            raise ValueError("pattern must have at least one vertex")
        edge_set = frozenset(normalize_edge(u, v) for u, v in edges)
        anti_set = frozenset(normalize_edge(u, v) for u, v in anti_edges)
        for u, v in edge_set | anti_set:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for {n} vertices")
        overlap = edge_set & anti_set
        if overlap:
            raise ValueError(f"edges and anti-edges overlap: {sorted(overlap)}")
        if labels is not None:
            labels = tuple(labels)
            if len(labels) != n:
                raise ValueError(f"expected {n} labels, got {len(labels)}")
            if all(lab is None for lab in labels):
                labels = None
        self.n = n
        self.edges = edge_set
        self.anti_edges = anti_set
        self.labels = labels
        self._hash = hash((n, edge_set, anti_set, labels))

    # ------------------------------------------------------------------
    # Constructors for common shapes (Figure 1 of the paper).
    # ------------------------------------------------------------------

    @classmethod
    def clique(cls, n: int, labels: Sequence | None = None) -> "Pattern":
        """Complete graph on ``n`` vertices (edge- and vertex-induced at once)."""
        return cls(n, combinations(range(n), 2), labels=labels)

    @classmethod
    def cycle(cls, n: int, labels: Sequence | None = None) -> "Pattern":
        """Simple cycle ``0-1-...-(n-1)-0``."""
        if n < 3:
            raise ValueError("a cycle needs at least 3 vertices")
        return cls(n, [(i, (i + 1) % n) for i in range(n)], labels=labels)

    @classmethod
    def star(cls, n: int, labels: Sequence | None = None) -> "Pattern":
        """Star with center ``0`` and ``n - 1`` leaves."""
        if n < 2:
            raise ValueError("a star needs at least 2 vertices")
        return cls(n, [(0, i) for i in range(1, n)], labels=labels)

    @classmethod
    def path(cls, n: int, labels: Sequence | None = None) -> "Pattern":
        """Simple path ``0-1-...-(n-1)``."""
        if n < 2:
            raise ValueError("a path needs at least 2 vertices")
        return cls(n, [(i, i + 1) for i in range(n - 1)], labels=labels)

    # ------------------------------------------------------------------
    # Structure queries.
    # ------------------------------------------------------------------

    @cached_property
    def adjacency(self) -> tuple[frozenset[int], ...]:
        """Regular-edge neighbor sets, indexed by vertex."""
        adj: list[set[int]] = [set() for _ in range(self.n)]
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return tuple(frozenset(s) for s in adj)

    @cached_property
    def anti_adjacency(self) -> tuple[frozenset[int], ...]:
        """Anti-edge neighbor sets, indexed by vertex."""
        adj: list[set[int]] = [set() for _ in range(self.n)]
        for u, v in self.anti_edges:
            adj[u].add(v)
            adj[v].add(u)
        return tuple(frozenset(s) for s in adj)

    def neighbors(self, v: int) -> frozenset[int]:
        return self.adjacency[v]

    def anti_neighbors(self, v: int) -> frozenset[int]:
        return self.anti_adjacency[v]

    def degree(self, v: int) -> int:
        return len(self.adjacency[v])

    def label(self, v: int):
        return None if self.labels is None else self.labels[v]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def has_edge(self, u: int, v: int) -> bool:
        return normalize_edge(u, v) in self.edges

    def has_anti_edge(self, u: int, v: int) -> bool:
        return normalize_edge(u, v) in self.anti_edges

    @cached_property
    def non_edges(self) -> frozenset[tuple[int, int]]:
        """Vertex pairs joined by neither an edge nor an anti-edge."""
        every = {normalize_edge(u, v) for u, v in combinations(range(self.n), 2)}
        return frozenset(every - self.edges - self.anti_edges)

    @cached_property
    def is_connected(self) -> bool:
        """Connectivity over regular edges only."""
        if self.n == 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for w in self.adjacency[u]:
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return len(seen) == self.n

    @property
    def is_clique(self) -> bool:
        return self.num_edges == self.n * (self.n - 1) // 2

    @property
    def is_edge_induced(self) -> bool:
        return not self.anti_edges

    @property
    def is_vertex_induced(self) -> bool:
        """True when every non-edge is an anti-edge (cliques qualify trivially)."""
        return not self.non_edges

    @property
    def is_labeled(self) -> bool:
        return self.labels is not None

    # ------------------------------------------------------------------
    # Variants (Section 2): pᴱ and pⱽ share regular edges and differ only
    # in anti-edges.
    # ------------------------------------------------------------------

    def edge_induced(self) -> "Pattern":
        """The edge-induced variant pᴱ (anti-edges dropped)."""
        if self.is_edge_induced:
            return self
        return Pattern(self.n, self.edges, labels=self.labels)

    def vertex_induced(self) -> "Pattern":
        """The vertex-induced variant pⱽ (anti-edges on every non-edge)."""
        if self.is_vertex_induced:
            return self
        anti = [
            (u, v)
            for u, v in combinations(range(self.n), 2)
            if normalize_edge(u, v) not in self.edges
        ]
        return Pattern(self.n, self.edges, anti, labels=self.labels)

    # ------------------------------------------------------------------
    # Transformations.
    # ------------------------------------------------------------------

    def relabel(self, perm: Sequence[int]) -> "Pattern":
        """Rename vertices: vertex ``v`` becomes ``perm[v]``."""
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of the vertex ids")
        new_labels = None
        if self.labels is not None:
            new_labels = [None] * self.n
            for v in range(self.n):
                new_labels[perm[v]] = self.labels[v]
        return Pattern(
            self.n,
            [(perm[u], perm[v]) for u, v in self.edges],
            [(perm[u], perm[v]) for u, v in self.anti_edges],
            labels=new_labels,
        )

    def with_edge(self, u: int, v: int) -> "Pattern":
        """Superpattern obtained by turning one non-adjacent pair into an edge.

        Any anti-edge on the pair is removed; the variant character of the
        pattern is otherwise preserved.
        """
        e = normalize_edge(u, v)
        if e in self.edges:
            raise ValueError(f"edge {e} already present")
        return Pattern(
            self.n,
            self.edges | {e},
            self.anti_edges - {e},
            labels=self.labels,
        )

    def with_labels(self, labels: Sequence | None) -> "Pattern":
        return Pattern(self.n, self.edges, self.anti_edges, labels=labels)

    def unlabeled(self) -> "Pattern":
        return self if self.labels is None else self.with_labels(None)

    # ------------------------------------------------------------------
    # Dunder plumbing.
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self.n == other.n
            and self.edges == other.edges
            and self.anti_edges == other.anti_edges
            and self.labels == other.labels
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [f"n={self.n}", f"edges={sorted(self.edges)}"]
        if self.anti_edges:
            parts.append(f"anti={sorted(self.anti_edges)}")
        if self.labels is not None:
            parts.append(f"labels={self.labels}")
        return f"Pattern({', '.join(parts)})"
