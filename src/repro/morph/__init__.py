"""Subgraph Morphing front-end: sessions and per-engine cost profiles."""

from repro.morph.cache import MeasurementCache
from repro.morph.profiles import profile_for
from repro.morph.session import (
    MorphingSession,
    MorphRunResult,
    compare_baseline_and_morphed,
)

__all__ = [
    "MeasurementCache",
    "MorphingSession",
    "MorphRunResult",
    "compare_baseline_and_morphed",
    "profile_for",
]
