"""End-to-end Subgraph Morphing pipeline (Figure 5).

:class:`MorphingSession` wraps any engine and runs the enhanced workflow:
*pattern transformation* (S-DAG + Algorithm 1) → *matching* (the wrapped
engine, untouched) → *result transformation* (Algorithm 2 for batched
aggregations, Algorithm 3 for streamed matches). Disable morphing with
``enabled=False`` to get the baseline path; both paths return identical
results, which every benchmark asserts (claim C1).

The two public entry points mirror the paper's output modes:

* :meth:`MorphingSession.run` — batched mode (counts, MNI, match lists);
* :meth:`MorphingSession.run_streaming` — streaming mode with on-the-fly
  conversion and an optional pre-conversion vertex filter (Section 7.3's
  workload: the filter only depends on the matched vertex set, so it runs
  once per alternative match, before fan-out).

Most callers want neither directly: :func:`repro.run` builds the session,
resolves the engine by name, and attaches tracing in one call.

**Telemetry.** Pass ``tracer=repro.Tracer()`` and every phase of the run
is spanned — ``transform`` (with a ``selection`` child), ``match`` with
one ``match.item`` span per measured alternative (kernel and shard spans
nested below), ``convert``, plus ``executor.setup``/``teardown`` for the
worker pool's fixed cost. Phase spans *are* the timers the result
reports: ``MorphRunResult.transform_seconds`` is the transform span's
duration, so trace and result always reconcile exactly. Traced morphed
runs additionally emit one cost-model audit record per measured
alternative pattern (Algorithm 1's predicted cost vs the measured match
time — §5.2's accuracy story) and a ``selection`` summary record.
Tracing changes no results (asserted byte-for-byte by the trace
invariance tests); with ``tracer=None`` nothing is recorded and the
count path keeps engine-native multi-pattern batching.

**Progress.** Pass ``progress=repro.ProgressReporter()`` and the
per-item match loop reports live progress: the ETA is seeded from
Algorithm 1's predicted per-item costs and corrected online by the
measured ``match.item`` durations (see :mod:`repro.observe.progress`).
Off by default, at the cost of one ``is None`` test per item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.aggregation import Aggregation, CountAggregation, Match
from repro.core.atlas import pattern_name
from repro.core.conversion import (
    OnTheFlyConverter,
    convert_aggregation_store,
    convert_counts,
    on_the_fly_plan,
)
from repro.core.costmodel import CostModel
from repro.core.equations import Item, UnderivableError, item_of, materialize
from repro.core.pattern import Pattern
from repro.core.selection import SelectionResult, select_alternative_patterns
from repro.engines.base import EngineStats, MiningEngine
from repro.errors import RunDeadlineExceeded
from repro.graph.datagraph import DataGraph
from repro.morph.profiles import profile_for
from repro.observe.audit import CostAuditRecord
from repro.observe.export import RunTrace
from repro.observe.progress import ProgressReporter
from repro.observe.tracer import Tracer, timed_span
from repro.plan.rewrite import DecomposeStep, RewritePlan
from repro.plan.rules import decompose_count
from repro.plan.search import STRATEGIES, search_plan


def _item_label(item: Item) -> str:
    """Human-readable ``name^variant`` label for spans and audit records."""
    skel, variant = item
    return f"{pattern_name(skel)}^{variant}"


@dataclass
class MorphRunResult:
    """Results plus the bookkeeping the evaluation figures report."""

    results: dict[Pattern, Any]
    stats: EngineStats
    morphing_enabled: bool
    measured: frozenset[Item] = field(default_factory=frozenset)
    selection: SelectionResult | None = None
    #: The executed :class:`repro.plan.RewritePlan` (morphed runs only).
    plan: RewritePlan | None = None
    transform_seconds: float = 0.0
    match_seconds: float = 0.0
    convert_seconds: float = 0.0
    #: Fixed cost of the shard-parallel transport: worker-pool spin-up
    #: plus teardown, both outside the match window. Serial runs (and
    #: runs on a caller-owned warm pool) report 0.0. Kept separate so
    #: consumers comparing steady-state throughput can subtract it.
    executor_seconds: float = 0.0
    #: :class:`repro.observe.RunTrace` when the session was traced.
    trace: RunTrace | None = None

    @property
    def total_seconds(self) -> float:
        """End-to-end time: transform + match + convert + executor.

        ``executor_seconds`` is included so morphed-vs-baseline
        comparisons under ``workers > 1`` account the pool's fixed cost
        (it used to be silently dropped, flattering the parallel side);
        subtract the field to recover the old phases-only number.
        """
        return (
            self.transform_seconds
            + self.match_seconds
            + self.convert_seconds
            + self.executor_seconds
        )


@dataclass
class PartialRunResult(MorphRunResult):
    """A deadline-degraded run: aggregates over completed shards only.

    Returned (instead of raising) when a run's ``deadline_seconds``
    expires before every shard completed. ``results`` holds the queries
    that were still derivable from fully-completed items; queries the
    completed set cannot determine are listed in ``unresolved`` (absent
    from ``results`` — a partial value is never passed off as an
    answer). Items interrupted mid-pattern expose their merged
    completed-shard aggregate in ``partial_items``, clearly labeled as
    partial. ``coverage`` is ``completed_shards / total_shards``, where
    interrupted and never-started items are charged their full shard
    count.
    """

    coverage: float = 1.0
    completed_shards: int = 0
    total_shards: int = 0
    #: queries whose values the completed items cannot determine.
    unresolved: tuple[Pattern, ...] = ()
    #: item -> merged aggregate over that item's *completed* shards.
    partial_items: dict[Item, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """False by construction — this run was cut short."""
        return not self.unresolved and self.coverage >= 1.0


class MorphingSession:
    """Subgraph Morphing around an unmodified matching engine."""

    def __init__(
        self,
        engine: MiningEngine,
        *args: Any,
        options: "RunOptions | None" = None,
        aggregation: Aggregation | None = None,
        enabled: bool = True,
        strategy: str = "auto",
        margin: float = 0.6,
        cache: "MeasurementCache | None" = None,
        plan_cache: "PlanCache | None" = None,
        workers: int = 1,
        executor=None,
        tracer: Tracer | None = None,
        progress: ProgressReporter | None = None,
        batch_roots: int | None = None,
        deadline_seconds: float | None = None,
        checkpoint=None,
        retry=None,
        faults=None,
    ) -> None:
        """Configuration is keyword-only (positional config is a
        deprecated shim, see :mod:`repro._compat`).

        ``options`` — a :class:`repro.RunOptions` — is the consolidated
        form of the whole configuration and what the session actually
        consumes; the individual keywords below remain as conveniences
        and are folded into a ``RunOptions`` when ``options`` is not
        given (passing both raises, so a call site has exactly one
        source of truth). ``executor`` stays a session-level knob: a
        caller-owned transport is a live in-process object, not run
        configuration.

        ``margin`` is forwarded to Algorithm 1: a morph must be
        predicted to cost under ``margin`` times what it saves. ``margin
        >= 1`` accepts any predicted win; large values force morphing
        (useful to reproduce the paper's blind-morphing comparison,
        §7.5). ``cache`` optionally memoizes measured alternative values
        across runs on the same graph (FSM levels share superpatterns).

        ``strategy`` picks the batched-mode rewrite strategy (see
        :func:`repro.plan.search.search_plan`): ``"auto"`` (default)
        lets direct matching and IEP decomposition compete per measured
        item under the cost model, ``"morph"`` is Algorithm 1 exactly,
        ``"decompose"`` forces decomposition wherever legal, and
        ``"direct"`` disables rewriting while keeping the session's
        bookkeeping. Streaming runs always use Algorithm 1 (a
        decomposition produces arithmetic, not a match stream).
        ``plan_cache`` (a :class:`repro.PlanCache`) memoizes the entire
        search result across runs keyed by graph fingerprint, queries,
        aggregation, engine and strategy.

        ``workers`` enables the shard-parallel execution layer: with
        ``workers > 1`` every pattern's matching fans out over
        degree-balanced root-vertex shards (one warm worker pool per
        run) and merges deterministically, so results — counts, MNI
        tables, ordered match lists — are identical to ``workers=1``.
        ``executor`` overrides the transport (``"process"``/``"serial"``
        or a ``ShardExecutor`` instance); the serial in-process path is
        the default and behavior is unchanged unless ``workers > 1`` or
        an executor is supplied.

        ``tracer`` attaches structured telemetry (see the module
        docstring); results are identical traced or not.

        ``progress`` attaches a live :class:`repro.ProgressReporter` to
        the per-item match loop: its ETA is seeded from Algorithm 1's
        predicted per-item costs and corrected online by the measured
        ``match.item`` durations. Like tracing, attaching progress
        trades the count path's engine-native multi-pattern batching for
        per-item measurement (identical results), and ``progress=None``
        (the default) costs one ``is None`` test per item.

        ``batch_roots`` switches the wrapped engine's match kernels to
        the vectorized batched-frontier path
        (:mod:`repro.engines.frontier`): roots expand in chunks of that
        size through whole-frontier numpy set-ops instead of a per-root
        Python DFS. Results — counts, MNI tables, ordered match lists —
        are byte-identical to the default per-root path (the
        ``tests/test_frontier.py`` differential matrix pins this), and
        the setting composes with every other knob: shards feed root
        batches, so workers/retries/deadlines/checkpoints behave
        unchanged, and with ``progress`` the ETA recalibrates after
        every chunk. ``None`` (the default) keeps the per-root kernels.

        **Fault tolerance** (any of the four below activates it; matching
        then always routes through the sharded path, in-process when
        ``workers <= 1``): ``deadline_seconds`` bounds the run's wall
        time — on expiry outstanding shards are cancelled and batched
        runs return a :class:`PartialRunResult` (streaming runs raise
        :class:`repro.errors.RunDeadlineExceeded`). ``checkpoint`` is a
        :class:`repro.ShardCheckpoint` or a path to one: completed
        shards are journaled as they finish and a resumed run skips
        them. ``retry`` is a :class:`repro.RetryPolicy` (or an int
        ``max_retries``) governing re-execution of crashed shards.
        ``faults`` injects a :class:`repro.FaultPlan` (tests only)."""
        from repro.options import RunOptions

        if args:
            from repro import _compat

            overrides = _compat.positional_config(
                "MorphingSession",
                ("aggregation", "enabled", "margin", "cache", "workers", "executor"),
                args,
            )
            aggregation = overrides.get("aggregation", aggregation)
            enabled = overrides.get("enabled", enabled)
            margin = overrides.get("margin", margin)
            cache = overrides.get("cache", cache)
            workers = overrides.get("workers", workers)
            executor = overrides.get("executor", executor)
        if options is None:
            options = RunOptions(
                engine=getattr(engine, "name", "engine"),
                aggregation=aggregation,
                morph=enabled,
                strategy=strategy,
                margin=margin,
                cache=cache,
                plan_cache=plan_cache,
                workers=workers,
                trace=tracer,
                progress=progress,
                batch_roots=batch_roots,
                deadline_seconds=deadline_seconds,
                checkpoint=checkpoint,
                retry=retry,
                faults=faults,
            )
        elif (
            aggregation is not None
            or enabled is not True
            or strategy != "auto"
            or margin != 0.6
            or cache is not None
            or plan_cache is not None
            or workers != 1
            or tracer is not None
            or progress is not None
            or batch_roots is not None
            or deadline_seconds is not None
            or checkpoint is not None
            or retry is not None
            or faults is not None
        ):
            raise TypeError(
                "pass the configuration either as options=RunOptions(...) "
                "or as individual keywords, not both"
            )
        self.engine = engine
        #: The consolidated run configuration (:class:`repro.RunOptions`).
        self.options = options
        self.aggregation = options.resolved_aggregation()
        self.enabled = options.morph
        self.strategy = options.strategy
        self.margin = options.margin
        self.cache = options.cache
        self.plan_cache = options.plan_cache
        self.workers = options.workers
        self.executor = executor
        self.tracer, _ = options.resolved_tracer()
        self.progress = options.resolved_progress()
        self.batch_roots = options.batch_roots
        self.deadline_seconds = options.deadline_seconds
        self.checkpoint = options.checkpoint
        self.retry = options.retry
        self.faults = options.faults
        #: The active run's RunControl (set by ``_run_scoped`` for the
        #: duration of one run; the sharded helpers read it).
        self._control = None

    # -- shard-parallel plumbing -------------------------------------------

    def _make_executor(self, force: bool = False):
        """Resolve the run's executor: ``(executor, owned)`` or ``(None, _)``.

        One executor (and so one warm worker pool) serves every pattern
        of a run; a caller-supplied ``ShardExecutor`` instance outlives
        the run (``owned=False``). ``force`` (fault-tolerant runs)
        resolves an in-process executor even when ``workers <= 1`` so
        retries/deadlines/checkpoints apply on the sharded path.
        """
        if self.workers <= 1 and self.executor is None:
            if not force:
                return None, False
            from repro.engines.execution import SerialShardExecutor

            return SerialShardExecutor(1), True
        from repro.engines.execution import ShardExecutor, make_executor

        owned = not isinstance(self.executor, ShardExecutor)
        return make_executor(self.workers, self.executor), owned

    def _make_control(self, graph):
        """Build one run's RunControl: ``(control, owns_checkpoint)``.

        ``None`` when no fault-tolerance option is set — the run then
        takes the exact pre-existing code paths. A ``checkpoint`` given
        as a path is opened here (the graph's identity goes into the
        journal's meta line) and closed by ``_run_scoped``.
        """
        if (
            self.deadline_seconds is None
            and self.checkpoint is None
            and self.retry is None
            and self.faults is None
        ):
            return None, False
        from repro.engines.recovery import RunControl

        checkpoint = self.checkpoint
        owns_checkpoint = False
        if checkpoint is not None and not hasattr(checkpoint, "get"):
            from repro.checkpoint import ShardCheckpoint

            checkpoint = ShardCheckpoint(
                checkpoint,
                meta={
                    "graph": graph.name,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    "engine": self.engine.name,
                    "aggregation": self.aggregation.name,
                },
            )
            owns_checkpoint = True
        control = RunControl(
            retry=self.retry,
            deadline=self.deadline_seconds,
            checkpoint=checkpoint,
            faults=self.faults,
            progress=self.progress,
        )
        return control, owns_checkpoint

    def _count_set(self, graph, patterns, exec_):
        """Counts for a pattern set, sharded when an executor is active.

        The serial path keeps engine-native multi-pattern execution
        (AutoZero's merged schedules, SumPA's abstraction); the sharded
        path fans each pattern over root-vertex shards instead.
        """
        if exec_ is None:
            return self.engine.count_set(graph, patterns)
        from repro.engines.execution import run_sharded

        return {
            p: run_sharded(
                self.engine,
                graph,
                p,
                CountAggregation(),
                exec_,
                tracer=self.tracer,
                control=self._control,
            )
            for p in patterns
        }

    def _aggregate_one(self, graph, pattern, exec_):
        if exec_ is None:
            return self.engine.aggregate(graph, pattern, self.aggregation)
        from repro.engines.execution import run_sharded

        return run_sharded(
            self.engine,
            graph,
            pattern,
            self.aggregation,
            exec_,
            tracer=self.tracer,
            control=self._control,
        )

    def _explore(self, graph, pattern, callback, exec_) -> None:
        """Stream matches through ``callback``, sharded when parallel.

        The parallel path materializes each shard's matches, merges them
        in shard order (= the serial enumeration order) and replays the
        stream in the parent, so callbacks observe the exact serial
        sequence without having to cross process boundaries.
        """
        if exec_ is None:
            self.engine.explore(graph, pattern, callback)
            return
        from repro.core.aggregation import MatchListAggregation
        from repro.engines.execution import run_sharded

        matches = run_sharded(
            self.engine,
            graph,
            pattern,
            MatchListAggregation(),
            exec_,
            tracer=self.tracer,
            control=self._control,
        )
        for match in matches:
            callback(pattern, match)

    # -- run scaffolding (tracing + executor lifetime) -----------------------

    def _run_scoped(self, graph, mode: str, num_patterns: int, body):
        """Shared entry-point scaffolding for batched and streaming runs.

        Owns the root ``run`` span, the executor's lifetime (eager
        ``prepare`` so pool spin-up is measured instead of hiding in
        the first pattern's match window — the ``executor_seconds``
        fix), the engine's tracer attachment, and the result's trace.
        """
        if getattr(self.engine, "busy", False):
            raise ValueError(
                f"{type(self.engine).__name__} instance is already mid-run; "
                "engine instances carry per-run mutable state and cannot be "
                "shared across concurrent runs"
            )
        self.engine.busy = True
        self.engine.reset_stats()
        tracer = self.tracer
        control, owns_checkpoint = self._make_control(graph)
        parallel = (
            self.workers > 1 or self.executor is not None or control is not None
        )
        setup_seconds = teardown_seconds = 0.0
        with timed_span(
            tracer,
            "run",
            mode=mode,
            engine=self.engine.name,
            patterns=num_patterns,
            morphing=self.enabled,
            workers=self.workers,
        ):
            previous_tracer = self.engine.tracer
            self.engine.tracer = tracer
            previous_batch = self.engine.batch_roots
            previous_progress = self.engine.progress
            self.engine.batch_roots = self.batch_roots
            self.engine.progress = self.progress
            exec_, owned = None, False
            self._control = control
            try:
                if parallel:
                    with timed_span(tracer, "executor.setup") as setup_span:
                        exec_, owned = self._make_executor(
                            force=control is not None
                        )
                        if exec_ is not None and owned:
                            exec_.prepare(self.engine, graph)
                    setup_seconds = setup_span.seconds
                result = body(exec_)
            finally:
                self._control = None
                if exec_ is not None and owned:
                    with timed_span(tracer, "executor.teardown") as teardown_span:
                        exec_.close()
                    teardown_seconds = teardown_span.seconds
                if owns_checkpoint and control.checkpoint is not None:
                    control.checkpoint.close()
                self.engine.tracer = previous_tracer
                self.engine.batch_roots = previous_batch
                self.engine.progress = previous_progress
                self.engine.busy = False
                if self.progress is not None:
                    # A run that raised mid-render would otherwise leave
                    # a dangling \r-overwritten line for the traceback
                    # to print over; close() terminates it (and is a
                    # no-op after a normal finish()).
                    self.progress.close()
        result.executor_seconds = setup_seconds + teardown_seconds
        if tracer is not None:
            tracer.metrics.record_engine_stats(result.stats)
            result.trace = RunTrace.from_tracer(
                tracer,
                engine=self.engine.name,
                mode=mode,
                morphing=self.enabled,
                workers=self.workers,
            )
        return result

    def _emit_audits(
        self,
        selection: SelectionResult,
        cost_model: CostModel,
        item_seconds: dict[Item, float],
        store: dict[Item, Any] | None,
        cached_items: set[Item],
        plan: RewritePlan | None = None,
    ) -> None:
        """One audit record per measured item, plus the set summary."""
        tracer = self.tracer
        assert tracer is not None
        query_items = set(selection.query_items.values())
        for item in sorted(selection.measured, key=repr):
            skel, variant = item
            value = store.get(item) if store is not None else None
            extra = {}
            predicted = selection.item_costs.get(
                item, cost_model.pattern_cost(skel, variant)
            )
            if plan is not None:
                step = plan.step_for(item)
                if step.rule != "direct":
                    # Audit the step the planner actually executed: a
                    # decomposed item's measurement is the decomposition's
                    # wall time, so pairing it with the direct cost would
                    # poison the unit_seconds fit and the rank score.
                    extra["rule"] = step.rule
                    predicted = step.predicted_cost
            tracer.audit(
                CostAuditRecord(
                    item=_item_label(item),
                    pattern_id=_pattern_id(skel),
                    variant=variant,
                    role="query" if item in query_items else "alternative",
                    predicted_cost=predicted,
                    measured_seconds=item_seconds.get(item, 0.0),
                    predicted_matches=cost_model.estimated_matches(skel, variant),
                    measured_matches=value if isinstance(value, int) else None,
                    cached=item in cached_items,
                    extra=extra,
                )
            )
        tracer.audit(
            CostAuditRecord(
                item="<selected-set>",
                pattern_id=0,
                variant="*",
                role="selection",
                predicted_cost=selection.estimated_cost,
                measured_seconds=sum(item_seconds.values()),
                extra={
                    "estimated_query_cost": selection.estimated_query_cost,
                    "rounds": selection.rounds,
                    "measured_items": len(selection.measured),
                    "morphed_queries": sum(selection.morphed.values()),
                },
            )
        )

    # -- batched mode --------------------------------------------------------

    def run(self, graph: DataGraph, patterns: Sequence[Pattern]) -> MorphRunResult:
        """Mine all query patterns, morphing when enabled."""
        patterns = list(patterns)
        return self._run_scoped(
            graph,
            "batched",
            len(patterns),
            lambda exec_: self._run_batched(graph, patterns, exec_),
        )

    def _measure_item(self, graph, item: Item, exec_, count_mode: bool):
        """Measure one item's value (the traced per-item match path)."""
        pattern = materialize(item)
        if count_mode:
            return self._count_set(graph, [pattern], exec_)[pattern]
        return self._aggregate_one(graph, pattern, exec_)

    def _execute_decompose(self, graph, step: DecomposeStep, exec_) -> int:
        """Execute one decompose step: stream the prefix, IEP the rest.

        The prefix streams through :meth:`_explore`, so shards, retries
        and deadlines compose exactly as for a direct measurement.
        """
        return decompose_count(
            graph,
            step.decomposition,
            lambda pattern, callback: self._explore(
                graph, pattern, callback, exec_
            ),
            self.engine.stats,
        )

    def _run_batched(
        self, graph: DataGraph, patterns: list[Pattern], exec_
    ) -> MorphRunResult:
        if not self.enabled:
            return self._run_baseline(graph, patterns, exec_)
        tracer = self.tracer

        with timed_span(tracer, "transform", queries=len(patterns)) as transform_span:
            cost_model = CostModel.for_graph(
                graph, profile_for(self.engine), self.aggregation
            )
            plan: RewritePlan | None = None
            if self.plan_cache is not None:
                plan = self.plan_cache.get(
                    graph,
                    patterns,
                    self.aggregation,
                    engine=self.engine.name,
                    strategy=self.strategy,
                    margin=self.margin,
                )
                if tracer is not None:
                    tracer.metrics.add(
                        "plan.cache.hit" if plan is not None else "plan.cache.miss"
                    )
            with timed_span(
                tracer,
                "plan.search",
                strategy=self.strategy,
                cached=plan is not None,
            ) as search_span:
                if plan is None:
                    plan = search_plan(
                        patterns,
                        cost_model,
                        self.aggregation,
                        strategy=self.strategy,
                        margin=self.margin,
                        tracer=tracer,
                    )
                    if self.plan_cache is not None:
                        self.plan_cache.put(
                            graph,
                            patterns,
                            self.aggregation,
                            plan,
                            engine=self.engine.name,
                            strategy=self.strategy,
                            margin=self.margin,
                        )
            selection = plan.selection
            search_span.attributes.update(
                measured=len(selection.measured),
                decompose_steps=len(plan.decompose_steps),
                predicted_cost=plan.predicted_cost,
            )
            if selection.truncated and tracer is not None:
                tracer.metrics.add("plan.truncated", len(selection.truncations))
        transform_seconds = transform_span.seconds

        if not any(selection.morphed.values()) and not plan.decompose_steps:
            # The cost model declined every morph: run the queries as
            # given (their own numbering and plans), keeping the selection
            # metadata so callers can see the decision.
            baseline = self._run_baseline(
                graph, patterns, exec_, selection=selection, cost_model=cost_model
            )
            if isinstance(baseline, PartialRunResult):
                # The deadline interrupted the passthrough run: keep its
                # coverage bookkeeping, not just its results.
                return PartialRunResult(
                    results=baseline.results,
                    stats=baseline.stats,
                    morphing_enabled=True,
                    measured=selection.measured,
                    selection=selection,
                    plan=plan,
                    transform_seconds=transform_seconds,
                    match_seconds=baseline.match_seconds,
                    coverage=baseline.coverage,
                    completed_shards=baseline.completed_shards,
                    total_shards=baseline.total_shards,
                    unresolved=baseline.unresolved,
                    partial_items=baseline.partial_items,
                )
            return MorphRunResult(
                results=baseline.results,
                stats=baseline.stats,
                morphing_enabled=True,
                measured=selection.measured,
                selection=selection,
                plan=plan,
                transform_seconds=transform_seconds,
                match_seconds=baseline.match_seconds,
            )

        store: dict[Item, Any] = {}
        count_mode = isinstance(self.aggregation, CountAggregation)
        item_seconds: dict[Item, float] = {}
        cached_items: set[Item] = set()
        with timed_span(
            tracer, "match", items=len(selection.measured)
        ) as match_span:
            measured_items = sorted(selection.measured, key=repr)

            if self.cache is not None:
                cached = {
                    item: self.cache.get(graph, self.aggregation, item)
                    for item in measured_items
                }
                store.update({k: v for k, v in cached.items() if v is not None})
                cached_items = set(store)
                measured_items = [i for i in measured_items if i not in cached_items]

            progress = self.progress
            control = self._control
            unstarted_items: list[Item] = []
            incomplete_items: set[Item] = set()
            if (
                count_mode
                and tracer is None
                and progress is None
                and control is None
            ):
                # Engine-native multi-pattern execution (AutoZero's merged
                # schedules, SumPA's abstraction). The traced path trades
                # it for per-item measurement — identical counts, and the
                # audit gets a real per-alternative match time. The
                # fault-tolerant path also trades it away: completion is
                # tracked per item.
                concrete = {
                    item: materialize(item)
                    for item in measured_items
                    if not isinstance(plan.step_for(item), DecomposeStep)
                }
                if concrete:
                    counts = self._count_set(
                        graph, list(concrete.values()), exec_
                    )
                    for item, pattern in concrete.items():
                        store[item] = counts[pattern]
                for item in measured_items:
                    if item not in concrete:
                        store[item] = self._execute_decompose(
                            graph, plan.step_for(item), exec_
                        )
            else:
                if progress is not None:
                    progress.start(
                        [
                            (
                                _item_label(item),
                                selection.item_costs.get(
                                    item, cost_model.pattern_cost(*item)
                                ),
                            )
                            for item in measured_items
                        ]
                    )
                for item in measured_items:
                    if control is not None and control.expired():
                        unstarted_items.append(item)
                        continue
                    if progress is not None:
                        progress.item_started(_item_label(item))
                    step = plan.step_for(item)
                    with timed_span(
                        tracer,
                        "match.item",
                        item=_item_label(item),
                        rule=step.rule,
                    ) as item_span:
                        if isinstance(step, DecomposeStep):
                            store[item] = self._execute_decompose(
                                graph, step, exec_
                            )
                        else:
                            store[item] = self._measure_item(
                                graph, item, exec_, count_mode
                            )
                    if (
                        control is not None
                        and control.reports
                        and not control.reports[-1].complete
                    ):
                        incomplete_items.add(item)
                    item_seconds[item] = item_span.seconds
                    if progress is not None:
                        progress.item_finished(
                            _item_label(item), item_span.seconds
                        )
                if progress is not None:
                    progress.finish()
            # An interrupted item's value covers only its completed
            # shards: keep it out of the conversion store (and the
            # cache) so a partial aggregate is never passed off as full.
            partial_values = {
                item: store.pop(item) for item in sorted(incomplete_items, key=repr)
            }
            if self.cache is not None:
                for item in measured_items:
                    if item in store:
                        self.cache.put(graph, self.aggregation, item, store[item])
        match_seconds = match_span.seconds

        interrupted = control is not None and (
            control.interrupted or unstarted_items or incomplete_items
        )
        with timed_span(tracer, "convert", queries=len(patterns)) as convert_span:
            unresolved: list[Pattern] = []
            if not interrupted and tracer is None:
                if count_mode:
                    results: dict[Pattern, Any] = convert_counts(patterns, store)
                else:
                    results = convert_aggregation_store(
                        patterns, store, self.aggregation
                    )
            else:
                # Per-query combine-step execution (one ``plan.step``
                # span each). On an interrupted run a query survives if
                # the completed items still determine it (Eq. 1 may need
                # only a subset).
                results = {}
                for cstep in plan.combine_steps:
                    query = cstep.query
                    with timed_span(
                        tracer,
                        "plan.step",
                        kind="combine",
                        mode=cstep.mode,
                        query=pattern_name(query),
                    ):
                        try:
                            if count_mode:
                                results[query] = convert_counts(
                                    [query], store
                                )[query]
                            else:
                                results[query] = convert_aggregation_store(
                                    [query], store, self.aggregation
                                )[query]
                        except UnderivableError:
                            if not interrupted:
                                raise
                            unresolved.append(query)
        convert_seconds = convert_span.seconds

        if tracer is not None:
            self._emit_audits(
                selection, cost_model, item_seconds, store, cached_items, plan
            )

        if interrupted:
            return PartialRunResult(
                results=results,
                stats=self.engine.stats,
                morphing_enabled=True,
                measured=selection.measured,
                selection=selection,
                plan=plan,
                transform_seconds=transform_seconds,
                match_seconds=match_seconds,
                convert_seconds=convert_seconds,
                coverage=control.coverage(len(unstarted_items)),
                completed_shards=control.completed_shards,
                total_shards=control.charged_total(len(unstarted_items)),
                unresolved=tuple(unresolved),
                partial_items=partial_values,
            )
        return MorphRunResult(
            results=results,
            stats=self.engine.stats,
            morphing_enabled=True,
            measured=selection.measured,
            selection=selection,
            plan=plan,
            transform_seconds=transform_seconds,
            match_seconds=match_seconds,
            convert_seconds=convert_seconds,
        )

    def _run_baseline(
        self,
        graph: DataGraph,
        patterns: list[Pattern],
        exec_=None,
        selection: SelectionResult | None = None,
        cost_model: CostModel | None = None,
    ) -> MorphRunResult:
        """The unmorphed path: match every query pattern as given.

        ``selection``/``cost_model`` are passed when the morphed path
        declined every morph — the queries are then the measured items,
        and a traced run still emits their audit records.
        """
        tracer = self.tracer
        progress = self.progress
        control = self._control
        count_mode = isinstance(self.aggregation, CountAggregation)
        item_seconds: dict[Item, float] = {}
        unstarted = 0
        unresolved: list[Pattern] = []
        partial_values: dict[Item, Any] = {}
        with timed_span(tracer, "match", items=len(patterns)) as match_span:
            if (
                count_mode
                and tracer is None
                and progress is None
                and control is None
            ):
                results: dict[Pattern, Any] = dict(
                    self._count_set(graph, patterns, exec_)
                )
            else:
                if progress is not None:
                    # Baseline items get the model's predicted costs when
                    # the morphed path handed us one (the declined-morph
                    # case); otherwise uniform weights — the ETA still
                    # calibrates online from the measured durations.
                    progress.start(
                        [
                            (
                                pattern_name(p),
                                cost_model.pattern_cost(*item_of(p))
                                if cost_model is not None
                                else 1.0,
                            )
                            for p in patterns
                        ]
                    )
                results = {}
                for p in patterns:
                    if control is not None and control.expired():
                        unstarted += 1
                        unresolved.append(p)
                        continue
                    if progress is not None:
                        progress.item_started(pattern_name(p))
                    with timed_span(
                        tracer, "match.item", item=pattern_name(p)
                    ) as item_span:
                        if count_mode:
                            results[p] = self._count_set(graph, [p], exec_)[p]
                        else:
                            results[p] = self._aggregate_one(graph, p, exec_)
                    if (
                        control is not None
                        and control.reports
                        and not control.reports[-1].complete
                    ):
                        # Only some shards finished: surface the value as
                        # explicitly partial, not as this query's answer.
                        partial_values[item_of(p)] = results.pop(p)
                        unresolved.append(p)
                    item_seconds[item_of(p)] = item_span.seconds
                    if progress is not None:
                        progress.item_finished(
                            pattern_name(p), item_span.seconds
                        )
                if progress is not None:
                    progress.finish()
        if tracer is not None and selection is not None and cost_model is not None:
            counts_store = (
                {item_of(p): v for p, v in results.items()} if count_mode else None
            )
            self._emit_audits(
                selection, cost_model, item_seconds, counts_store, set()
            )
        if control is not None and (
            control.interrupted or unstarted or partial_values
        ):
            return PartialRunResult(
                results=results,
                stats=self.engine.stats,
                morphing_enabled=False,
                measured=frozenset(item_of(p) for p in patterns),
                match_seconds=match_span.seconds,
                coverage=control.coverage(unstarted),
                completed_shards=control.completed_shards,
                total_shards=control.charged_total(unstarted),
                unresolved=tuple(unresolved),
                partial_items=partial_values,
            )
        return MorphRunResult(
            results=results,
            stats=self.engine.stats,
            morphing_enabled=False,
            measured=frozenset(item_of(p) for p in patterns),
            match_seconds=match_span.seconds,
        )

    # -- streaming mode --------------------------------------------------------

    def run_streaming(
        self,
        graph: DataGraph,
        patterns: Sequence[Pattern],
        process: Callable[[Pattern, Match], None],
        vertex_filter: Callable[[Match], bool] | None = None,
    ) -> MorphRunResult:
        """Stream matches for every query through ``process``.

        ``vertex_filter`` receives the matched data vertices (in arbitrary
        role order) and may reject the subgraph before conversion fan-out;
        the §7.3 weight filter has exactly this form.
        """
        patterns = list(patterns)
        return self._run_scoped(
            graph,
            "streaming",
            len(patterns),
            lambda exec_: self._run_streaming(
                graph, patterns, process, vertex_filter, exec_
            ),
        )

    def _run_streaming(
        self,
        graph: DataGraph,
        patterns: list[Pattern],
        process: Callable[[Pattern, Match], None],
        vertex_filter: Callable[[Match], bool] | None,
        exec_,
    ) -> MorphRunResult:
        tracer = self.tracer
        emitted: dict[Pattern, int] = {p: 0 for p in patterns}

        def counted_process(query: Pattern, match: Match) -> None:
            emitted[query] += 1
            process(query, match)

        def check_deadline(done_streaming: bool = False) -> None:
            """Streaming cannot degrade to a partial store: raise instead.

            A match already handed to ``process`` cannot be recalled, so
            an expired deadline here surfaces as
            :class:`RunDeadlineExceeded` — the streamed prefix is
            explicitly incomplete — rather than a PartialRunResult.
            """
            control = self._control
            if control is None:
                return
            incomplete = (
                done_streaming
                and control.reports
                and not control.reports[-1].complete
            )
            if incomplete or (not done_streaming and control.expired()):
                assert control.deadline is not None
                raise RunDeadlineExceeded(
                    f"deadline of {control.deadline.seconds:g}s expired "
                    "during a streaming run; the match stream is incomplete",
                    deadline_seconds=control.deadline.seconds,
                )

        def stream_patterns(items: list[tuple[str, Pattern, Callable]]):
            """Run each (label, pattern, callback), spanning per item."""
            progress = self.progress
            item_seconds: dict[Item, float] = {}
            if progress is not None:
                progress.start([(label, 1.0) for label, _p, _cb in items])
            with timed_span(tracer, "match", items=len(items)) as match_span:
                for label, pattern, callback in items:
                    check_deadline()
                    if progress is not None:
                        progress.item_started(label)
                    with timed_span(
                        tracer, "match.item", item=label
                    ) as item_span:
                        self._explore(graph, pattern, callback, exec_)
                    check_deadline(done_streaming=True)
                    try:
                        item_seconds[item_of(pattern)] = item_span.seconds
                    except ValueError:
                        pass  # mixed patterns carry no item
                    if progress is not None:
                        progress.item_finished(label, item_span.seconds)
            if progress is not None:
                progress.finish()
            return match_span.seconds, item_seconds

        if not self.enabled:
            plain = [
                (
                    pattern_name(p),
                    p,
                    counted_process
                    if vertex_filter is None
                    else _filtered(vertex_filter, counted_process),
                )
                for p in patterns
            ]
            match_seconds, _ = stream_patterns(plain)
            return MorphRunResult(
                results=dict(emitted),
                stats=self.engine.stats,
                morphing_enabled=False,
                measured=frozenset(item_of(p) for p in patterns),
                match_seconds=match_seconds,
            )

        with timed_span(tracer, "transform", queries=len(patterns)) as transform_span:
            from repro.core.aggregation import MatchListAggregation
            from repro.core.costmodel import profile_udf_cost

            stream_agg = MatchListAggregation()
            if vertex_filter is not None and patterns:
                # Section 5.2's UDF profiling: time the filter on dummy
                # matches so its real cost steers the alternative selection
                # (an expensive filter makes fewer-match alternatives pay).
                stream_agg.per_match_cost += profile_udf_cost(
                    vertex_filter, patterns[0], graph
                )
            cost_model = CostModel.for_graph(
                graph, profile_for(self.engine), stream_agg
            )
            with timed_span(tracer, "selection", margin=self.margin) as selection_span:
                selection = select_alternative_patterns(
                    patterns, cost_model, stream_agg, margin=self.margin
                )
            selection_span.attributes.update(
                rounds=selection.rounds,
                measured=len(selection.measured),
                morphed_queries=sum(selection.morphed.values()),
            )

        if not any(selection.morphed.values()):
            transform_seconds = transform_span.seconds
            plain = [
                (
                    pattern_name(p),
                    p,
                    counted_process
                    if vertex_filter is None
                    else _filtered(vertex_filter, counted_process),
                )
                for p in patterns
            ]
            match_seconds, item_seconds = stream_patterns(plain)
            if tracer is not None:
                self._emit_audits(
                    selection, cost_model, item_seconds, None, set()
                )
            return MorphRunResult(
                results=dict(emitted),
                stats=self.engine.stats,
                morphing_enabled=True,
                measured=selection.measured,
                selection=selection,
                transform_seconds=transform_seconds,
                match_seconds=match_seconds,
            )

        with timed_span(
            tracer, "transform.plan", queries=len(patterns)
        ) as plan_span:
            # One converter per (measured item, query) pair.
            converters: dict[Item, list[OnTheFlyConverter]] = {
                item: [] for item in selection.measured
            }
            for query in patterns:
                plan = on_the_fly_plan(query, selection.measured, counted_process)
                for item, converter in plan.items():
                    converters[item].append(converter)
        # The on-the-fly plan is part of pattern transformation; its span
        # is separate only because the no-morph early return above ends
        # the transform span first.
        transform_seconds = transform_span.seconds + plan_span.seconds

        item_seconds = {}
        progress = self.progress
        live_items = [
            item
            for item in sorted(selection.measured, key=repr)
            if converters[item]
        ]
        if progress is not None:
            progress.start(
                [
                    (
                        _item_label(item),
                        selection.item_costs.get(
                            item, cost_model.pattern_cost(*item)
                        ),
                    )
                    for item in live_items
                ]
            )
        with timed_span(
            tracer, "match", items=len(selection.measured)
        ) as match_span:
            for item in live_items:
                fan_out = converters[item]

                def on_match(alt_pattern: Pattern, match: Match, _fan=fan_out) -> None:
                    if vertex_filter is not None and not vertex_filter(match):
                        return
                    for converter in _fan:
                        converter(match)

                check_deadline()
                if progress is not None:
                    progress.item_started(_item_label(item))
                with timed_span(
                    tracer, "match.item", item=_item_label(item)
                ) as item_span:
                    self._explore(graph, materialize(item), on_match, exec_)
                check_deadline(done_streaming=True)
                item_seconds[item] = item_span.seconds
                if progress is not None:
                    progress.item_finished(_item_label(item), item_span.seconds)
        if progress is not None:
            progress.finish()
        match_seconds = match_span.seconds

        if tracer is not None:
            self._emit_audits(selection, cost_model, item_seconds, None, set())

        return MorphRunResult(
            results=dict(emitted),
            stats=self.engine.stats,
            morphing_enabled=True,
            measured=selection.measured,
            selection=selection,
            transform_seconds=transform_seconds,
            match_seconds=match_seconds,
        )


def _pattern_id(skel: Pattern) -> int:
    from repro.core.canonical import pattern_id

    return pattern_id(skel)


def _filtered(
    vertex_filter: Callable[[Match], bool],
    process: Callable[[Pattern, Match], None],
) -> Callable[[Pattern, Match], None]:
    def wrapped(pattern: Pattern, match: Match) -> None:
        if vertex_filter(match):
            process(pattern, match)

    return wrapped


def compare_baseline_and_morphed(
    engine_factory: Callable[[], MiningEngine],
    graph: DataGraph,
    patterns: Iterable[Pattern],
    *args: Any,
    aggregation: Aggregation | None = None,
    workers: int = 1,
    cache: "MeasurementCache | None" = None,
    margin: float = 0.6,
    strategy: str = "auto",
    tracer: Tracer | None = None,
    batch_roots: int | None = None,
) -> tuple[MorphRunResult, MorphRunResult]:
    """Run the same workload twice (baseline, morphed) on fresh engines.

    The benchmark harness's workhorse: returns both results so callers can
    assert equality (claim C1) and compare timings/counters.

    ``workers``, ``cache`` and ``margin`` configure *both* sessions the
    same way (they used to be silently unavailable here, which made any
    parallel or cached comparison lopsided): ``workers`` shard-
    parallelizes both runs, ``margin`` steers the morphed side's
    Algorithm 1, and ``cache`` memoizes measured values — note a shared
    cache warms across the two runs in call order (baseline first).
    ``tracer`` traces the **morphed** run (the side whose per-stage
    telemetry the figures need); trace the baseline by running it
    directly with its own session. ``batch_roots`` selects the batched
    frontier kernels on both sides (identical results either way).
    ``strategy`` picks the morphed side's rewrite strategy (the baseline
    side never rewrites by definition).
    """
    if args:
        from repro import _compat

        overrides = _compat.positional_config(
            "compare_baseline_and_morphed", ("aggregation",), args
        )
        aggregation = overrides.get("aggregation", aggregation)
    patterns = list(patterns)
    baseline = MorphingSession(
        engine_factory(),
        aggregation=aggregation,
        enabled=False,
        workers=workers,
        cache=cache,
        margin=margin,
        batch_roots=batch_roots,
    ).run(graph, patterns)
    morphed = MorphingSession(
        engine_factory(),
        aggregation=aggregation,
        enabled=True,
        strategy=strategy,
        workers=workers,
        cache=cache,
        margin=margin,
        tracer=tracer,
        batch_roots=batch_roots,
    ).run(graph, patterns)
    return baseline, morphed
