"""End-to-end Subgraph Morphing pipeline (Figure 5).

:class:`MorphingSession` wraps any engine and runs the enhanced workflow:
*pattern transformation* (S-DAG + Algorithm 1) → *matching* (the wrapped
engine, untouched) → *result transformation* (Algorithm 2 for batched
aggregations, Algorithm 3 for streamed matches). Disable morphing with
``enabled=False`` to get the baseline path; both paths return identical
results, which every benchmark asserts (claim C1).

The two public entry points mirror the paper's output modes:

* :meth:`MorphingSession.run` — batched mode (counts, MNI, match lists);
* :meth:`MorphingSession.run_streaming` — streaming mode with on-the-fly
  conversion and an optional pre-conversion vertex filter (Section 7.3's
  workload: the filter only depends on the matched vertex set, so it runs
  once per alternative match, before fan-out).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.aggregation import Aggregation, CountAggregation, Match
from repro.core.conversion import (
    OnTheFlyConverter,
    convert_aggregation_store,
    convert_counts,
    on_the_fly_plan,
)
from repro.core.costmodel import CostModel
from repro.core.equations import Item, item_of, materialize
from repro.core.pattern import Pattern
from repro.core.selection import SelectionResult, select_alternative_patterns
from repro.engines.base import EngineStats, MiningEngine
from repro.graph.datagraph import DataGraph
from repro.morph.profiles import profile_for


@dataclass
class MorphRunResult:
    """Results plus the bookkeeping the evaluation figures report."""

    results: dict[Pattern, Any]
    stats: EngineStats
    morphing_enabled: bool
    measured: frozenset[Item] = field(default_factory=frozenset)
    selection: SelectionResult | None = None
    transform_seconds: float = 0.0
    match_seconds: float = 0.0
    convert_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end time: transformation + matching + conversion."""
        return self.transform_seconds + self.match_seconds + self.convert_seconds


class MorphingSession:
    """Subgraph Morphing around an unmodified matching engine."""

    def __init__(
        self,
        engine: MiningEngine,
        aggregation: Aggregation | None = None,
        enabled: bool = True,
        margin: float = 0.6,
        cache: "MeasurementCache | None" = None,
        workers: int = 1,
        executor=None,
    ) -> None:
        """``margin`` is forwarded to Algorithm 1: a morph must be
        predicted to cost under ``margin`` times what it saves. ``margin
        >= 1`` accepts any predicted win; large values force morphing
        (useful to reproduce the paper's blind-morphing comparison,
        §7.5). ``cache`` optionally memoizes measured alternative values
        across runs on the same graph (FSM levels share superpatterns).

        ``workers`` enables the shard-parallel execution layer: with
        ``workers > 1`` every pattern's matching fans out over
        degree-balanced root-vertex shards (one warm worker pool per
        run) and merges deterministically, so results — counts, MNI
        tables, ordered match lists — are identical to ``workers=1``.
        ``executor`` overrides the transport (``"process"``/``"serial"``
        or a ``ShardExecutor`` instance); the serial in-process path is
        the default and behavior is unchanged unless ``workers > 1`` or
        an executor is supplied."""
        self.engine = engine
        self.aggregation = aggregation or CountAggregation()
        self.enabled = enabled
        self.margin = margin
        self.cache = cache
        self.workers = workers
        self.executor = executor

    # -- shard-parallel plumbing -------------------------------------------

    def _make_executor(self):
        """Resolve the run's executor: ``(executor, owned)`` or ``(None, _)``.

        One executor (and so one warm worker pool) serves every pattern
        of a run; a caller-supplied ``ShardExecutor`` instance outlives
        the run (``owned=False``).
        """
        if self.workers <= 1 and self.executor is None:
            return None, False
        from repro.engines.execution import ShardExecutor, make_executor

        owned = not isinstance(self.executor, ShardExecutor)
        return make_executor(self.workers, self.executor), owned

    def _count_set(self, graph, patterns, exec_):
        """Counts for a pattern set, sharded when an executor is active.

        The serial path keeps engine-native multi-pattern execution
        (AutoZero's merged schedules, SumPA's abstraction); the sharded
        path fans each pattern over root-vertex shards instead.
        """
        if exec_ is None:
            return self.engine.count_set(graph, patterns)
        from repro.engines.execution import run_sharded

        return {
            p: run_sharded(self.engine, graph, p, CountAggregation(), exec_)
            for p in patterns
        }

    def _aggregate_one(self, graph, pattern, exec_):
        if exec_ is None:
            return self.engine.aggregate(graph, pattern, self.aggregation)
        from repro.engines.execution import run_sharded

        return run_sharded(self.engine, graph, pattern, self.aggregation, exec_)

    def _explore(self, graph, pattern, callback, exec_) -> None:
        """Stream matches through ``callback``, sharded when parallel.

        The parallel path materializes each shard's matches, merges them
        in shard order (= the serial enumeration order) and replays the
        stream in the parent, so callbacks observe the exact serial
        sequence without having to cross process boundaries.
        """
        if exec_ is None:
            self.engine.explore(graph, pattern, callback)
            return
        from repro.core.aggregation import MatchListAggregation
        from repro.engines.execution import run_sharded

        matches = run_sharded(
            self.engine, graph, pattern, MatchListAggregation(), exec_
        )
        for match in matches:
            callback(pattern, match)

    # -- batched mode --------------------------------------------------------

    def run(self, graph: DataGraph, patterns: Sequence[Pattern]) -> MorphRunResult:
        """Mine all query patterns, morphing when enabled."""
        patterns = list(patterns)
        self.engine.reset_stats()
        exec_, owned = self._make_executor()
        try:
            return self._run_batched(graph, patterns, exec_)
        finally:
            if exec_ is not None and owned:
                exec_.close()

    def _run_batched(
        self, graph: DataGraph, patterns: list[Pattern], exec_
    ) -> MorphRunResult:
        if not self.enabled:
            return self._run_baseline(graph, patterns, exec_)

        transform_start = time.perf_counter()
        cost_model = CostModel.for_graph(
            graph, profile_for(self.engine), self.aggregation
        )
        selection = select_alternative_patterns(
            patterns, cost_model, self.aggregation, margin=self.margin
        )
        transform_seconds = time.perf_counter() - transform_start

        if not any(selection.morphed.values()):
            # The cost model declined every morph: run the queries as
            # given (their own numbering and plans), keeping the selection
            # metadata so callers can see the decision.
            baseline = self._run_baseline(graph, patterns, exec_)
            return MorphRunResult(
                results=baseline.results,
                stats=baseline.stats,
                morphing_enabled=True,
                measured=selection.measured,
                selection=selection,
                transform_seconds=transform_seconds,
                match_seconds=baseline.match_seconds,
            )

        match_start = time.perf_counter()
        store: dict[Item, Any] = {}
        count_mode = isinstance(self.aggregation, CountAggregation)
        measured_items = sorted(selection.measured, key=repr)

        if self.cache is not None:
            cached = {
                item: self.cache.get(graph, self.aggregation, item)
                for item in measured_items
            }
            store.update({k: v for k, v in cached.items() if v is not None})
            measured_items = [i for i in measured_items if store.get(i) is None]

        if count_mode:
            concrete = {item: materialize(item) for item in measured_items}
            counts = self._count_set(graph, list(concrete.values()), exec_)
            for item, pattern in concrete.items():
                store[item] = counts[pattern]
        else:
            for item in measured_items:
                store[item] = self._aggregate_one(graph, materialize(item), exec_)
        if self.cache is not None:
            for item in measured_items:
                self.cache.put(graph, self.aggregation, item, store[item])
        match_seconds = time.perf_counter() - match_start

        convert_start = time.perf_counter()
        if count_mode:
            results: dict[Pattern, Any] = convert_counts(patterns, store)
        else:
            results = convert_aggregation_store(patterns, store, self.aggregation)
        convert_seconds = time.perf_counter() - convert_start

        return MorphRunResult(
            results=results,
            stats=self.engine.stats,
            morphing_enabled=True,
            measured=selection.measured,
            selection=selection,
            transform_seconds=transform_seconds,
            match_seconds=match_seconds,
            convert_seconds=convert_seconds,
        )

    def _run_baseline(
        self, graph: DataGraph, patterns: list[Pattern], exec_=None
    ) -> MorphRunResult:
        start = time.perf_counter()
        count_mode = isinstance(self.aggregation, CountAggregation)
        if count_mode:
            results: dict[Pattern, Any] = dict(
                self._count_set(graph, patterns, exec_)
            )
        else:
            results = {
                p: self._aggregate_one(graph, p, exec_) for p in patterns
            }
        return MorphRunResult(
            results=results,
            stats=self.engine.stats,
            morphing_enabled=False,
            measured=frozenset(item_of(p) for p in patterns),
            match_seconds=time.perf_counter() - start,
        )

    # -- streaming mode --------------------------------------------------------

    def run_streaming(
        self,
        graph: DataGraph,
        patterns: Sequence[Pattern],
        process: Callable[[Pattern, Match], None],
        vertex_filter: Callable[[Match], bool] | None = None,
    ) -> MorphRunResult:
        """Stream matches for every query through ``process``.

        ``vertex_filter`` receives the matched data vertices (in arbitrary
        role order) and may reject the subgraph before conversion fan-out;
        the §7.3 weight filter has exactly this form.
        """
        patterns = list(patterns)
        self.engine.reset_stats()
        exec_, owned = self._make_executor()
        try:
            return self._run_streaming(
                graph, patterns, process, vertex_filter, exec_
            )
        finally:
            if exec_ is not None and owned:
                exec_.close()

    def _run_streaming(
        self,
        graph: DataGraph,
        patterns: list[Pattern],
        process: Callable[[Pattern, Match], None],
        vertex_filter: Callable[[Match], bool] | None,
        exec_,
    ) -> MorphRunResult:
        emitted: dict[Pattern, int] = {p: 0 for p in patterns}

        def counted_process(query: Pattern, match: Match) -> None:
            emitted[query] += 1
            process(query, match)

        if not self.enabled:
            start = time.perf_counter()
            for p in patterns:
                if vertex_filter is None:
                    self._explore(graph, p, counted_process, exec_)
                else:
                    self._explore(
                        graph, p, _filtered(vertex_filter, counted_process), exec_
                    )
            return MorphRunResult(
                results=dict(emitted),
                stats=self.engine.stats,
                morphing_enabled=False,
                measured=frozenset(item_of(p) for p in patterns),
                match_seconds=time.perf_counter() - start,
            )

        transform_start = time.perf_counter()
        from repro.core.aggregation import MatchListAggregation
        from repro.core.costmodel import profile_udf_cost

        stream_agg = MatchListAggregation()
        if vertex_filter is not None and patterns:
            # Section 5.2's UDF profiling: time the filter on dummy
            # matches so its real cost steers the alternative selection
            # (an expensive filter makes fewer-match alternatives pay).
            stream_agg.per_match_cost += profile_udf_cost(
                vertex_filter, patterns[0], graph
            )
        cost_model = CostModel.for_graph(graph, profile_for(self.engine), stream_agg)
        selection = select_alternative_patterns(
            patterns, cost_model, stream_agg, margin=self.margin
        )

        if not any(selection.morphed.values()):
            transform_seconds = time.perf_counter() - transform_start
            start = time.perf_counter()
            for p in patterns:
                callback = (
                    counted_process
                    if vertex_filter is None
                    else _filtered(vertex_filter, counted_process)
                )
                self._explore(graph, p, callback, exec_)
            return MorphRunResult(
                results=dict(emitted),
                stats=self.engine.stats,
                morphing_enabled=True,
                measured=selection.measured,
                selection=selection,
                transform_seconds=transform_seconds,
                match_seconds=time.perf_counter() - start,
            )

        # One converter per (measured item, query) pair.
        converters: dict[Item, list[OnTheFlyConverter]] = {
            item: [] for item in selection.measured
        }
        for query in patterns:
            plan = on_the_fly_plan(query, selection.measured, counted_process)
            for item, converter in plan.items():
                converters[item].append(converter)
        transform_seconds = time.perf_counter() - transform_start

        match_start = time.perf_counter()
        for item in sorted(selection.measured, key=repr):
            fan_out = converters[item]
            if not fan_out:
                continue

            def on_match(alt_pattern: Pattern, match: Match, _fan=fan_out) -> None:
                if vertex_filter is not None and not vertex_filter(match):
                    return
                for converter in _fan:
                    converter(match)

            self._explore(graph, materialize(item), on_match, exec_)
        match_seconds = time.perf_counter() - match_start

        return MorphRunResult(
            results=dict(emitted),
            stats=self.engine.stats,
            morphing_enabled=True,
            measured=selection.measured,
            selection=selection,
            transform_seconds=transform_seconds,
            match_seconds=match_seconds,
        )


def _filtered(
    vertex_filter: Callable[[Match], bool],
    process: Callable[[Pattern, Match], None],
) -> Callable[[Pattern, Match], None]:
    def wrapped(pattern: Pattern, match: Match) -> None:
        if vertex_filter(match):
            process(pattern, match)

    return wrapped


def compare_baseline_and_morphed(
    engine_factory: Callable[[], MiningEngine],
    graph: DataGraph,
    patterns: Iterable[Pattern],
    aggregation: Aggregation | None = None,
) -> tuple[MorphRunResult, MorphRunResult]:
    """Run the same workload twice (baseline, morphed) on fresh engines.

    The benchmark harness's workhorse: returns both results so callers can
    assert equality (claim C1) and compare timings/counters.
    """
    patterns = list(patterns)
    baseline = MorphingSession(
        engine_factory(), aggregation=aggregation, enabled=False
    ).run(graph, patterns)
    morphed = MorphingSession(
        engine_factory(), aggregation=aggregation, enabled=True
    ).run(graph, patterns)
    return baseline, morphed
