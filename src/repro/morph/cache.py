"""Cross-query measurement cache.

The same alternative pattern frequently recurs across queries and across
session runs — FSM's level k+1 closures overlap level k's, and repeated
ad-hoc queries share superpatterns (the overlap Section 5 exploits inside
one selection, lifted across selections). :class:`MeasurementCache`
memoizes measured aggregation values per (graph, item, aggregation), so a
session never re-matches a pattern it has already measured on the same
graph.

Only hashable, immutable aggregation values are cached (counts, MNI
tables); match-list values are deliberately not, to bound memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.aggregation import Aggregation, MatchListAggregation
from repro.core.equations import Item
from repro.graph.datagraph import DataGraph


@dataclass
class MeasurementCache:
    """Memoized ``(graph, aggregation, item) -> value`` measurements."""

    _store: dict[tuple[int, str, Item], Any] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    @staticmethod
    def _cacheable(aggregation: Aggregation) -> bool:
        return not isinstance(aggregation, MatchListAggregation)

    def key(self, graph: DataGraph, aggregation: Aggregation, item: Item):
        return (id(graph), aggregation.name, item)

    def get(self, graph: DataGraph, aggregation: Aggregation, item: Item):
        """Cached value or ``None`` (values themselves are never None)."""
        if not self._cacheable(aggregation):
            return None
        value = self._store.get(self.key(graph, aggregation, item))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(
        self, graph: DataGraph, aggregation: Aggregation, item: Item, value: Any
    ) -> None:
        if self._cacheable(aggregation) and value is not None:
            self._store[self.key(graph, aggregation, item)] = value

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
