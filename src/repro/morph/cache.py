"""Cross-query measurement and plan caches.

The same alternative pattern frequently recurs across queries and across
session runs — FSM's level k+1 closures overlap level k's, and repeated
ad-hoc queries share superpatterns (the overlap Section 5 exploits inside
one selection, lifted across selections). :class:`MeasurementCache`
memoizes measured aggregation values per (graph, item, aggregation), so a
session never re-matches a pattern it has already measured on the same
graph.

Only hashable, immutable aggregation values are cached (counts, MNI
tables); match-list values are deliberately not, to bound memory.

:class:`PlanCache` memoizes the planner search itself: repeated
``repro.run()`` calls with the same (graph fingerprint, queries,
aggregation, engine, strategy, margin) skip Algorithm 1 and the
rule-competition pass entirely and execute the stored
:class:`repro.plan.RewritePlan`. Keys use the graph's *content*
fingerprint, so two structurally identical graphs share entries while a
mutated/regenerated graph never collides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.aggregation import Aggregation, MatchListAggregation
from repro.core.equations import Item
from repro.core.pattern import Pattern
from repro.graph.datagraph import DataGraph

if TYPE_CHECKING:
    from repro.plan.rewrite import RewritePlan


@dataclass
class MeasurementCache:
    """Memoized ``(graph, aggregation, item) -> value`` measurements."""

    _store: dict[tuple[int, str, Item], Any] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    @staticmethod
    def _cacheable(aggregation: Aggregation) -> bool:
        return not isinstance(aggregation, MatchListAggregation)

    def key(self, graph: DataGraph, aggregation: Aggregation, item: Item):
        return (id(graph), aggregation.name, item)

    def get(self, graph: DataGraph, aggregation: Aggregation, item: Item):
        """Cached value or ``None`` (values themselves are never None)."""
        if not self._cacheable(aggregation):
            return None
        value = self._store.get(self.key(graph, aggregation, item))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(
        self, graph: DataGraph, aggregation: Aggregation, item: Item, value: Any
    ) -> None:
        if self._cacheable(aggregation) and value is not None:
            self._store[self.key(graph, aggregation, item)] = value

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class PlanCache:
    """Memoized planner searches keyed by everything that shapes a plan.

    The key is ``(graph fingerprint, queries, aggregation, engine,
    strategy, margin)`` — the exact query tuple (not just canonical
    ids: a plan's bookkeeping maps concrete query ``Pattern`` objects,
    and two differently-numbered isomorphic queries need different
    combine bookkeeping). Hit/miss counters mirror
    :class:`MeasurementCache`; the session additionally reports them as
    ``plan.cache.hit`` / ``plan.cache.miss`` metrics when traced.
    """

    _store: dict[tuple, "RewritePlan"] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def key(
        self,
        graph: DataGraph,
        patterns: list[Pattern],
        aggregation: Aggregation,
        *,
        engine: str,
        strategy: str,
        margin: float,
    ) -> tuple:
        return (
            graph.fingerprint,
            tuple(patterns),
            aggregation.name,
            engine,
            strategy,
            float(margin),
        )

    def get(
        self,
        graph: DataGraph,
        patterns: list[Pattern],
        aggregation: Aggregation,
        *,
        engine: str,
        strategy: str,
        margin: float,
    ) -> "RewritePlan | None":
        plan = self._store.get(
            self.key(
                graph,
                patterns,
                aggregation,
                engine=engine,
                strategy=strategy,
                margin=margin,
            )
        )
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
        return plan

    def put(
        self,
        graph: DataGraph,
        patterns: list[Pattern],
        aggregation: Aggregation,
        plan: "RewritePlan",
        *,
        engine: str,
        strategy: str,
        margin: float,
    ) -> None:
        self._store[
            self.key(
                graph,
                patterns,
                aggregation,
                engine=engine,
                strategy=strategy,
                margin=margin,
            )
        ] = plan

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
