"""Per-system cost profiles (Section 4.4 / Observation 4).

The same pattern ranks differently across systems — the paper's example:
choose tailed triangle over 4-cycle on GraphPi but not on Peregrine.
Morphing captures this by weighting the cost model with system-specific
operation costs. Profiles below reflect each substrate's structure:

* Peregrine: native anti-edges (differences slightly pricier than
  intersections), per-pattern matching, cheap materialization.
* AutoZero: merged schedules make extra patterns cheap — modeled with a
  lower intersection weight (shared prefixes amortize ops).
* GraphPi: no anti-edges; Filter-UDF checks are branchy and expensive.
* BigJoin: no anti-edges; materializes every level, so materialization
  and per-tuple costs are high.
* SumPA: generic operation weights; listed for its calibrated clock.

Each profile's ``unit_seconds`` (cost units → wall seconds, used by
ETAs and the planner's python-op pricing, never by within-engine
rankings) comes from ``tools/calibrate_costmodel.py --run-suite``.
"""

from __future__ import annotations

from repro.core.costmodel import EngineCostProfile
from repro.engines.base import MiningEngine

PEREGRINE_PROFILE = EngineCostProfile(
    name="peregrine",
    unit_seconds=2.3e-6,  # tools/calibrate_costmodel.py --run-suite
    intersection_weight=2.0,
    difference_weight=2.5,
    materialize_weight=1.5,
    per_udf_call_weight=2.5,
    native_anti_edges=True,
)

AUTOZERO_PROFILE = EngineCostProfile(
    name="autozero",
    unit_seconds=2.7e-6,  # tools/calibrate_costmodel.py --run-suite
    intersection_weight=1.2,  # merged schedules share loop prefixes
    difference_weight=1.8,
    materialize_weight=1.5,
    per_udf_call_weight=2.5,
    native_anti_edges=True,
)

GRAPHPI_PROFILE = EngineCostProfile(
    name="graphpi",
    unit_seconds=2.3e-6,  # tools/calibrate_costmodel.py --run-suite
    intersection_weight=1.8,  # model-selected orders shave set-op work
    difference_weight=2.3,
    materialize_weight=1.5,
    per_udf_call_weight=2.5,
    filter_check_weight=0.4,
    native_anti_edges=False,
)

BIGJOIN_PROFILE = EngineCostProfile(
    name="bigjoin",
    unit_seconds=2.4e-6,  # tools/calibrate_costmodel.py --run-suite
    intersection_weight=2.0,
    difference_weight=2.5,
    materialize_weight=2.5,  # per-level binding materialization
    per_udf_call_weight=2.5,
    filter_check_weight=0.4,
    native_anti_edges=False,
)

SUMPA_PROFILE = EngineCostProfile(
    name="sumpa",
    unit_seconds=2.5e-6,  # tools/calibrate_costmodel.py --run-suite
    native_anti_edges=True,
)

_BY_NAME = {
    p.name: p
    for p in (
        PEREGRINE_PROFILE,
        AUTOZERO_PROFILE,
        GRAPHPI_PROFILE,
        BIGJOIN_PROFILE,
        SUMPA_PROFILE,
    )
}


def profile_for(engine: MiningEngine | str) -> EngineCostProfile:
    """Cost profile for an engine (falls back to a generic profile)."""
    name = engine if isinstance(engine, str) else engine.name
    profile = _BY_NAME.get(name)
    if profile is not None:
        return profile
    native = True if isinstance(engine, str) else engine.native_anti_edges
    return EngineCostProfile(name=name, native_anti_edges=native)
