"""repro — reproduction of "Accelerating Graph Mining Systems with
Subgraph Morphing" (Jamshidi, Xu & Vora, EuroSys 2023).

Public API quick tour::

    from repro import (
        Pattern, DataGraph, MorphingSession,
        PeregrineEngine, AutoZeroEngine, GraphPiEngine, BigJoinEngine,
    )
    from repro.graph import datasets
    from repro.core.atlas import motif_patterns

    graph = datasets.mico()
    session = MorphingSession(PeregrineEngine())          # morphing on
    result = session.run(graph, list(motif_patterns(4)))  # 4-motif counting
    # result.results: {pattern: count}; result.stats: engine counters

Layout: ``repro.core`` is the paper's contribution (patterns, the
morphing algebra, S-DAG, cost model, selection, result conversion);
``repro.engines`` holds the four system substrates; ``repro.apps`` the
mining applications (MC, SC, SE, FSM); ``repro.morph`` the end-to-end
pipeline; ``repro.graph`` data graphs, generators and dataset stand-ins.
"""

from repro.core.aggregation import (
    Aggregation,
    CountAggregation,
    ExistenceAggregation,
    MatchListAggregation,
    MNIAggregation,
)
from repro.core.atlas import (
    EVALUATION_PATTERNS,
    NAMED_PATTERNS,
    all_connected_patterns,
    motif_patterns,
    pattern_name,
)
from repro.core.canonical import are_isomorphic, canonical_form, pattern_id
from repro.core.costmodel import CostModel, EngineCostProfile, GraphModel
from repro.core.alternatives import enumerate_alternative_sets
from repro.core.equations import morph_equation, solve_query
from repro.core.parser import format_pattern, parse_pattern
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED, SDag
from repro.core.selection import select_alternative_patterns
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import EngineStats, MiningEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.graph.datagraph import DataGraph
from repro.morph.cache import MeasurementCache
from repro.morph.session import (
    MorphingSession,
    MorphRunResult,
    compare_baseline_and_morphed,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregation",
    "AutoZeroEngine",
    "BigJoinEngine",
    "CostModel",
    "CountAggregation",
    "DataGraph",
    "EDGE_INDUCED",
    "EngineCostProfile",
    "EngineStats",
    "EVALUATION_PATTERNS",
    "ExistenceAggregation",
    "GraphModel",
    "GraphPiEngine",
    "MatchListAggregation",
    "MiningEngine",
    "MNIAggregation",
    "MorphingSession",
    "MorphRunResult",
    "NAMED_PATTERNS",
    "Pattern",
    "PeregrineEngine",
    "SDag",
    "SumPAEngine",
    "VERTEX_INDUCED",
    "all_connected_patterns",
    "are_isomorphic",
    "canonical_form",
    "MeasurementCache",
    "compare_baseline_and_morphed",
    "enumerate_alternative_sets",
    "format_pattern",
    "morph_equation",
    "parse_pattern",
    "motif_patterns",
    "pattern_id",
    "pattern_name",
    "select_alternative_patterns",
    "solve_query",
]
