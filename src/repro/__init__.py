"""repro — reproduction of "Accelerating Graph Mining Systems with
Subgraph Morphing" (Jamshidi, Xu & Vora, EuroSys 2023).

Public API quick tour — one call does the whole pipeline::

    import repro
    from repro.graph import datasets

    graph = datasets.mico()
    result = repro.run(graph, repro.motif_patterns(4))   # morphed 4-motifs
    # result.results: {pattern: count}; result.stats: engine counters

    # Pick an engine, go parallel, capture a structured trace:
    result = repro.run(graph, repro.motif_patterns(4),
                       options=repro.RunOptions(engine="autozero",
                                                workers=4, trace="run.jsonl"))
    result.trace.stage_seconds()      # {"transform": ..., "match": ..., ...}
    result.trace.audits               # cost-model predictions vs measurements

    # Baseline (no morphing) for comparison — results are identical:
    baseline = repro.run(graph, repro.motif_patterns(4),
                         options=repro.RunOptions(morph=False))

``repro.run`` accepts an engine name (``"peregrine"``, ``"autozero"``,
``"graphpi"``, ``"bigjoin"``, ``"sumpa"``) and one typed
:class:`RunOptions` carrying the whole configuration (``aggregation``,
``morph``, ``strategy``, ``workers``, ``margin``, ``cache``,
``plan_cache``, ``trace``, ``progress``, plus fault tolerance:
``deadline_seconds``, ``checkpoint``, ``retry``, ``faults``); the
historical loose keywords keep working for one release through
warn-once deprecation shims. ``repro.run`` returns a
:class:`MorphRunResult`. Failures surface through the typed
:class:`ReproError` hierarchy; deadline-degraded runs return
:class:`PartialRunResult` (completed aggregates + coverage fraction),
and ``checkpoint=`` journals finished shards so an interrupted run can
resume (see ``docs/cookbook.md``, "Surviving failures"). Construct a
:class:`MorphingSession` directly for streaming mode
(:meth:`~MorphingSession.run_streaming`) or a caller-owned executor;
:class:`Tracer` + :class:`repro.observe.RunTrace` are the telemetry
surface (see ``docs/cookbook.md``, "Profiling a run").

For many queries against the same graphs, run the resident service
(``repro serve`` / :mod:`repro.serve`): graphs load once, plans and
results cache across queries, and :func:`repro.connect` returns a
client whose ``run`` mirrors this module's with identical typed
results.

Layout: ``repro.core`` is the paper's contribution (patterns, the
morphing algebra, S-DAG, cost model, selection, result conversion);
``repro.engines`` holds the five system substrates; ``repro.apps`` the
mining applications (MC, SC, SE, FSM); ``repro.morph`` the end-to-end
pipeline; ``repro.observe`` structured run telemetry; ``repro.graph``
data graphs, generators and dataset stand-ins.
"""

from repro.api import ENGINES, resolve_engine, run
from repro.checkpoint import ShardCheckpoint
from repro.errors import (
    CheckpointError,
    GraphValidationError,
    ReproError,
    RunDeadlineExceeded,
    SharedMemoryLeakError,
    WorkerCrashError,
)
from repro.core.aggregation import (
    Aggregation,
    CountAggregation,
    ExistenceAggregation,
    MatchListAggregation,
    MNIAggregation,
)
from repro.core.atlas import (
    EVALUATION_PATTERNS,
    NAMED_PATTERNS,
    all_connected_patterns,
    motif_patterns,
    pattern_name,
)
from repro.core.canonical import are_isomorphic, canonical_form, pattern_id
from repro.core.costmodel import CostModel, EngineCostProfile, GraphModel
from repro.core.alternatives import enumerate_alternative_sets
from repro.core.equations import morph_equation, solve_query
from repro.core.parser import format_pattern, parse_pattern
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED, SDag
from repro.core.selection import select_alternative_patterns
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import EngineStats, MiningEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.recovery import Deadline, RetryPolicy
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.graph.datagraph import DataGraph
from repro.morph.cache import MeasurementCache, PlanCache
from repro.plan import RewritePlan, search_plan
from repro.morph.session import (
    MorphingSession,
    MorphRunResult,
    PartialRunResult,
    compare_baseline_and_morphed,
)
from repro.options import RunOptions
from repro.serve.client import connect
from repro.testing import FaultPlan, FaultSpec
from repro.observe import (
    CostAuditRecord,
    MetricsRegistry,
    ProgressReporter,
    ProgressSnapshot,
    RunTrace,
    Span,
    Tracer,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)

__version__ = "1.2.0"

__all__ = [
    "Aggregation",
    "AutoZeroEngine",
    "BigJoinEngine",
    "CheckpointError",
    "CostAuditRecord",
    "CostModel",
    "CountAggregation",
    "DataGraph",
    "Deadline",
    "EDGE_INDUCED",
    "ENGINES",
    "EngineCostProfile",
    "EngineStats",
    "EVALUATION_PATTERNS",
    "ExistenceAggregation",
    "FaultPlan",
    "FaultSpec",
    "GraphModel",
    "GraphPiEngine",
    "GraphValidationError",
    "MatchListAggregation",
    "MeasurementCache",
    "MetricsRegistry",
    "MiningEngine",
    "MNIAggregation",
    "MorphingSession",
    "MorphRunResult",
    "NAMED_PATTERNS",
    "PartialRunResult",
    "Pattern",
    "PeregrineEngine",
    "PlanCache",
    "ProgressReporter",
    "ProgressSnapshot",
    "ReproError",
    "RetryPolicy",
    "RewritePlan",
    "RunDeadlineExceeded",
    "RunOptions",
    "RunTrace",
    "SDag",
    "ShardCheckpoint",
    "SharedMemoryLeakError",
    "Span",
    "SumPAEngine",
    "Tracer",
    "WorkerCrashError",
    "VERTEX_INDUCED",
    "all_connected_patterns",
    "are_isomorphic",
    "canonical_form",
    "compare_baseline_and_morphed",
    "connect",
    "enumerate_alternative_sets",
    "format_pattern",
    "load_trace",
    "morph_equation",
    "motif_patterns",
    "parse_pattern",
    "pattern_id",
    "pattern_name",
    "resolve_engine",
    "run",
    "search_plan",
    "select_alternative_patterns",
    "solve_query",
    "write_chrome_trace",
    "write_jsonl",
]
