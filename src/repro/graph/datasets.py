"""Synthetic stand-ins for the paper's evaluation graphs (Figure 11b).

The paper mines MiCo, MAG, Products, Orkut and Friendster — graphs of
100K to 65M vertices. Those datasets (and that scale) are unavailable
offline, so each is replaced by a deterministic synthetic graph that
preserves the properties morphing is sensitive to:

* the *relative* size ordering (MI < MG < PR < OK < FR),
* label cardinality for the labeled graphs (MiCo 29, MAG 349, Products 47),
* heavy-tailed degree distributions with hubs (the cost model's
  high-degree restriction), and
* meaningful clustering so dense patterns (cliques, chordal cycles) have
  non-trivial counts.

Vertex counts are scaled down ~300× so complete experiment sweeps run in
seconds; DESIGN.md documents why relative speedup shapes survive the
scaling. Every accessor is memoized — the graphs are immutable.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graph.datagraph import DataGraph
from repro.graph.generators import assign_labels, power_law_cluster

#: name -> (vertices, attach, triangle_prob, labels, label_skew, seed)
_SPECS: dict[str, tuple[int, int, float, int | None, float, int]] = {
    # MiCo: co-authorship, 29 research-field labels, clustered.
    "mico": (350, 6, 0.55, 29, 1.1, 11),
    # MAG: citation graph, 349 venue labels, sparser per-vertex degree.
    "mag": (900, 4, 0.35, 349, 1.3, 23),
    # Products: co-purchasing, 47 category labels, high average degree.
    "products": (1400, 9, 0.45, 47, 1.0, 37),
    # Orkut: unlabeled social network, dense.
    "orkut": (1800, 12, 0.40, None, 0.0, 47),
    # Friendster: unlabeled social network, largest.
    "friendster": (2600, 10, 0.30, None, 0.0, 59),
}

#: Paper's two-letter dataset codes.
DATASET_CODES = {"MI": "mico", "MG": "mag", "PR": "products", "OK": "orkut", "FR": "friendster"}


def load(name: str) -> DataGraph:
    """Load a synthetic stand-in by name or paper code (e.g. "MI")."""
    key = DATASET_CODES.get(name, name).lower()
    if key not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(_SPECS)}")
    return _load(key)


@lru_cache(maxsize=None)
def _load(key: str) -> DataGraph:
    vertices, attach, tri, labels, skew, seed = _SPECS[key]
    graph = power_law_cluster(vertices, attach, tri, seed=seed, name=key)
    if labels is not None:
        graph = assign_labels(graph, labels, skew=skew, seed=seed + 1)
    return graph


def mico() -> DataGraph:
    """MiCo stand-in: labeled co-authorship-like graph (29 labels)."""
    return load("mico")


def mag() -> DataGraph:
    """MAG stand-in: labeled citation-like graph (349 labels)."""
    return load("mag")


def products() -> DataGraph:
    """Products stand-in: labeled co-purchase-like graph (47 labels)."""
    return load("products")


def orkut() -> DataGraph:
    """Orkut stand-in: unlabeled dense social graph."""
    return load("orkut")


def friendster() -> DataGraph:
    """Friendster stand-in: unlabeled, the largest of the suite."""
    return load("friendster")


def summary_table() -> list[dict[str, object]]:
    """Rows mirroring Figure 11b for the synthetic suite."""
    rows = []
    for code, key in DATASET_CODES.items():
        g = load(key)
        rows.append(
            {
                "code": code,
                "name": key,
                "vertices": g.num_vertices,
                "edges": g.num_edges,
                "labels": g.num_labels if g.is_labeled else None,
                "max_degree": g.max_degree,
                "avg_degree": round(g.avg_degree, 1),
            }
        )
    return rows
