"""The data graph: the (large) graph that patterns are mined in.

Stored as per-vertex sorted numpy adjacency arrays — the representation
the matching engines' set operations (sorted intersections/differences)
run on, mirroring the adjacency-list layout of Peregrine/GraphPi. Vertex
ids are dense ``0..n-1``; optional integer labels support labeled mining
(FSM). Undirected, simple (no self-loops, no parallel edges).
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np


class DataGraph:
    """Immutable undirected data graph with sorted adjacency arrays."""

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        labels: Sequence[int] | None = None,
        name: str = "graph",
    ) -> None:
        if num_vertices < 1:
            raise ValueError("graph needs at least one vertex")
        self.name = name
        self.num_vertices = num_vertices

        pair_set: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                continue  # drop self-loops silently (standard cleaning step)
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) out of range")
            pair_set.add((u, v) if u < v else (v, u))
        self.num_edges = len(pair_set)

        neighbor_lists: list[list[int]] = [[] for _ in range(num_vertices)]
        for u, v in pair_set:
            neighbor_lists[u].append(v)
            neighbor_lists[v].append(u)
        self._adjacency: list[np.ndarray] = [
            np.array(sorted(ns), dtype=np.int64) for ns in neighbor_lists
        ]
        self._edge_set = frozenset(pair_set)

        if labels is not None:
            labels_arr = np.asarray(labels, dtype=np.int64)
            if labels_arr.shape != (num_vertices,):
                raise ValueError("labels must have one entry per vertex")
            self.labels: np.ndarray | None = labels_arr
        else:
            self.labels = None

    # -- basic queries ---------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (do not mutate)."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    def has_edge(self, u: int, v: int) -> bool:
        return ((u, v) if u < v else (v, u)) in self._edge_set

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` with ``u < v``."""
        return iter(self._edge_set)

    def label(self, v: int) -> int | None:
        return None if self.labels is None else int(self.labels[v])

    @property
    def is_labeled(self) -> bool:
        return self.labels is not None

    @cached_property
    def degrees(self) -> np.ndarray:
        return np.array([len(a) for a in self._adjacency], dtype=np.int64)

    @cached_property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.num_vertices else 0

    @cached_property
    def avg_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_vertices if self.num_vertices else 0.0

    @cached_property
    def vertices_by_label(self) -> dict[int, np.ndarray]:
        """Sorted vertex-id array per label (empty dict when unlabeled)."""
        if self.labels is None:
            return {}
        out: dict[int, list[int]] = {}
        for v in range(self.num_vertices):
            out.setdefault(int(self.labels[v]), []).append(v)
        return {lab: np.array(vs, dtype=np.int64) for lab, vs in out.items()}

    @cached_property
    def num_labels(self) -> int:
        return len(self.vertices_by_label)

    @cached_property
    def all_vertices(self) -> np.ndarray:
        return np.arange(self.num_vertices, dtype=np.int64)

    def high_degree_threshold(self, percentile: float = 95.0) -> int:
        """Degree at the given percentile (cost-model enhancement, §5.2)."""
        if self.num_vertices == 0:
            return 0
        return int(np.percentile(self.degrees, percentile))

    # -- derived graphs ----------------------------------------------------

    def subgraph(self, vertices: Sequence[int], name: str | None = None) -> "DataGraph":
        """Induced subgraph on ``vertices``, re-indexed to ``0..k-1``."""
        keep = sorted(set(int(v) for v in vertices))
        remap = {v: i for i, v in enumerate(keep)}
        edges = [
            (remap[u], remap[v])
            for u, v in self._edge_set
            if u in remap and v in remap
        ]
        labels = None
        if self.labels is not None:
            labels = [int(self.labels[v]) for v in keep]
        return DataGraph(
            len(keep), edges, labels=labels, name=name or f"{self.name}-sub"
        )

    def __repr__(self) -> str:
        lab = f", labels={self.num_labels}" if self.is_labeled else ""
        return (
            f"DataGraph({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{lab})"
        )
