"""The data graph: the (large) graph that patterns are mined in.

Stored in **CSR (compressed sparse row) layout**: one flat ``indptr``
array (``int64``, length ``n + 1``) and one flat ``indices`` array
(``int32`` when vertex ids fit, else ``int64``, length ``2m``) holding
every vertex's sorted neighbor list back to back — the adjacency shape
Peregrine/GraphPi read directly in their set-operation kernels.
``neighbors(v)`` is a zero-copy read-only slice of ``indices``;
``has_edge`` is a binary search on the shorter endpoint's row. Vertex
ids are dense ``0..n-1``; optional integer labels support labeled
mining (FSM). Undirected, simple (self-loops and duplicate edges are
dropped during construction and *counted*, see
``num_dropped_self_loops`` / ``num_duplicate_edges``).

The flat layout is what the rest of the system builds on: the partition
layer shards via ``indptr`` prefix sums, the cost model reads degree
statistics straight off ``indptr``, and the parallel execution layer
ships the three arrays to worker processes through
``multiprocessing.shared_memory`` so workers attach zero-copy
(:mod:`repro.engines.execution`).
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np


#: Largest vertex count that still gets a dense boolean adjacency matrix
#: (``n²`` bytes; 8192² = 64 MiB). Bigger graphs answer batch membership
#: through the sorted ``adjacency_keys`` binary search instead.
DENSE_ADJACENCY_MAX_VERTICES = 8192


def _index_dtype(num_vertices: int) -> np.dtype:
    """Narrowest integer dtype that holds every vertex id."""
    return np.dtype(np.int32 if num_vertices <= np.iinfo(np.int32).max else np.int64)


class DataGraph:
    """Immutable undirected data graph in flat CSR adjacency layout."""

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        labels: Sequence[int] | None = None,
        name: str = "graph",
    ) -> None:
        if num_vertices < 1:
            raise ValueError("graph needs at least one vertex")

        if isinstance(edges, np.ndarray):
            pairs = np.ascontiguousarray(edges, dtype=np.int64)
        else:
            pairs = np.array(list(edges), dtype=np.int64)
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")

        # Clean the edge stream fully vectorized (no Python pair-sets):
        # drop self-loops, canonicalize to (min, max), dedupe via a packed
        # 1-D key — counting what was dropped instead of hiding it.
        loops = pairs[:, 0] == pairs[:, 1]
        num_self_loops = int(np.count_nonzero(loops))
        if num_self_loops:
            pairs = pairs[~loops]

        if pairs.size and (pairs.min() < 0 or pairs.max() >= num_vertices):
            bad = pairs[
                (pairs[:, 0] < 0)
                | (pairs[:, 0] >= num_vertices)
                | (pairs[:, 1] < 0)
                | (pairs[:, 1] >= num_vertices)
            ][0]
            raise ValueError(f"edge ({bad[0]}, {bad[1]}) out of range")
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        key = lo * np.int64(num_vertices) + hi  # n < 2^31.5 always holds here
        unique_keys = np.unique(key)
        num_duplicates = len(key) - len(unique_keys)
        lo = (unique_keys // num_vertices).astype(np.int64)
        hi = (unique_keys % num_vertices).astype(np.int64)

        dtype = _index_dtype(num_vertices)
        heads = np.concatenate([lo, hi])
        tails = np.concatenate([hi, lo]).astype(dtype)
        counts = np.bincount(heads, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.lexsort((tails, heads))
        indices = tails[order]

        labels_arr = None
        if labels is not None:
            labels_arr = np.asarray(labels, dtype=np.int64)
            if labels_arr.shape != (num_vertices,):
                raise ValueError("labels must have one entry per vertex")

        self._init_from_csr(
            num_vertices,
            indptr,
            indices,
            labels_arr,
            name=name,
            num_dropped_self_loops=num_self_loops,
            num_duplicate_edges=num_duplicates,
        )

    def _init_from_csr(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray | None,
        name: str,
        num_dropped_self_loops: int = 0,
        num_duplicate_edges: int = 0,
    ) -> None:
        self.name = name
        self.num_vertices = num_vertices
        self.num_edges = len(indices) // 2
        self.num_dropped_self_loops = num_dropped_self_loops
        self.num_duplicate_edges = num_duplicate_edges
        # Read-only flat arrays: every neighbors() slice inherits the
        # flag, so kernels cannot scribble on shared adjacency.
        indptr.flags.writeable = False
        indices.flags.writeable = False
        self._indptr = indptr
        self._indices = indices
        if labels is not None:
            labels.flags.writeable = False
        self.labels: np.ndarray | None = labels

    @classmethod
    def from_csr(
        cls,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray | None = None,
        name: str = "graph",
        num_dropped_self_loops: int = 0,
        num_duplicate_edges: int = 0,
        validate: bool = True,
    ) -> "DataGraph":
        """Wrap pre-built CSR arrays without copying or re-cleaning.

        This is the zero-copy entry point: the arrays are adopted as-is
        (and marked read-only), which is how shared-memory workers and
        fast loaders reconstruct a graph. ``validate`` runs cheap shape
        and monotonicity checks only — callers guarantee sorted rows.
        """
        if validate:
            if len(indptr) != num_vertices + 1:
                raise ValueError("indptr must have num_vertices + 1 entries")
            if int(indptr[0]) != 0 or int(indptr[-1]) != len(indices):
                raise ValueError("indptr must span [0, len(indices)]")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
        graph = cls.__new__(cls)
        graph._init_from_csr(
            num_vertices,
            indptr,
            indices,
            labels,
            name=name,
            num_dropped_self_loops=num_dropped_self_loops,
            num_duplicate_edges=num_duplicate_edges,
        )
        return graph

    # -- CSR access --------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """Row-pointer array (``int64``, length ``num_vertices + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Flat sorted neighbor array (length ``2 * num_edges``)."""
        return self._indices

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """The full storage: ``(indptr, indices, labels-or-None)``."""
        return self._indptr, self._indices, self.labels

    # -- basic queries ---------------------------------------------------

    @cached_property
    def fingerprint(self) -> str:
        """Stable content hash of the CSR arrays (and labels).

        Two graphs with identical structure and labels share a
        fingerprint even across processes — unlike ``id(graph)``, so
        it can key persistent caches (the planner's
        :class:`repro.PlanCache`). Computed once per graph.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.int64(self.num_vertices).tobytes())
        digest.update(self._indptr.tobytes())
        digest.update(self._indices.tobytes())
        if self.labels is not None:
            digest.update(b"L")
            digest.update(self.labels.tobytes())
        return digest.hexdigest()

    @cached_property
    def _rows(self) -> list[np.ndarray]:
        """Per-vertex zero-copy views into ``indices``, built once.

        ``np.split`` hands back n read-only views of the flat neighbor
        array (they inherit the writeable=False flag); caching them makes
        ``neighbors(v)`` a plain list index — the same cost as the old
        per-vertex adjacency — while every view still aliases the single
        CSR buffer.
        """
        return np.split(self._indices, self._indptr[1:-1])

    @cached_property
    def _degree_list(self) -> list[int]:
        """Plain-int degree per vertex, for O(1) ``degree()`` calls."""
        return np.diff(self._indptr).tolist()

    @cached_property
    def _edge_keys(self) -> set[int]:
        """Packed ``lo * n + hi`` keys for O(1) ``has_edge`` probes.

        Built lazily on the first ``has_edge`` call: bulk membership work
        should use the sorted CSR rows (searchsorted), but per-edge probe
        loops (oracles, validators, rewiring) need the hash-set constant
        factor.
        """
        edges = self._edge_array
        keys = edges[:, 0] * np.int64(self.num_vertices) + edges[:, 1]
        return set(keys.tolist())

    @cached_property
    def adjacency_keys(self) -> np.ndarray:
        """Sorted packed ``u * n + v`` keys of every *directed* edge.

        The vectorized-membership companion of ``_edge_keys``: one
        ``np.searchsorted`` against this array answers a whole batch of
        "is ``v`` adjacent to ``u``?" probes at once (the batched
        frontier kernels' workhorse). Sorted by construction — CSR rows
        ascend by head, and each row's tail list is sorted.
        """
        heads = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self._indptr)
        )
        keys = heads * np.int64(self.num_vertices) + self._indices
        keys.flags.writeable = False
        return keys

    @cached_property
    def dense_adjacency(self) -> np.ndarray | None:
        """Dense boolean adjacency matrix, or ``None`` above the size cap.

        ``dense[u, v]`` answers adjacency with a single 2-D fancy index —
        the fastest batch membership primitive there is, but it costs
        ``n²`` bytes, so it only exists for graphs small enough that the
        matrix stays cache-friendly (``DENSE_ADJACENCY_MAX_VERTICES``).
        Larger graphs fall back to the ``adjacency_keys`` binary search.
        """
        n = self.num_vertices
        if n > DENSE_ADJACENCY_MAX_VERTICES:
            return None
        dense = np.zeros((n, n), dtype=bool)
        heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        dense[heads, self._indices] = True
        dense.flags.writeable = False
        return dense

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` — a zero-copy read-only CSR slice."""
        return self._rows[v]

    def degree(self, v: int) -> int:
        return self._degree_list[v]

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            return False
        key = u * self.num_vertices + v if u < v else v * self.num_vertices + u
        return key in self._edge_keys

    @cached_property
    def _edge_array(self) -> np.ndarray:
        """``(num_edges, 2)`` array of ``u < v`` pairs in lexicographic order."""
        heads = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self._indptr)
        )
        tails = self._indices.astype(np.int64, copy=False)
        mask = tails > heads
        return np.column_stack([heads[mask], tails[mask]])

    def edge_array(self) -> np.ndarray:
        """Edges as a ``(num_edges, 2)`` int array with ``u < v`` rows."""
        return self._edge_array

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` with ``u < v`` (lexicographic order)."""
        return iter(map(tuple, self._edge_array.tolist()))

    def label(self, v: int) -> int | None:
        return None if self.labels is None else int(self.labels[v])

    @property
    def is_labeled(self) -> bool:
        return self.labels is not None

    @cached_property
    def degrees(self) -> np.ndarray:
        """Per-vertex degrees — one vectorized ``diff`` over ``indptr``."""
        return np.diff(self._indptr)

    @cached_property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.num_vertices else 0

    @cached_property
    def avg_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_vertices if self.num_vertices else 0.0

    @cached_property
    def vertices_by_label(self) -> dict[int, np.ndarray]:
        """Sorted vertex-id array per label (empty dict when unlabeled)."""
        if self.labels is None:
            return {}
        dtype = self._indices.dtype
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
        groups = np.split(order.astype(dtype), boundaries)
        out = {}
        for group in groups:
            group.sort()
            group.flags.writeable = False
            out[int(self.labels[group[0]])] = group
        return out

    @cached_property
    def num_labels(self) -> int:
        return len(self.vertices_by_label)

    @cached_property
    def all_vertices(self) -> np.ndarray:
        arr = np.arange(self.num_vertices, dtype=self._indices.dtype)
        arr.flags.writeable = False
        return arr

    def high_degree_threshold(self, percentile: float = 95.0) -> int:
        """Degree at the given percentile (cost-model enhancement, §5.2)."""
        if self.num_vertices == 0:
            return 0
        return int(np.percentile(self.degrees, percentile))

    # -- derived graphs ----------------------------------------------------

    def subgraph(self, vertices: Sequence[int], name: str | None = None) -> "DataGraph":
        """Induced subgraph on ``vertices``, re-indexed to ``0..k-1``."""
        keep = np.unique(np.asarray(list(vertices), dtype=np.int64))
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[keep] = np.arange(len(keep))
        edges = self._edge_array
        mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        remapped = remap[edges[mask]]
        labels = self.labels[keep] if self.labels is not None else None
        return DataGraph(
            len(keep),
            remapped,
            labels=labels,
            name=name or f"{self.name}-sub",
        )

    def __repr__(self) -> str:
        lab = f", labels={self.num_labels}" if self.is_labeled else ""
        return (
            f"DataGraph({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{lab})"
        )
