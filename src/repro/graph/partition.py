"""Graph partitioning (the §7.4 workload-shrinking step).

The paper partitions Products and Orkut with METIS and mines the large
7-vertex patterns *within* partitions, dropping cross-partition edges to
bound the workload. METIS is unavailable offline; this module provides a
streaming Linear Deterministic Greedy (LDG) partitioner — a standard
lightweight alternative that, like METIS, produces balanced parts with a
modest edge cut. Since §7.4 only needs "balanced parts, cut edges
dropped", the substitution preserves the experiment's semantics.
"""

from __future__ import annotations

import numpy as np

from repro.graph.datagraph import DataGraph


def ldg_partition(graph: DataGraph, num_parts: int, seed: int = 0) -> list[int]:
    """Assign each vertex to a part via Linear Deterministic Greedy.

    Vertices are streamed in a random order; each goes to the part holding
    most of its already-placed neighbors, weighted by a capacity penalty
    ``1 - size/capacity`` that keeps parts balanced.
    """
    if num_parts < 1:
        raise ValueError("need at least one part")
    if num_parts == 1:
        return [0] * graph.num_vertices
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    capacity = graph.num_vertices / num_parts * 1.1
    assignment = [-1] * graph.num_vertices
    sizes = [0] * num_parts
    for v in order:
        v = int(v)
        neighbor_counts = [0] * num_parts
        for w in graph.neighbors(v):
            part = assignment[int(w)]
            if part >= 0:
                neighbor_counts[part] += 1
        best_part, best_score = 0, -1.0
        for part in range(num_parts):
            penalty = max(0.0, 1.0 - sizes[part] / capacity)
            score = (neighbor_counts[part] + 1e-9) * penalty
            if score > best_score:
                best_part, best_score = part, score
        assignment[v] = best_part
        sizes[best_part] += 1
    return assignment


def partition_subgraphs(
    graph: DataGraph, num_parts: int, seed: int = 0
) -> list[DataGraph]:
    """Split a graph into part-induced subgraphs, dropping cut edges."""
    assignment = ldg_partition(graph, num_parts, seed=seed)
    parts: list[list[int]] = [[] for _ in range(num_parts)]
    for v, part in enumerate(assignment):
        parts[part].append(v)
    return [
        graph.subgraph(vs, name=f"{graph.name}-part{i}")
        for i, vs in enumerate(parts)
        if vs
    ]


def edge_cut(graph: DataGraph, assignment: list[int]) -> int:
    """Number of edges crossing between parts."""
    return sum(1 for u, v in graph.edges() if assignment[u] != assignment[v])


def shard_by_degree_prefix(
    graph: DataGraph, num_shards: int
) -> list[tuple[int, int]]:
    """Split the vertex-id range into contiguous, degree-balanced shards.

    Returns half-open ``(lo, hi)`` vertex-id windows that partition
    ``[0, num_vertices)``. Cut points are chosen on the prefix sum of
    ``degree + 1`` (the +1 keeps isolated vertices from collapsing a
    shard to zero weight), so each shard carries roughly the same
    top-level exploration mass — the shard-parallel execution layer's
    analogue of Peregrine/GraphPi's vertex-range task decomposition.

    The CSR ``indptr`` array *is* the degree prefix sum, so the weights
    come straight off the graph's row pointers — no per-vertex loop and
    no materialized degree array.

    Deterministic: the same graph and shard count always yield the same
    windows, which is what makes shard-order merges reproducible.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    n = graph.num_vertices
    if num_shards == 1 or n == 1:
        return [(0, n)]
    if num_shards >= n:
        return [(v, v + 1) for v in range(n)]
    # prefix[v] = sum_{w <= v} (degree(w) + 1) = indptr[v + 1] + (v + 1).
    prefix = graph.indptr[1:] + np.arange(1, n + 1, dtype=np.int64)
    total = int(prefix[-1])
    targets = [total * k // num_shards for k in range(1, num_shards)]
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    bounds = [0]
    for cut in cuts.tolist():
        cut = min(int(cut), n)
        if cut > bounds[-1]:
            bounds.append(cut)
    if bounds[-1] != n:
        bounds.append(n)
    return list(zip(bounds[:-1], bounds[1:]))
