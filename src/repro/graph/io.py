"""Edge-list I/O for data graphs.

Supports the plain whitespace edge-list format used by SNAP/Peregrine
(`u v` per line, `#` comments) plus an optional label file (`v label` per
line). Vertex ids are compacted to a dense range on load.

All loaders validate their input *up front* — malformed lines,
non-integer tokens, negative ids, ragged rows and ids that overflow the
CSR's int32 index space raise :class:`repro.GraphValidationError`
(a ``ValueError`` subclass) with file/line context, instead of failing
deep inside the CSR build with a context-free numpy error.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.datagraph import DataGraph

#: The shard/kernel layer indexes vertices with int32; any id beyond
#: this cannot round-trip through the CSR without silent truncation.
_MAX_VERTEX_ID = np.iinfo(np.int32).max


def load_edge_list(
    path: str | os.PathLike,
    label_path: str | os.PathLike | None = None,
    name: str | None = None,
) -> DataGraph:
    """Load a graph from an edge-list file, remapping ids densely.

    The parsed endpoints go straight into a flat numpy array and from
    there into the CSR builder — no Python pair-set is materialized at
    any point of the pipeline.
    """
    endpoints: list[int] = []

    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphValidationError(
                    f"malformed edge line: {line!r} (expected 'u v')",
                    path=path,
                    line=lineno,
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphValidationError(
                    f"non-integer endpoint in edge line: {line!r}",
                    path=path,
                    line=lineno,
                ) from None
            if u < 0 or v < 0:
                raise GraphValidationError(
                    f"negative vertex id in edge line: {line!r}",
                    path=path,
                    line=lineno,
                )
            if u > _MAX_VERTEX_ID or v > _MAX_VERTEX_ID:
                raise GraphValidationError(
                    f"vertex id overflows int32 index space in edge line: {line!r}",
                    path=path,
                    line=lineno,
                )
            endpoints.append(u)
            endpoints.append(v)

    flat = np.array(endpoints, dtype=np.int64)
    # Compact ids in numeric order, so already-dense files load unchanged:
    # unique() hands back the sorted id table and the dense inverse.
    raw_ids, dense = np.unique(flat, return_inverse=True)
    edges = dense.reshape(-1, 2)
    num_vertices = len(raw_ids)

    labels = None
    if label_path is not None:
        ids = {int(raw): i for i, raw in enumerate(raw_ids)}
        labels = np.zeros(num_vertices, dtype=np.int64)
        with open(label_path) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line or line.startswith(("#", "%")):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise GraphValidationError(
                        f"malformed label line: {line!r} (expected 'v label')",
                        path=label_path,
                        line=lineno,
                    )
                try:
                    v, lab = int(parts[0]), int(parts[1])
                except ValueError:
                    raise GraphValidationError(
                        f"non-integer token in label line: {line!r}",
                        path=label_path,
                        line=lineno,
                    ) from None
                if v in ids:
                    labels[ids[v]] = lab

    graph_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return DataGraph(num_vertices, edges, labels=labels, name=graph_name)


def save_edge_list(
    graph: DataGraph,
    path: str | os.PathLike,
    label_path: str | os.PathLike | None = None,
) -> None:
    """Write a graph (and optionally labels) back to disk."""
    with open(path, "w") as f:
        f.write(f"# {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        # The CSR edge array is already in sorted (u, v) order.
        f.writelines(f"{u} {v}\n" for u, v in graph.edge_array().tolist())
    if label_path is not None:
        if not graph.is_labeled:
            raise ValueError("graph has no labels to save")
        with open(label_path, "w") as f:
            for v in range(graph.num_vertices):
                f.write(f"{v} {graph.label(v)}\n")


def from_edges(edges: Iterable[tuple[int, int]], name: str = "graph") -> DataGraph:
    """Build a graph from edges, inferring the vertex count."""
    edge_list = list(edges)
    lo = min((min(u, v) for u, v in edge_list), default=0)
    if lo < 0:
        raise GraphValidationError(f"negative vertex id in edges: {lo}")
    n = 1 + max((max(u, v) for u, v in edge_list), default=0)
    if n - 1 > _MAX_VERTEX_ID:
        raise GraphValidationError(
            f"vertex id {n - 1} overflows int32 index space"
        )
    return DataGraph(n, edge_list, name=name)


def load_metis(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Load a graph in METIS format.

    METIS files carry a header ``<num_vertices> <num_edges> [fmt]`` and
    one line per vertex listing its (1-indexed) neighbors. Vertex weights
    and edge weights (fmt 1/10/11) are skipped — only the structure is
    kept, matching how §7.4 uses METIS (partitioning input).
    """
    with open(path) as f:
        lines = [
            (lineno, line.strip())
            for lineno, line in enumerate(f, start=1)
            if line.strip() and not line.lstrip().startswith("%")
        ]
    if not lines:
        raise GraphValidationError("empty METIS file", path=path)
    header_lineno, header_text = lines[0]
    header = header_text.split()
    try:
        num_vertices = int(header[0])
    except ValueError:
        raise GraphValidationError(
            f"non-integer METIS header: {header_text!r}",
            path=path,
            line=header_lineno,
        ) from None
    fmt = header[2] if len(header) > 2 else "0"
    has_vertex_weights = len(fmt) >= 2 and fmt[-2] == "1"
    has_edge_weights = fmt[-1] == "1"
    if len(lines) - 1 != num_vertices:
        raise GraphValidationError(
            f"METIS header promises {num_vertices} vertex lines, "
            f"found {len(lines) - 1}",
            path=path,
            line=header_lineno,
        )
    edges: list[tuple[int, int]] = []
    for v, (lineno, line) in enumerate(lines[1:]):
        try:
            tokens = [int(t) for t in line.split()]
        except ValueError:
            raise GraphValidationError(
                f"non-integer token in METIS vertex line: {line!r}",
                path=path,
                line=lineno,
            ) from None
        if has_vertex_weights and tokens:
            tokens = tokens[1:]
        step = 2 if has_edge_weights else 1
        if has_edge_weights and len(tokens) % 2:
            raise GraphValidationError(
                f"ragged METIS vertex line (odd neighbor/weight count): {line!r}",
                path=path,
                line=lineno,
            )
        for i in range(0, len(tokens), step):
            u = tokens[i] - 1  # METIS is 1-indexed
            if not (0 <= u < num_vertices):
                raise GraphValidationError(
                    f"neighbor {u + 1} out of range",
                    path=path,
                    line=lineno,
                )
            if u != v:
                edges.append((v, u))
    graph_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return DataGraph(num_vertices, edges, name=graph_name)


def save_metis(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write a graph in (unweighted) METIS format."""
    with open(path, "w") as f:
        f.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            f.write(" ".join(str(int(u) + 1) for u in graph.neighbors(v)) + "\n")


def load_json_graph(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Load a graph from the node-link JSON form used by ``save_json_graph``."""
    import json

    with open(path) as f:
        data = json.load(f)
    try:
        num_vertices = int(data["num_vertices"])
    except (KeyError, TypeError, ValueError):
        raise GraphValidationError(
            "missing or non-integer 'num_vertices'", path=path
        ) from None
    if num_vertices < 0:
        raise GraphValidationError(
            f"negative 'num_vertices': {num_vertices}", path=path
        )
    if num_vertices - 1 > _MAX_VERTEX_ID:
        raise GraphValidationError(
            f"'num_vertices' {num_vertices} overflows int32 index space",
            path=path,
        )
    edges: list[tuple[int, int]] = []
    for e in data.get("edges", ()):
        if len(e) != 2:
            raise GraphValidationError(
                f"ragged edge entry (expected a pair): {e!r}", path=path
            )
        try:
            u, v = int(e[0]), int(e[1])
        except (TypeError, ValueError):
            raise GraphValidationError(
                f"non-integer edge endpoint: {e!r}", path=path
            ) from None
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise GraphValidationError(
                f"edge endpoint out of range [0, {num_vertices}): {e!r}",
                path=path,
            )
        edges.append((u, v))
    labels = data.get("labels")
    if labels is not None and len(labels) != num_vertices:
        raise GraphValidationError(
            f"label array length {len(labels)} != num_vertices {num_vertices}",
            path=path,
        )
    graph_name = name or data.get("name") or "graph"
    return DataGraph(num_vertices, edges, labels=labels, name=graph_name)


def save_json_graph(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write a graph (structure + labels) as a single JSON document."""
    import json

    data: dict = {
        "name": graph.name,
        "num_vertices": graph.num_vertices,
        "edges": graph.edge_array().tolist(),
    }
    if graph.is_labeled:
        data["labels"] = [graph.label(v) for v in range(graph.num_vertices)]
    with open(path, "w") as f:
        json.dump(data, f)
