"""Synthetic graph generators.

The paper evaluates on real-world graphs; offline we synthesize stand-ins
(see :mod:`repro.graph.datasets`). These generators provide the building
blocks: Erdős–Rényi baselines, preferential-attachment power-law graphs
(degree skew is what the cost model's high-degree enhancement exploits),
and label assignment with configurable skew (FSM frequency structure).

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.datagraph import DataGraph


def erdos_renyi(
    num_vertices: int, edge_prob: float, seed: int = 0, name: str = "er"
) -> DataGraph:
    """G(n, p) random graph."""
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(num_vertices, k=1)
    mask = rng.random(len(iu)) < edge_prob
    edges = np.column_stack([iu[mask], ju[mask]])
    return DataGraph(num_vertices, edges, name=name)


def barabasi_albert(
    num_vertices: int, attach: int, seed: int = 0, name: str = "ba"
) -> DataGraph:
    """Preferential attachment: each new vertex attaches to ``attach`` others.

    Produces the heavy-tailed degree distribution of social networks,
    where the top few percent of vertices carry most incidences — the
    regime the paper's profiling observation (66–99% of matches from
    95th-percentile-degree vertices) lives in.
    """
    if attach < 1 or attach >= num_vertices:
        raise ValueError("attach must be in [1, num_vertices)")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-endpoint list implements preferential attachment cheaply.
    targets = list(range(attach))
    repeated: list[int] = []
    for v in range(attach, num_vertices):
        chosen = set()
        pool = repeated if repeated else targets
        while len(chosen) < min(attach, v):
            candidate = int(pool[rng.integers(len(pool))])
            if candidate != v:
                chosen.add(candidate)
        for u in chosen:
            edges.append((u, v))
            repeated.extend((u, v))
    return DataGraph(num_vertices, edges, name=name)


def power_law_cluster(
    num_vertices: int,
    attach: int,
    triangle_prob: float,
    seed: int = 0,
    name: str = "plc",
) -> DataGraph:
    """Holme–Kim style power-law graph with tunable clustering.

    After each preferential attachment step, with probability
    ``triangle_prob`` the next edge closes a triangle with a neighbor of
    the previous target. Higher clustering means denser motif counts
    (cliques, chordal cycles), matching co-authorship/co-purchase graphs.
    """
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
    repeated: list[int] = list(range(attach))

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edges:
            return False
        edges.add(key)
        adjacency[u].append(v)
        adjacency[v].append(u)
        repeated.extend((u, v))
        return True

    for v in range(attach, num_vertices):
        added = 0
        last_target: int | None = None
        guard = 0
        while added < min(attach, v) and guard < 50 * attach:
            guard += 1
            if (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triangle_prob
            ):
                candidate = int(
                    adjacency[last_target][rng.integers(len(adjacency[last_target]))]
                )
            else:
                candidate = int(repeated[rng.integers(len(repeated))])
            if add_edge(candidate, v):
                added += 1
                last_target = candidate
    return DataGraph(num_vertices, list(edges), name=name)


def assign_labels(
    graph: DataGraph,
    num_labels: int,
    skew: float = 1.0,
    seed: int = 0,
    homophily: float = 0.0,
) -> DataGraph:
    """Return a labeled copy; label frequencies follow a Zipf-like skew.

    ``skew = 0`` gives uniform labels; larger values concentrate mass on
    few labels (the "most frequent label" effect driving the FSM
    discussion in Section 7.2). ``homophily > 0`` runs that many rounds of
    probabilistic majority-label propagation, clustering equal labels
    along edges — the assortativity of co-authorship/co-purchase graphs
    that makes same-label neighborhoods dense (and vertex-induced FSM
    alternatives much cheaper than edge-induced queries).
    """
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_labels + 1, dtype=np.float64) ** skew
    weights /= weights.sum()
    labels = rng.choice(num_labels, size=graph.num_vertices, p=weights)

    rounds = int(np.ceil(homophily * 3)) if homophily > 0 else 0
    for _ in range(rounds):
        order = rng.permutation(graph.num_vertices)
        for v in order:
            if rng.random() >= homophily:
                continue
            neigh = graph.neighbors(int(v))
            if len(neigh) == 0:
                continue
            neighbor_labels = labels[neigh]
            values, counts = np.unique(neighbor_labels, return_counts=True)
            labels[int(v)] = int(values[int(np.argmax(counts))])

    return DataGraph(
        graph.num_vertices,
        graph.edge_array(),
        labels=labels.tolist(),
        name=graph.name,
    )


def community_graph(
    num_communities: int,
    community_size: int,
    intra_prob: float,
    inter_edges: int,
    seed: int = 0,
    name: str = "community",
) -> DataGraph:
    """Planted-partition graph with one label per community.

    Dense same-label clusters with sparse cross-links — the structure of
    co-authorship fields and co-purchase categories. Inside a community,
    a labeled pattern's edge-induced matches overlap heavily on the dense
    cluster, so vertex-induced variants have far fewer matches; this is
    the regime where FSM's expensive MNI UDF makes morphing pay off
    (Section 7.2).
    """
    rng = np.random.default_rng(seed)
    n = num_communities * community_size
    edges: list[tuple[int, int]] = []
    labels: list[int] = []
    for c in range(num_communities):
        base = c * community_size
        labels.extend([c] * community_size)
        for i in range(community_size):
            for j in range(i + 1, community_size):
                if rng.random() < intra_prob:
                    edges.append((base + i, base + j))
    for _ in range(inter_edges):
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v:
            edges.append((u, v))
    return DataGraph(n, edges, labels=labels, name=name)


def random_weights(graph: DataGraph, seed: int = 0) -> np.ndarray:
    """Normal-distributed vertex weights (the §7.3 enumeration filter)."""
    rng = np.random.default_rng(seed)
    return rng.normal(loc=0.0, scale=1.0, size=graph.num_vertices)


def rewire(graph: DataGraph, swaps: int | None = None, seed: int = 0) -> DataGraph:
    """Degree-preserving randomization via double-edge swaps.

    Picks two edges (a, b), (c, d) and rewires them to (a, d), (c, b)
    when that creates no self-loop or duplicate edge — the standard null
    model for network-motif significance (Milo et al. [44]): degree
    sequence preserved, structure otherwise randomized. ``swaps`` defaults
    to ``10 * |E|`` attempted swaps.
    """
    rng = np.random.default_rng(seed)
    edges = [list(e) for e in graph.edge_array().tolist()]
    if len(edges) < 2:
        return DataGraph(
            graph.num_vertices,
            [tuple(e) for e in edges],
            labels=(
                [graph.label(v) for v in range(graph.num_vertices)]
                if graph.is_labeled
                else None
            ),
            name=f"{graph.name}-rewired",
        )
    edge_set = {tuple(sorted(e)) for e in edges}
    attempts = swaps if swaps is not None else 10 * len(edges)
    for _ in range(attempts):
        i, j = rng.integers(len(edges)), rng.integers(len(edges))
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        if len({a, b, c, d}) < 4:
            continue
        # Random orientation: without it the stored (min, max) ordering
        # couples vertex ids to the rewiring and biases the null model.
        if rng.random() < 0.5:
            c, d = d, c
        new1, new2 = tuple(sorted((a, d))), tuple(sorted((c, b)))
        if new1 in edge_set or new2 in edge_set:
            continue
        edge_set.discard(tuple(sorted((a, b))))
        edge_set.discard(tuple(sorted((c, d))))
        edge_set.add(new1)
        edge_set.add(new2)
        edges[i] = list(new1)
        edges[j] = list(new2)
    return DataGraph(
        graph.num_vertices,
        [tuple(e) for e in edges],
        labels=(
            [graph.label(v) for v in range(graph.num_vertices)]
            if graph.is_labeled
            else None
        ),
        name=f"{graph.name}-rewired",
    )
