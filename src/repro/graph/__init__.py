"""Data-graph substrate: storage, generators, datasets, partitioning."""

from repro.graph.datagraph import DataGraph

__all__ = ["DataGraph"]
