"""Statistical regression gate over the stored benchmark trajectory.

Compares a candidate :class:`~repro.bench.trajectory.BenchRecord`
against the records before it with noise-aware verdicts: a workload is
``regressed``/``improved`` only when its fresh median lands outside the
historical median ± k·MAD band (with a relative noise floor, so a
history of suspiciously identical numbers doesn't make ±1% "significant"),
``unchanged`` inside the band, and ``new`` when the trajectory has never
seen it. Alongside the total-time verdict each workload gets *per-stage
attribution* ("match regressed, transform unchanged") from the stage
columns the records already carry, and a *cost-model drift* check: the
stored :func:`~repro.observe.rank_agreement` summaries are compared over
time, so a change that silently breaks Algorithm 1's ranking accuracy is
flagged even when wall time looks fine.

Everything here is pure arithmetic over stored records — no wall clock —
so the gate's behavior is fully testable with synthetic histories
(``tests/test_trajectory.py`` proves a 2× slowdown is separated from
±5% jitter deterministically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.trajectory import BenchRecord, WorkloadStats, mad, median

__all__ = [
    "StageVerdict",
    "TrajectoryComparison",
    "WorkloadVerdict",
    "compare_to_history",
]

#: The morphed-run stages records carry (ComparisonRow's stage columns).
_STAGES = ("transform", "match", "convert", "executor")

#: Band half-width in robust noise units (median ± k·MAD).
DEFAULT_K = 4.0
#: Relative noise floor: the band is never narrower than this fraction
#: of the historical median (guards against a deceptively quiet history).
DEFAULT_FLOOR_FRAC = 0.03
#: Rank-agreement drop (absolute) that flags cost-model drift.
DEFAULT_DRIFT_TOLERANCE = 0.15


def _classify(
    current: float,
    history_medians: Sequence[float],
    history_mads: Sequence[float],
    k: float,
    floor_frac: float,
) -> tuple[str, float, float]:
    """Verdict for one scalar: ``(verdict, history_median, threshold)``.

    The noise scale is the most pessimistic of: the spread *between*
    historical medians, the typical *within-record* MAD, and the
    relative floor — so both cross-run drift and per-run jitter widen
    the band.
    """
    hist = median(history_medians)
    noise = max(
        mad(history_medians),
        median(history_mads) if history_mads else 0.0,
        floor_frac * abs(hist),
    )
    threshold = k * noise
    if current > hist + threshold:
        return "regressed", hist, threshold
    if current < hist - threshold:
        return "improved", hist, threshold
    return "unchanged", hist, threshold


@dataclass(frozen=True)
class StageVerdict:
    """One stage's verdict within a workload comparison."""

    stage: str
    verdict: str
    current: float
    history_median: float
    threshold: float


@dataclass
class WorkloadVerdict:
    """Noise-aware verdict for one workload of the candidate record."""

    key: str
    #: ``regressed`` / ``improved`` / ``unchanged`` / ``new``.
    verdict: str
    current_median: float
    history_median: float | None = None
    threshold: float | None = None
    #: Per-stage attribution, in stage order.
    stages: list[StageVerdict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ratio(self) -> float | None:
        """Current/history median ratio (>1 means slower)."""
        if not self.history_median:
            return None
        return self.current_median / self.history_median

    def attribution(self) -> str:
        """Compact per-stage story, e.g. ``match regressed, rest unchanged``.

        Stages contributing under a millisecond are skipped — attribution
        noise, not signal.
        """
        moved = [
            f"{s.stage} {s.verdict}"
            for s in self.stages
            if s.verdict != "unchanged"
            and max(s.current, s.history_median) >= 1e-3
        ]
        if not moved:
            return "all stages unchanged"
        return ", ".join(moved) + ", rest unchanged"

    def render(self) -> str:
        """One human-readable verdict line."""
        if self.verdict == "new":
            return (
                f"{self.key}: new (no history; "
                f"median {self.current_median:.4f}s)"
            )
        ratio = self.ratio
        line = (
            f"{self.key}: {self.verdict} "
            f"(median {self.current_median:.4f}s vs {self.history_median:.4f}s"
            f" ±{self.threshold:.4f}s"
        )
        if ratio is not None:
            line += f", {ratio:.2f}x"
        line += f") — {self.attribution()}"
        for note in self.notes:
            line += f"\n    note: {note}"
        return line


@dataclass
class TrajectoryComparison:
    """The gate's full output: verdicts, drift flags, comparability."""

    verdicts: list[WorkloadVerdict] = field(default_factory=list)
    #: Fingerprint mismatches etc. — when non-empty, treat verdicts as
    #: advisory (the environments are not comparable).
    warnings: list[str] = field(default_factory=list)
    #: Workload key → ``drifted``/``stable`` for stored rank-agreement.
    drift: dict[str, str] = field(default_factory=dict)

    @property
    def regressed(self) -> list[WorkloadVerdict]:
        """Workloads whose median escaped the band upward."""
        return [v for v in self.verdicts if v.verdict == "regressed"]

    @property
    def improved(self) -> list[WorkloadVerdict]:
        """Workloads whose median escaped the band downward."""
        return [v for v in self.verdicts if v.verdict == "improved"]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and the cost model didn't drift."""
        return not self.regressed and "drifted" not in self.drift.values()

    def render(self) -> str:
        """The multi-line report ``bench compare`` prints."""
        lines = []
        for warning in self.warnings:
            lines.append(f"! {warning}")
        for verdict in self.verdicts:
            lines.append(verdict.render())
        for key, state in sorted(self.drift.items()):
            if state == "drifted":
                lines.append(
                    f"{key}: cost-model rank agreement drifted (see notes)"
                )
        if not self.verdicts:
            lines.append("(no workloads to compare)")
        summary = (
            f"# {len(self.regressed)} regressed, {len(self.improved)} improved, "
            f"{sum(1 for v in self.verdicts if v.verdict == 'unchanged')} "
            f"unchanged, "
            f"{sum(1 for v in self.verdicts if v.verdict == 'new')} new"
        )
        lines.append(summary)
        return "\n".join(lines)


def _history_for(
    key: str, history: Sequence[BenchRecord]
) -> list[WorkloadStats]:
    return [r.workloads[key] for r in history if key in r.workloads]


def compare_to_history(
    candidate: BenchRecord,
    history: Sequence[BenchRecord],
    k: float = DEFAULT_K,
    floor_frac: float = DEFAULT_FLOOR_FRAC,
    drift_tolerance: float = DEFAULT_DRIFT_TOLERANCE,
) -> TrajectoryComparison:
    """Gate ``candidate`` against the stored trajectory.

    ``k`` scales the acceptance band (median ± k·MAD), ``floor_frac``
    is the relative noise floor, and ``drift_tolerance`` is the absolute
    rank-agreement drop that flags cost-model drift. Records in
    ``history`` that postdate the candidate (seq ≥ candidate's) are
    ignored, so passing the whole store is safe.
    """
    history = [r for r in history if r.seq < candidate.seq or candidate.seq <= 0]
    comparison = TrajectoryComparison()
    if history:
        mismatches = candidate.fingerprint.mismatches(history[-1].fingerprint)
        if mismatches:
            comparison.warnings.append(
                "environment fingerprint mismatch vs latest history record "
                f"({'; '.join(mismatches)}) — verdicts are advisory"
            )

    for key, stats in sorted(candidate.workloads.items()):
        past = _history_for(key, history)
        if not past:
            comparison.verdicts.append(
                WorkloadVerdict(
                    key=key,
                    verdict="new",
                    current_median=stats.morphed.median,
                )
            )
            continue
        verdict_str, hist_median, threshold = _classify(
            stats.morphed.median,
            [p.morphed.median for p in past],
            [p.morphed.mad for p in past],
            k,
            floor_frac,
        )
        verdict = WorkloadVerdict(
            key=key,
            verdict=verdict_str,
            current_median=stats.morphed.median,
            history_median=hist_median,
            threshold=threshold,
        )
        for stage in _STAGES:
            if stage not in stats.stage_seconds:
                continue
            stage_history = [
                p.stage_seconds[stage]
                for p in past
                if stage in p.stage_seconds
            ]
            if not stage_history:
                continue
            stage_verdict, stage_hist, stage_threshold = _classify(
                stats.stage_seconds[stage], stage_history, [], k, floor_frac
            )
            verdict.stages.append(
                StageVerdict(
                    stage=stage,
                    verdict=stage_verdict,
                    current=stats.stage_seconds[stage],
                    history_median=stage_hist,
                    threshold=stage_threshold,
                )
            )

        past_agreements = [
            p.rank_agreement for p in past if p.rank_agreement is not None
        ]
        if stats.rank_agreement is not None and past_agreements:
            baseline = median(past_agreements)
            if stats.rank_agreement < baseline - drift_tolerance:
                comparison.drift[key] = "drifted"
                verdict.notes.append(
                    "cost-model drift: rank agreement "
                    f"{stats.rank_agreement:.2f} vs historical "
                    f"{baseline:.2f} (tolerance {drift_tolerance:.2f})"
                )
            else:
                comparison.drift[key] = "stable"
        comparison.verdicts.append(verdict)
    return comparison
