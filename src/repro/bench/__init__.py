"""Benchmark harness, trajectory store and regression gate.

Three layers, bottom up:

* :mod:`repro.bench.harness` measures one workload *now* —
  :func:`compare_workload` runs the baseline and morphed sides,
  asserts equal results, and emits a :class:`ComparisonRow` with
  per-stage seconds, set-op counters and per-run peak-RSS deltas.
* :mod:`repro.bench.trajectory` remembers — repeated-trial rows
  condense into a schema-versioned :class:`BenchRecord` persisted as
  ``BENCH_<seq>.json`` at the repo root, with robust statistics
  (median/MAD/IQR), an environment fingerprint, and the cost model's
  rank-agreement summary.
* :mod:`repro.bench.regress` judges — :func:`compare_to_history` gates
  a fresh record against the stored trajectory with noise-aware
  verdicts, per-stage attribution and cost-model drift detection.

CLI: ``python -m repro.cli bench record`` / ``bench compare``.
Dashboard: ``python tools/render_bench_report.py`` → ``docs/benchmarks.md``.
"""

from repro.bench.harness import (
    BreakdownRow,
    ComparisonRow,
    FigureReport,
    breakdown_row,
    compare_workload,
    peak_rss_kib,
    timed,
)
from repro.bench.regress import (
    StageVerdict,
    TrajectoryComparison,
    WorkloadVerdict,
    compare_to_history,
)
from repro.bench.reporting import breakdown_chart, comparison_table, speedup_chart
from repro.bench.trajectory import (
    BenchRecord,
    EnvFingerprint,
    TrialSummary,
    WorkloadStats,
    collect_record,
    collect_serve_stats,
    iqr,
    list_record_paths,
    load_record,
    load_trajectory,
    mad,
    median,
    next_seq,
    record_suite,
    save_record,
    workload_key,
)

__all__ = [
    "BenchRecord",
    "BreakdownRow",
    "ComparisonRow",
    "EnvFingerprint",
    "FigureReport",
    "StageVerdict",
    "TrajectoryComparison",
    "TrialSummary",
    "WorkloadStats",
    "WorkloadVerdict",
    "breakdown_chart",
    "breakdown_row",
    "collect_record",
    "collect_serve_stats",
    "compare_to_history",
    "compare_workload",
    "comparison_table",
    "iqr",
    "list_record_paths",
    "load_record",
    "load_trajectory",
    "mad",
    "median",
    "next_seq",
    "peak_rss_kib",
    "record_suite",
    "save_record",
    "speedup_chart",
    "timed",
    "workload_key",
]
