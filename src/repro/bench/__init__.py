"""Benchmark harness utilities shared by the per-figure benchmarks."""
