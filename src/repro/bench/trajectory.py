"""Benchmark trajectory store: the repo's performance memory across PRs.

One :class:`BenchRecord` is one longitudinal data point — a
schema-versioned JSON file named ``BENCH_<seq>.json`` at the repo root,
carrying an environment fingerprint (git sha, python/numpy versions,
CPU count), repeated-trial robust statistics (median, MAD, IQR) per
workload, and the per-stage seconds / set-op counters / peak-RSS
columns :class:`~repro.bench.harness.ComparisonRow` already reports.
The stored trajectory is what lets :mod:`repro.bench.regress` tell a
real regression from run-to-run noise — the paper's §7 speedup claims
(1.2–34×) are longitudinal claims, and without a trajectory nothing can
say whether a future change quietly erodes them.

Producers of records:

* ``python -m repro.cli bench record`` — the standing suite
  (:func:`record_suite`), repeated-trial, written at the repo root;
* ``python benchmarks/run_all.py --record PATH`` — the figure harness's
  rows, same schema, single-trial.

Statistics here are *robust* by design: the median ignores a slow
outlier trial, and the MAD/IQR quantify the noise the regression gate
must tolerate. All helpers are pure (no wall clock), so synthetic
histories in tests are fully deterministic.
"""

from __future__ import annotations

import json
import os
import platform as _platform_mod
import re
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.bench.harness import ComparisonRow

__all__ = [
    "BenchRecord",
    "EnvFingerprint",
    "TrialSummary",
    "WorkloadStats",
    "collect_record",
    "collect_serve_stats",
    "list_record_paths",
    "load_record",
    "load_trajectory",
    "mad",
    "median",
    "next_seq",
    "iqr",
    "record_suite",
    "save_record",
    "workload_key",
]

#: Stamped into every record; readers reject files from the future.
SCHEMA_VERSION = 1

_RECORD_RE = re.compile(r"^BENCH_(\d+)\.json$")


# -- robust statistics (pure; synthetic-history tests rely on this) --------


def median(samples: Sequence[float]) -> float:
    """Median of ``samples`` (mean of the middle pair for even counts)."""
    if not samples:
        raise ValueError("median of empty sample set")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(samples: Sequence[float]) -> float:
    """Median absolute deviation — the robust noise scale the gate uses."""
    center = median(samples)
    return median([abs(x - center) for x in samples])


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sequence."""
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def iqr(samples: Sequence[float]) -> float:
    """Interquartile range (Q3 − Q1, linear interpolation)."""
    if not samples:
        raise ValueError("iqr of empty sample set")
    ordered = sorted(samples)
    return _quantile(ordered, 0.75) - _quantile(ordered, 0.25)


# -- schema ----------------------------------------------------------------


@dataclass(frozen=True)
class TrialSummary:
    """Robust statistics over one scalar's repeated trials."""

    median: float
    mad: float
    iqr: float
    best: float
    worst: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TrialSummary":
        """Summarize raw per-trial samples."""
        return cls(
            median=median(samples),
            mad=mad(samples),
            iqr=iqr(samples),
            best=min(samples),
            worst=max(samples),
        )

    def to_json(self) -> dict[str, float]:
        """Flat JSON form."""
        return {
            "median": self.median,
            "mad": self.mad,
            "iqr": self.iqr,
            "best": self.best,
            "worst": self.worst,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "TrialSummary":
        """Inverse of :meth:`to_json`."""
        return cls(
            median=float(record["median"]),
            mad=float(record["mad"]),
            iqr=float(record["iqr"]),
            best=float(record["best"]),
            worst=float(record["worst"]),
        )


@dataclass(frozen=True)
class EnvFingerprint:
    """Where a record was measured — the comparability check's input.

    ``git_sha`` identifies the code under test (expected to differ
    between records); the remaining fields describe the machine and
    toolchain, and a mismatch there makes cross-record verdicts
    advisory (:meth:`mismatches`).
    """

    git_sha: str
    python: str
    numpy: str
    platform: str
    cpu_count: int

    @classmethod
    def capture(cls) -> "EnvFingerprint":
        """Fingerprint the current process's environment."""
        try:
            sha = (
                subprocess.run(
                    ["git", "rev-parse", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=10,
                    cwd=os.path.dirname(os.path.abspath(__file__)),
                ).stdout.strip()
                or "unknown"
            )
        except OSError:
            sha = "unknown"
        try:
            import numpy

            numpy_version = numpy.__version__
        except ImportError:  # pragma: no cover - numpy is a hard dep
            numpy_version = "absent"
        return cls(
            git_sha=sha,
            python=sys.version.split()[0],
            numpy=numpy_version,
            platform=f"{_platform_mod.system()}-{_platform_mod.machine()}",
            cpu_count=os.cpu_count() or 1,
        )

    def mismatches(self, other: "EnvFingerprint") -> list[str]:
        """Human-readable differences that break timing comparability.

        ``git_sha`` is deliberately excluded — records from different
        commits are the whole point of a trajectory.
        """
        out = []
        for fld in ("python", "numpy", "platform", "cpu_count"):
            mine, theirs = getattr(self, fld), getattr(other, fld)
            if mine != theirs:
                out.append(f"{fld}: {mine} vs {theirs}")
        return out

    def to_json(self) -> dict[str, Any]:
        """Flat JSON form."""
        return {
            "git_sha": self.git_sha,
            "python": self.python,
            "numpy": self.numpy,
            "platform": self.platform,
            "cpu_count": self.cpu_count,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "EnvFingerprint":
        """Inverse of :meth:`to_json`."""
        return cls(
            git_sha=str(record.get("git_sha", "unknown")),
            python=str(record.get("python", "unknown")),
            numpy=str(record.get("numpy", "unknown")),
            platform=str(record.get("platform", "unknown")),
            cpu_count=int(record.get("cpu_count", 1)),
        )


#: Counter columns copied off the morphed run's ``EngineStats``.
_COUNTER_FIELDS = (
    "intersections",
    "differences",
    "galloped",
    "elements_scanned",
)


def workload_key(workload: str, graph: str) -> str:
    """Stable per-workload key: ``workload@graph``."""
    return f"{workload}@{graph}"


@dataclass
class WorkloadStats:
    """One workload's longitudinal columns inside a record."""

    workload: str
    graph: str
    trials: int
    workers: int
    #: Robust stats over the morphed run's total seconds per trial.
    morphed: TrialSummary
    #: Same for the unmorphed baseline run.
    baseline: TrialSummary
    #: Median per-stage seconds of the morphed run (transform / match /
    #: convert / executor — the ComparisonRow stage columns).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Median set-op counters of the morphed run.
    counters: dict[str, float] = field(default_factory=dict)
    #: Process high-water mark (max over trials), plus per-run deltas.
    peak_rss_kib: int = 0
    baseline_rss_delta_kib: int = 0
    morphed_rss_delta_kib: int = 0
    #: Cost-model audit summary: predicted-vs-measured rank concordance
    #: (:func:`repro.observe.rank_agreement`) when a trial was traced.
    rank_agreement: float | None = None

    @property
    def key(self) -> str:
        """The workload's trajectory key (``workload@graph``)."""
        return workload_key(self.workload, self.graph)

    @property
    def speedup(self) -> float:
        """Median-over-median morphed speedup."""
        if self.morphed.median <= 0:
            return float("inf")
        return self.baseline.median / self.morphed.median

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[ComparisonRow],
        rank_agreement: float | None = None,
    ) -> "WorkloadStats":
        """Condense repeated :class:`ComparisonRow` trials of one workload."""
        if not rows:
            raise ValueError("WorkloadStats needs at least one trial row")
        first = rows[0]
        if any(
            (r.workload, r.graph) != (first.workload, first.graph) for r in rows
        ):
            raise ValueError("trial rows mix workloads")
        stage_seconds = {
            stage: median([getattr(r, f"{stage}_seconds") for r in rows])
            for stage in ("transform", "match", "convert", "executor")
        }
        counters = {
            f"setops.{name}": median(
                [float(getattr(r.morphed_stats.setops, name)) for r in rows]
            )
            for name in _COUNTER_FIELDS
        }
        counters["setops.seconds"] = median(
            [r.morphed_stats.setops.seconds for r in rows]
        )
        counters["matches"] = median(
            [float(r.morphed_stats.matches) for r in rows]
        )
        return cls(
            workload=first.workload,
            graph=first.graph,
            trials=len(rows),
            workers=first.workers,
            morphed=TrialSummary.from_samples([r.morphed_seconds for r in rows]),
            baseline=TrialSummary.from_samples(
                [r.baseline_seconds for r in rows]
            ),
            stage_seconds=stage_seconds,
            counters=counters,
            peak_rss_kib=max(r.peak_rss_kib for r in rows),
            baseline_rss_delta_kib=max(r.baseline_rss_delta_kib for r in rows),
            morphed_rss_delta_kib=max(r.morphed_rss_delta_kib for r in rows),
            rank_agreement=rank_agreement,
        )

    def to_json(self) -> dict[str, Any]:
        """Flat JSON form."""
        return {
            "workload": self.workload,
            "graph": self.graph,
            "trials": self.trials,
            "workers": self.workers,
            "morphed": self.morphed.to_json(),
            "baseline": self.baseline.to_json(),
            "stage_seconds": dict(self.stage_seconds),
            "counters": dict(self.counters),
            "peak_rss_kib": self.peak_rss_kib,
            "baseline_rss_delta_kib": self.baseline_rss_delta_kib,
            "morphed_rss_delta_kib": self.morphed_rss_delta_kib,
            "rank_agreement": self.rank_agreement,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "WorkloadStats":
        """Inverse of :meth:`to_json`."""
        ra = record.get("rank_agreement")
        return cls(
            workload=str(record["workload"]),
            graph=str(record["graph"]),
            trials=int(record["trials"]),
            workers=int(record.get("workers", 1)),
            morphed=TrialSummary.from_json(record["morphed"]),
            baseline=TrialSummary.from_json(record["baseline"]),
            stage_seconds={
                k: float(v) for k, v in record.get("stage_seconds", {}).items()
            },
            counters={
                k: float(v) for k, v in record.get("counters", {}).items()
            },
            peak_rss_kib=int(record.get("peak_rss_kib", 0)),
            baseline_rss_delta_kib=int(record.get("baseline_rss_delta_kib", 0)),
            morphed_rss_delta_kib=int(record.get("morphed_rss_delta_kib", 0)),
            rank_agreement=float(ra) if ra is not None else None,
        )


@dataclass
class BenchRecord:
    """One trajectory point: every workload's stats plus provenance."""

    seq: int
    created: str
    fingerprint: EnvFingerprint
    workloads: dict[str, WorkloadStats] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[ComparisonRow],
        seq: int = 0,
        meta: Mapping[str, Any] | None = None,
        rank_agreements: Mapping[str, float] | None = None,
        fingerprint: EnvFingerprint | None = None,
    ) -> "BenchRecord":
        """Group trial rows by workload and condense each group.

        ``rank_agreements`` maps :func:`workload_key` keys to the traced
        trial's predicted-vs-measured concordance, where available.
        """
        groups: dict[str, list[ComparisonRow]] = {}
        for row in rows:
            groups.setdefault(workload_key(row.workload, row.graph), []).append(
                row
            )
        ras = dict(rank_agreements or {})
        return cls(
            seq=seq,
            created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            fingerprint=fingerprint or EnvFingerprint.capture(),
            workloads={
                key: WorkloadStats.from_rows(group, ras.get(key))
                for key, group in sorted(groups.items())
            },
            meta=dict(meta or {}),
        )

    def to_json(self) -> dict[str, Any]:
        """Flat JSON form (what ``BENCH_<seq>.json`` holds)."""
        return {
            "schema_version": self.schema_version,
            "seq": self.seq,
            "created": self.created,
            "fingerprint": self.fingerprint.to_json(),
            "workloads": {
                key: stats.to_json() for key, stats in self.workloads.items()
            },
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "BenchRecord":
        """Inverse of :meth:`to_json`; rejects future schema versions."""
        version = int(record.get("schema_version", 0))
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"BENCH record has schema_version={version}, this build "
                f"reads up to {SCHEMA_VERSION} — update the repo"
            )
        return cls(
            seq=int(record["seq"]),
            created=str(record.get("created", "")),
            fingerprint=EnvFingerprint.from_json(record.get("fingerprint", {})),
            workloads={
                key: WorkloadStats.from_json(stats)
                for key, stats in record.get("workloads", {}).items()
            },
            meta=dict(record.get("meta", {})),
            schema_version=version,
        )

    def write(self, path) -> Path:
        """Write this record to ``path`` as pretty-printed JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


# -- the store (BENCH_<seq>.json files at the repo root) -------------------


def list_record_paths(root=".") -> list[Path]:
    """All ``BENCH_<seq>.json`` files under ``root``, in sequence order."""
    root = Path(root)
    found = []
    if root.is_dir():
        for path in root.iterdir():
            match = _RECORD_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
    return [path for _seq, path in sorted(found)]


def next_seq(root=".") -> int:
    """The next free sequence number in ``root`` (1-based)."""
    paths = list_record_paths(root)
    if not paths:
        return 1
    return max(int(_RECORD_RE.match(p.name).group(1)) for p in paths) + 1


def save_record(record: BenchRecord, root=".") -> Path:
    """Persist ``record`` as ``BENCH_<seq>.json`` under ``root``.

    A ``seq`` of 0 (the "unassigned" default) is replaced by the next
    free number in the store.
    """
    root = Path(root)
    if record.seq <= 0:
        record.seq = next_seq(root)
    return record.write(root / f"BENCH_{record.seq:04d}.json")


def load_record(path) -> BenchRecord:
    """Read one record file back."""
    return BenchRecord.from_json(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def load_trajectory(root=".") -> list[BenchRecord]:
    """Every stored record under ``root``, oldest first."""
    return [load_record(path) for path in list_record_paths(root)]


# -- the standing record suite ---------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One standing workload of the ``bench record`` suite."""

    name: str
    engine: Callable[[], Any]
    graph: Callable[[], Any]
    patterns: Callable[[], list]
    #: Batched-frontier chunk size for both legs (None = per-root DFS).
    batch_roots: int | None = None


def record_suite(quick: bool = False) -> list[WorkloadSpec]:
    """The standing workloads ``bench record`` measures.

    Deliberately small (the suite runs on every PR): motif counting on
    the MiCo stand-in across two engines, plus the Filter-UDF workload
    that exercises the vertex-induced conversion path. ``quick`` keeps
    the two cheapest. All standing workloads run the batched-frontier
    kernels (``batch_roots=2048``, the production recommendation), so
    the stored trajectory gates the path users actually run.
    """
    from repro.core.atlas import (
        EVALUATION_PATTERNS,
        FOUR_STAR,
        TAILED_TRIANGLE,
        motif_patterns,
    )
    from repro.engines.frontier import DEFAULT_BATCH_ROOTS
    from repro.engines.graphpi.engine import GraphPiEngine
    from repro.engines.peregrine.engine import PeregrineEngine
    from repro.graph import datasets

    specs = [
        WorkloadSpec(
            "peregrine/3-MC",
            PeregrineEngine,
            datasets.mico,
            lambda: list(motif_patterns(3)),
            batch_roots=DEFAULT_BATCH_ROOTS,
        ),
        WorkloadSpec(
            "graphpi/TT+4S-V",
            GraphPiEngine,
            datasets.mico,
            lambda: [
                TAILED_TRIANGLE.vertex_induced(),
                FOUR_STAR.vertex_induced(),
            ],
            batch_roots=DEFAULT_BATCH_ROOTS,
        ),
    ]
    if not quick:
        specs += [
            WorkloadSpec(
                "peregrine/4-MC",
                PeregrineEngine,
                datasets.mico,
                lambda: list(motif_patterns(4)),
                batch_roots=DEFAULT_BATCH_ROOTS,
            ),
            WorkloadSpec(
                "peregrine/p1-V",
                PeregrineEngine,
                datasets.mico,
                lambda: [EVALUATION_PATTERNS["p1"].vertex_induced()],
                batch_roots=DEFAULT_BATCH_ROOTS,
            ),
        ]
    return specs


def collect_serve_stats(
    trials: int = 3,
    quick: bool = False,
    log: Callable[[str], None] | None = None,
) -> WorkloadStats:
    """Measure served-query latency and condense it to workload columns.

    A threadless :class:`~repro.serve.MiningServer` answers a burst of
    3-motif queries per trial (result cache off, so every query goes
    through the full session path); the baseline column is a bare
    :class:`~repro.morph.session.MorphingSession` given the *same*
    persistent plan/measurement caches the daemon holds, so the
    ``baseline/morphed`` ratio isolates the dispatch+observability
    envelope rather than the resident caches' advantage. On cache-warm
    sub-millisecond queries that envelope dominates (served ≈ a few ×
    bare); the trajectory watches it for drift, not for speedup.
    The daemon's own streaming histograms supply the quantile columns —
    ``serve.latency.total.p50/p90/p99`` and friends land in the
    free-form ``counters`` dict, so ``bench compare`` carries them
    across PRs without a schema bump.
    """
    from repro.core.atlas import motif_patterns
    from repro.core.parser import format_pattern
    from repro.engines.peregrine.engine import PeregrineEngine
    from repro.graph import datasets
    from repro.morph.cache import MeasurementCache, PlanCache
    from repro.morph.session import MorphingSession
    from repro.serve import GraphRegistry, MiningServer

    if trials < 1:
        raise ValueError("trials must be >= 1")
    graph = datasets.mico()
    patterns = list(motif_patterns(3))
    texts = [format_pattern(p) for p in patterns]
    queries_per_trial = 2 if quick else 4
    if log is not None:
        log(
            f"measuring serve/3-MC-latency on {graph.name} "
            f"({trials} trials x {queries_per_trial} queries)"
        )

    registry = GraphRegistry(share=False)
    registry.add(graph.name, graph)
    server = MiningServer(registry=registry)
    import time as _time

    served_samples: list[float] = []
    bare_samples: list[float] = []
    try:
        request = {
            "op": "run",
            "graph": graph.name,
            "patterns": texts,
            "use_result_cache": False,
        }
        server.handle(dict(request))  # warm plan cache + import paths
        bare_session = MorphingSession(
            PeregrineEngine(),
            enabled=True,
            cache=MeasurementCache(),
            plan_cache=PlanCache(),
        )
        bare_session.run(graph, patterns)  # warm its caches identically
        for _ in range(trials):
            start = _time.perf_counter()
            for _ in range(queries_per_trial):
                response = server.handle(dict(request))
                if not response.get("ok"):
                    raise RuntimeError(
                        f"serve workload query failed: {response.get('error')}"
                    )
            served_samples.append(
                (_time.perf_counter() - start) / queries_per_trial
            )
            start = _time.perf_counter()
            for _ in range(queries_per_trial):
                bare_session.run(graph, patterns)
            bare_samples.append(
                (_time.perf_counter() - start) / queries_per_trial
            )
        histograms = server.metrics.histogram_snapshots()
    finally:
        server.close()

    counters: dict[str, float] = {}
    for name in (
        "serve.latency.total",
        "serve.latency.queue_wait",
        "serve.latency.first_result",
    ):
        summary = histograms.get(name, {})
        for quantile in ("p50", "p90", "p99", "max"):
            if quantile in summary:
                counters[f"{name}.{quantile}"] = float(summary[quantile])
    stage_seconds = {
        stage: float(
            histograms.get(f"serve.stage.{stage}.peregrine", {}).get("p50", 0.0)
        )
        for stage in ("plan", "match", "convert")
    }
    return WorkloadStats(
        workload="serve/3-MC-latency",
        graph=graph.name,
        trials=trials,
        workers=1,
        morphed=TrialSummary.from_samples(served_samples),
        baseline=TrialSummary.from_samples(bare_samples),
        stage_seconds=stage_seconds,
        counters=counters,
    )


def collect_record(
    trials: int = 3,
    quick: bool = False,
    suite: Sequence[WorkloadSpec] | None = None,
    meta: Mapping[str, Any] | None = None,
    log: Callable[[str], None] | None = None,
    serve: bool = True,
) -> BenchRecord:
    """Measure the record suite and build the (unsaved) record.

    Each workload runs ``trials`` times through
    :func:`~repro.bench.harness.compare_workload`; the first trial is
    traced so the record stores the cost model's rank-agreement summary
    (the drift signal :mod:`repro.bench.regress` watches). With
    ``serve`` (the default) the record also carries the
    :func:`collect_serve_stats` served-latency workload, whose columns
    are the daemon's own histogram quantiles.
    """
    from repro.bench.harness import compare_workload
    from repro.observe.audit import rank_agreement

    if trials < 1:
        raise ValueError("trials must be >= 1")
    suite = list(suite) if suite is not None else record_suite(quick)
    rows: list[ComparisonRow] = []
    agreements: dict[str, float] = {}
    for spec in suite:
        graph = spec.graph()
        patterns = spec.patterns()
        if log is not None:
            log(f"measuring {spec.name} on {graph.name} ({trials} trials)")
        for trial in range(trials):
            row = compare_workload(
                spec.engine,
                graph,
                patterns,
                workload=spec.name,
                trace=trial == 0,
                batch_roots=spec.batch_roots,
            )
            if row.morphed_trace is not None:
                agreement = rank_agreement(row.morphed_trace.audits)
                if agreement is not None:
                    agreements[workload_key(row.workload, row.graph)] = (
                        agreement
                    )
                row.morphed_trace = None  # the record keeps the summary only
            rows.append(row)
    full_meta = {"source": "bench-record", "quick": quick, "trials": trials}
    full_meta.update(meta or {})
    record = BenchRecord.from_rows(
        rows, meta=full_meta, rank_agreements=agreements
    )
    if serve:
        stats = collect_serve_stats(trials=trials, quick=quick, log=log)
        record.workloads[stats.key] = stats
    return record
