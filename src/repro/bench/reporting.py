"""Terminal rendering for benchmark reports: the figures, as text.

The paper's evaluation figures are bar charts of per-workload speedups
with absolute times printed above the bars; ``speedup_chart`` renders the
same information as unicode bars so ``run_all.py`` output reads like the
figures it regenerates. ``breakdown_chart`` renders Figure 4-style
stacked percentage rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """A horizontal bar of ``value`` against ``scale`` with ⅛-cell detail."""
    if scale <= 0:
        return ""
    cells = max(0.0, min(1.0, value / scale)) * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    bar = "█" * full
    if remainder and full < width:
        bar += _BLOCKS[remainder]
    return bar


def speedup_chart(
    rows: Iterable[tuple[str, float]],
    title: str = "",
    width: int = 40,
    baseline_marker: float = 1.0,
) -> str:
    """Figure 12/13/14-style speedup bars.

    ``rows`` are ``(label, speedup)`` pairs. A tick marks 1.0× (parity);
    bars shorter than the tick mean the morphed run was slower.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    scale = max(max(s for _l, s in rows), baseline_marker) * 1.05
    label_width = max(len(label) for label, _s in rows)
    tick = int(round(baseline_marker / scale * width))
    lines = [title] if title else []
    for label, speedup in rows:
        bar = _bar(speedup, scale, width)
        # Overlay the parity tick on the bar.
        padded = bar.ljust(width)
        if 0 <= tick < width:
            marker = "┃" if len(bar) <= tick else "╋"
            padded = padded[:tick] + marker + padded[tick + 1 :]
        lines.append(f"{label:<{label_width}} │{padded}│ {speedup:5.2f}x")
    lines.append(f"{'':<{label_width}}  {'':<{tick}}└ 1.0x")
    return "\n".join(lines)


def breakdown_chart(
    rows: Iterable[tuple[str, dict[str, float]]],
    categories: Sequence[str] = ("setops", "udf", "filter", "other"),
    width: int = 40,
) -> str:
    """Figure 4-style stacked percentage bars.

    ``rows`` are ``(label, {category: percent})`` pairs; percents should
    sum to ~100 per row. Each category gets a distinct fill character.
    """
    fills = {"setops": "█", "udf": "▒", "filter": "▓", "other": "░"}
    rows = list(rows)
    if not rows:
        return "(no rows)"
    label_width = max(len(label) for label, _b in rows)
    lines = [
        "legend: " + "  ".join(f"{fills.get(c, '?')} {c}" for c in categories)
    ]
    for label, breakdown in rows:
        bar = ""
        used = 0
        for category in categories:
            share = breakdown.get(category, 0.0) / 100.0
            cells = int(round(share * width))
            cells = min(cells, width - used)
            bar += fills.get(category, "?") * cells
            used += cells
        bar = bar.ljust(width)
        total = breakdown.get("total", 0.0)
        lines.append(f"{label:<{label_width}} │{bar}│ {total:.2f}s")
    return "\n".join(lines)


def comparison_table(
    header: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain aligned text table (the CSV's human-readable sibling)."""
    rows = [list(map(str, row)) for row in rows]
    if not rows:
        return ",".join(header)
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
