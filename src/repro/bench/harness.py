"""Benchmark harness: run/compare workloads and report figure rows.

Mirrors the paper artifact's experiment scripts: every experiment emits
CSV-style rows ``pattern, graph, morphed_time, baseline_time, speedup,
workers`` (plus counter columns where the figure reports counters), and every row
asserts baseline == morphed results — the correctness half of claim C1.

Rows also carry the morphed run's per-stage breakdown (transform /
match / convert / executor seconds — the same timers the run's trace
spans report), so figure scripts can show where morphing's overhead
lives without re-running under a profiler. ``compare_workload(...,
trace=True)`` additionally attaches the full :class:`RunTrace` of the
morphed run to the row.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.aggregation import Aggregation
from repro.core.pattern import Pattern
from repro.engines.base import EngineStats, MiningEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession, MorphRunResult
from repro.observe.export import RunTrace
from repro.observe.tracer import Tracer


@dataclass
class ComparisonRow:
    """One figure row: a workload measured with and without morphing."""

    workload: str
    graph: str
    baseline_seconds: float
    morphed_seconds: float
    baseline_stats: EngineStats
    morphed_stats: EngineStats
    results_equal: bool
    morphed_patterns: int
    workers: int = 1
    #: Process high-water mark after both runs (``ru_maxrss``); kept for
    #: compatibility with older CSV consumers. Per-run attribution lives
    #: in the two delta columns below.
    peak_rss_kib: int = 0
    #: How much each run *raised* the process high-water mark, in KiB.
    #: ``ru_maxrss`` is monotonic, so a delta of 0 means the run fit in
    #: memory the process had already touched — the baseline run no
    #: longer pollutes the morphed row's attribution.
    baseline_rss_delta_kib: int = 0
    morphed_rss_delta_kib: int = 0
    #: Morphed run's per-stage seconds (identical to its trace spans).
    transform_seconds: float = 0.0
    match_seconds: float = 0.0
    convert_seconds: float = 0.0
    executor_seconds: float = 0.0
    #: The morphed run's trace when ``compare_workload(..., trace=True)``.
    morphed_trace: RunTrace | None = None

    @property
    def dominant_stage(self) -> str:
        """The morphed run's costliest stage (figure annotations)."""
        stages = {
            "transform": self.transform_seconds,
            "match": self.match_seconds,
            "convert": self.convert_seconds,
            "executor": self.executor_seconds,
        }
        return max(stages, key=stages.get)

    @property
    def speedup(self) -> float:
        if self.morphed_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.morphed_seconds

    @property
    def setop_reduction(self) -> float:
        """Figure 12c/d-style set-operation time reduction factor."""
        morphed = self.morphed_stats.setops.seconds
        if morphed <= 0:
            return float("inf")
        return self.baseline_stats.setops.seconds / morphed

    @property
    def branch_reduction(self) -> float:
        """Figure 14c/d-style branch-miss reduction factor."""
        baseline = self.baseline_stats.branch_misses
        morphed = self.morphed_stats.branch_misses
        if morphed <= 0:
            return float(baseline) if baseline else 1.0
        return baseline / morphed

    def csv(self) -> str:
        return (
            f"{self.workload},{self.graph},{self.morphed_seconds:.4f},"
            f"{self.baseline_seconds:.4f},{self.speedup:.2f},{self.workers},"
            f"{self.peak_rss_kib},{self.baseline_rss_delta_kib},"
            f"{self.morphed_rss_delta_kib},{self.transform_seconds:.4f},"
            f"{self.match_seconds:.4f},{self.convert_seconds:.4f},"
            f"{self.executor_seconds:.4f},{self.dominant_stage}"
        )


def compare_workload(
    engine_factory: Callable[[], MiningEngine],
    graph: DataGraph,
    patterns: Sequence[Pattern],
    workload: str,
    aggregation: Aggregation | None = None,
    workers: int = 1,
    trace: bool = False,
    batch_roots: int | None = None,
    strategy: str = "auto",
) -> ComparisonRow:
    """Run one workload with and without morphing; assert equal results.

    ``workers > 1`` shard-parallelizes both sessions; the comparison
    stays apples-to-apples and the row records the worker count.
    ``batch_roots`` switches *both* sessions to the vectorized
    batched-frontier kernels (so the morphing comparison itself stays
    apples-to-apples on the batched path too).
    ``trace=True`` traces the morphed run (spans + metrics + cost-model
    audits) and attaches the :class:`RunTrace` as ``row.morphed_trace``;
    the per-stage columns are populated either way from the run's own
    phase timers. ``strategy`` picks the morphed session's rewrite
    strategy (the baseline side never rewrites); equality is asserted
    for every strategy alike.
    """
    baseline_session = MorphingSession(
        engine_factory(),
        aggregation=aggregation,
        enabled=False,
        workers=workers,
        batch_roots=batch_roots,
    )
    morphed_session = MorphingSession(
        engine_factory(),
        aggregation=aggregation,
        enabled=True,
        strategy=strategy,
        workers=workers,
        tracer=Tracer() if trace else None,
        batch_roots=batch_roots,
    )
    rss_before = peak_rss_kib()
    baseline = baseline_session.run(graph, list(patterns))
    rss_after_baseline = peak_rss_kib()
    morphed = morphed_session.run(graph, list(patterns))
    peak_rss = peak_rss_kib()
    equal = _results_equal(baseline, morphed)
    assert equal, f"morphing changed results for {workload} on {graph.name}"
    morphed_count = (
        sum(morphed.selection.morphed.values()) if morphed.selection else 0
    )
    return ComparisonRow(
        workload=workload,
        graph=graph.name,
        baseline_seconds=baseline.total_seconds,
        morphed_seconds=morphed.total_seconds,
        baseline_stats=baseline.stats,
        morphed_stats=morphed.stats,
        results_equal=equal,
        morphed_patterns=morphed_count,
        workers=workers,
        peak_rss_kib=peak_rss,
        baseline_rss_delta_kib=max(0, rss_after_baseline - rss_before),
        morphed_rss_delta_kib=max(0, peak_rss - rss_after_baseline),
        transform_seconds=morphed.transform_seconds,
        match_seconds=morphed.match_seconds,
        convert_seconds=morphed.convert_seconds,
        executor_seconds=morphed.executor_seconds,
        morphed_trace=morphed.trace,
    )


def peak_rss_kib() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is a high-water mark, so a row records the largest
    footprint seen up to and including its run — enough to catch a
    storage-layer regression (e.g. an accidental adjacency copy) in CI
    without any sampling machinery. :func:`compare_workload` samples it
    before and after each run and records per-run *deltas* alongside,
    so the baseline run's footprint does not pollute the morphed row.
    Linux reports KiB; macOS reports bytes and is normalized here.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _results_equal(a: MorphRunResult, b: MorphRunResult) -> bool:
    if set(a.results) != set(b.results):
        return False
    return all(a.results[k] == b.results[k] for k in a.results)


@dataclass
class FigureReport:
    """Collects rows for one paper figure and renders the summary."""

    figure: str
    description: str
    rows: list[ComparisonRow] = field(default_factory=list)
    extra_columns: dict[str, Callable[[ComparisonRow], Any]] = field(
        default_factory=dict
    )

    def add(self, row: ComparisonRow) -> None:
        self.rows.append(row)

    def render(self) -> str:
        lines = [f"# {self.figure}: {self.description}"]
        header = (
            "workload,graph,morphed_s,baseline_s,speedup,workers,peak_rss_kib,"
            "baseline_rss_delta_kib,morphed_rss_delta_kib,"
            "transform_s,match_s,convert_s,executor_s,dominant_stage"
        )
        if self.extra_columns:
            header += "," + ",".join(self.extra_columns)
        lines.append(header)
        for row in self.rows:
            line = row.csv()
            for fn in self.extra_columns.values():
                value = fn(row)
                line += f",{value:.2f}" if isinstance(value, float) else f",{value}"
            lines.append(line)
        return "\n".join(lines)

    @property
    def geometric_mean_speedup(self) -> float:
        if not self.rows:
            return 1.0
        product = 1.0
        for row in self.rows:
            product *= max(row.speedup, 1e-9)
        return product ** (1.0 / len(self.rows))

    @property
    def max_speedup(self) -> float:
        return max((row.speedup for row in self.rows), default=1.0)


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` once and return (result, seconds)."""
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


@dataclass(frozen=True)
class BreakdownRow:
    """Figure 4-style percentage breakdown of one run's time.

    Percentages of ``total`` wall seconds per cost category; ``other``
    is the unattributed remainder, clamped at zero.
    """

    label: str
    setops: float
    udf: float
    filter: float
    other: float
    total: float

    def as_dict(self) -> dict[str, Any]:
        """Flat mapping view (chart input, ``benchmark.extra_info``)."""
        return {
            "label": self.label,
            "setops": self.setops,
            "udf": self.udf,
            "filter": self.filter,
            "other": self.other,
            "total": self.total,
        }


def breakdown_row(
    label: str, stats: EngineStats, total: float | None = None
) -> BreakdownRow:
    """Build the Figure 4-style :class:`BreakdownRow` for one run."""
    total = total if total is not None else stats.total_seconds
    if total <= 0:
        return BreakdownRow(label, 0.0, 0.0, 0.0, 0.0, 0.0)
    return BreakdownRow(
        label=label,
        setops=100.0 * stats.setops.seconds / total,
        udf=100.0 * stats.udf_seconds / total,
        filter=100.0 * stats.filter_seconds / total,
        other=max(
            0.0,
            100.0
            * (total - stats.setops.seconds - stats.udf_seconds - stats.filter_seconds)
            / total,
        ),
        total=total,
    )
