"""Shard-level checkpoint journal: interrupt a run, resume without rework.

A :class:`ShardCheckpoint` is a JSONL file following the
:mod:`repro.observe.export` conventions — a schema-versioned ``meta``
line, then one self-contained JSON object per record — holding every
**completed shard result** of a run. Records are flushed as each shard
finishes, so a run killed at any point leaves a valid journal; resuming
with the same checkpoint path skips every journaled shard (visible as
``shard.checkpoint`` tracer spans) and recomputes only what is missing.

Record layout::

    {"type": "meta", "format_version": 1, "graph": ..., "num_vertices":
     ..., "num_edges": ..., "engine": ..., "aggregation": ...}
    {"type": "shard", "key": "<pattern key>", "lo": 0, "hi": 17,
     "index": 0, "value": "<base64 pickle>", "stats": "<base64 pickle>",
     "sha256": "<digest of value+stats payloads>"}

Shard values (MNI tables, match lists) and :class:`EngineStats` are not
JSON-native, so both ship as base64-wrapped pickles guarded by a
SHA-256 digest: a tampered or truncated record fails the digest check
and is **dropped with a warning** (the shard is recomputed) rather than
poisoning the resumed run. A meta line that disagrees with the resuming
run's configuration raises :class:`repro.errors.CheckpointError` — a
checkpoint never silently mixes two different runs.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import warnings
from typing import Any

from repro.errors import CheckpointError

__all__ = ["CHECKPOINT_FORMAT_VERSION", "ShardCheckpoint"]

#: Format version stamped into (and required of) every journal's meta line.
CHECKPOINT_FORMAT_VERSION = 1

#: Meta fields that must match between the journal and the resuming run.
_IDENTITY_FIELDS = ("graph", "num_vertices", "num_edges", "engine", "aggregation")


def _pack(obj: Any) -> str:
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def _unpack(payload: str) -> Any:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


def _digest(value_payload: str, stats_payload: str) -> str:
    h = hashlib.sha256()
    h.update(value_payload.encode("ascii"))
    h.update(b"\x00")
    h.update(stats_payload.encode("ascii"))
    return h.hexdigest()


class ShardCheckpoint:
    """Append-only journal of completed shard results, keyed for resume.

    ``meta`` identifies the run (graph/engine/aggregation); opening an
    existing journal with different identity raises
    :class:`CheckpointError`. Lookup keys are
    ``(pattern_key, lo, hi)`` — the shard windows themselves are part of
    the key, so resuming with a different shard split simply misses and
    recomputes (never mis-attributes a window).
    """

    def __init__(self, path: str | os.PathLike, meta: dict[str, Any] | None = None):
        self.path = os.fspath(path)
        self.meta = dict(meta or {})
        self._entries: dict[tuple[str, int, int], tuple[Any, Any]] = {}
        self._fh = None
        self._load_existing()
        self._open_for_append()

    # -- loading -----------------------------------------------------------

    def _load_existing(self) -> None:
        if not os.path.exists(self.path):
            return
        dropped = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line is the normal signature of a run
                    # killed mid-write; anything else is still just a
                    # record-level loss — drop it, recompute that shard.
                    dropped += 1
                    continue
                kind = record.get("type")
                if kind == "meta":
                    self._check_meta(record)
                elif kind == "shard":
                    if not self._load_shard_record(record):
                        dropped += 1
        if dropped:
            warnings.warn(
                f"checkpoint {self.path}: dropped {dropped} corrupt or torn "
                "record(s); the affected shards will be recomputed",
                RuntimeWarning,
                stacklevel=3,
            )

    def _check_meta(self, record: dict[str, Any]) -> None:
        version = record.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has format_version {version!r}; "
                f"this build reads version {CHECKPOINT_FORMAT_VERSION}"
            )
        for field in _IDENTITY_FIELDS:
            if field not in self.meta or field not in record:
                continue
            if record[field] != self.meta[field]:
                raise CheckpointError(
                    f"checkpoint {self.path} was written for "
                    f"{field}={record[field]!r} but this run has "
                    f"{field}={self.meta[field]!r}; refusing to mix runs "
                    "(delete the file or pass a fresh --checkpoint path)"
                )

    def _load_shard_record(self, record: dict[str, Any]) -> bool:
        try:
            key = (str(record["key"]), int(record["lo"]), int(record["hi"]))
            value_payload = record["value"]
            stats_payload = record["stats"]
            if _digest(value_payload, stats_payload) != record["sha256"]:
                return False
            self._entries[key] = (_unpack(value_payload), _unpack(stats_payload))
            return True
        except (KeyError, TypeError, ValueError, pickle.UnpicklingError):
            return False

    # -- writing -----------------------------------------------------------

    def _open_for_append(self) -> None:
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_record(
                {
                    "type": "meta",
                    "format_version": CHECKPOINT_FORMAT_VERSION,
                    **self.meta,
                }
            )

    def _write_record(self, record: dict[str, Any]) -> None:
        assert self._fh is not None, "checkpoint is closed"
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        # Flushed per record: a parent killed between shards still
        # leaves every completed shard on disk.
        self._fh.flush()

    # -- the journal API ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, pattern_key: str, shard: tuple[int, int]
    ) -> tuple[Any, Any] | None:
        """Journaled ``(value, stats)`` for a shard, or ``None``."""
        return self._entries.get((pattern_key, int(shard[0]), int(shard[1])))

    def put(
        self,
        pattern_key: str,
        shard: tuple[int, int],
        index: int,
        value: Any,
        stats: Any,
    ) -> None:
        """Journal one completed shard (idempotent per key)."""
        key = (pattern_key, int(shard[0]), int(shard[1]))
        if key in self._entries:
            return
        self._entries[key] = (value, stats)
        if self._fh is None:
            return
        value_payload = _pack(value)
        stats_payload = _pack(stats)
        self._write_record(
            {
                "type": "shard",
                "key": pattern_key,
                "lo": int(shard[0]),
                "hi": int(shard[1]),
                "index": int(index),
                "value": value_payload,
                "stats": stats_payload,
                "sha256": _digest(value_payload, stats_payload),
            }
        )

    def close(self) -> None:
        """Close the journal's file handle (entries stay queryable)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
