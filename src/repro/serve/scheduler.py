"""Query queue: priorities, per-client limits, deadline-aware admission.

The daemon multiplexes one machine across many clients, so "just run
everything immediately" degrades into thrash exactly when the service
is most loaded. The scheduler makes the contention policy explicit:

* **admission** (:class:`AdmissionPolicy`) decides *at submit time*
  whether a query may queue at all — bounded queue depth, a per-client
  in-flight cap, and a deadline feasibility check (a query whose
  deadline will expire before it can plausibly start is rejected now,
  not after wasting a slot);
* **ordering** is a strict priority queue (higher ``priority`` first,
  FIFO within a priority level);
* **deadlines** are re-checked at dispatch (reusing
  :class:`repro.Deadline`, clock injectable), so a query that queued
  fine but aged out while waiting is dropped without running.

Every verdict lands in the metrics registry
(``serve.admission.accepted`` / ``serve.admission.rejected.<reason>``)
and the live depth in the ``serve.queue.depth`` gauge — recorded
through a :class:`~repro.observe.histogram.WindowGauge` on every queue
transition *and* by the server's periodic sampler, so a stats snapshot
reports the depth's min/max envelope since the previous snapshot, not
just whatever the depth was at the last admission.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Callable

from repro.engines.recovery import Deadline
from repro.observe.metrics import MetricsRegistry
from repro.serve.shed import REJECTED_OVERLOAD, ShedController

__all__ = ["AdmissionPolicy", "Query", "QueryScheduler"]

#: Admission verdicts (the ``rejected:*`` forms are also wire errors).
ACCEPTED = "accepted"
REJECTED_QUEUE_FULL = "rejected:queue-full"
REJECTED_CLIENT_LIMIT = "rejected:client-limit"
REJECTED_DEADLINE = "rejected:deadline"
REJECTED_DRAINING = "rejected:draining"


class Query:
    """One scheduled unit of work: a request plus its completion slot.

    The submitting thread waits on :meth:`wait`; whichever worker
    executes the query publishes through :meth:`finish`.
    """

    def __init__(
        self,
        request: dict,
        client: str = "anonymous",
        priority: int = 0,
        deadline: Deadline | None = None,
        query_id: str | None = None,
    ) -> None:
        self.request = request
        self.client = client
        self.priority = priority
        self.deadline = deadline
        #: Server-minted id propagated through spans, responses and the
        #: flight recorder (``None`` for bare scheduler-level use).
        self.query_id = query_id
        self.response: dict | None = None
        #: Backoff hint stamped by the shed controller on an
        #: ``rejected:overload`` verdict (``None`` otherwise).
        self.retry_after_s: float | None = None
        #: Scheduler-clock timestamps, stamped by the scheduler: at
        #: admission, at dispatch to a worker, and at completion. They
        #: feed the queue-wait and end-to-end latency histograms.
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done = threading.Event()

    def finish(self, response: dict) -> None:
        """Publish the response and wake the waiting submitter."""
        self.response = response
        self._done.set()

    def wait(self, timeout: float | None = None) -> dict | None:
        """Block until :meth:`finish`; ``None`` on timeout."""
        if not self._done.wait(timeout):
            return None
        return self.response


class AdmissionPolicy:
    """Submit-time gate: queue depth, per-client cap, deadline headroom.

    ``estimated_service_seconds`` (optional) enables the feasibility
    check: with the queue ``d`` deep, a new query waits roughly
    ``d * estimate`` before starting, so a deadline with less remaining
    headroom than that is unmeetable and the query is rejected upfront.
    ``0`` (the default) disables the estimate and only rejects
    already-expired deadlines.
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        max_per_client: int = 4,
        estimated_service_seconds: float = 0.0,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth!r}")
        if max_per_client < 1:
            raise ValueError(f"max_per_client must be >= 1, got {max_per_client!r}")
        self.max_queue_depth = max_queue_depth
        self.max_per_client = max_per_client
        self.estimated_service_seconds = estimated_service_seconds

    def admit(self, query: Query, queue_depth: int, client_inflight: int) -> str:
        """The verdict for submitting ``query`` against current load."""
        if queue_depth >= self.max_queue_depth:
            return REJECTED_QUEUE_FULL
        if client_inflight >= self.max_per_client:
            return REJECTED_CLIENT_LIMIT
        if query.deadline is not None:
            wait_estimate = queue_depth * self.estimated_service_seconds
            if query.deadline.expired() or query.deadline.remaining() < wait_estimate:
                return REJECTED_DEADLINE
        return ACCEPTED


class QueryScheduler:
    """Thread-safe priority queue with admission control.

    ``clock`` is injectable (like :class:`repro.Deadline`'s) so tests
    drive deadline behavior deterministically. The scheduler itself is
    thread-less: the server's worker threads call :meth:`next_query` /
    :meth:`run_next`, and unit tests can drain the queue synchronously
    without any server at all.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        shed: ShedController | None = None,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional overload gate consulted before the admission policy.
        self.shed = shed
        self._heap: list[tuple[int, int, Query]] = []
        self._seq = 0
        self._inflight: dict[str, int] = {}
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        self._draining = False

    # -- submit --------------------------------------------------------------

    def make_deadline(self, seconds: float | None) -> Deadline | None:
        """A :class:`repro.Deadline` on this scheduler's clock."""
        if seconds is None:
            return None
        return Deadline(seconds, clock=self.clock)

    def submit(self, query: Query) -> str:
        """Admit-or-reject ``query``; an accepted query is queued.

        Returns the verdict string. In-flight accounting covers both
        queued and executing queries of a client, so ``max_per_client``
        bounds a client's total footprint on the daemon.
        """
        with self._lock:
            if self._draining or self._closed:
                verdict = REJECTED_DRAINING
            else:
                verdict = self.policy.admit(
                    query,
                    queue_depth=len(self._heap),
                    client_inflight=self._inflight.get(query.client, 0),
                )
            if verdict == ACCEPTED and self.shed is not None:
                decision = self.shed.evaluate(
                    priority=query.priority, queue_depth=len(self._heap)
                )
                if decision.shed:
                    verdict = REJECTED_OVERLOAD
                    query.retry_after_s = decision.retry_after_s
                    self.metrics.add(
                        f"serve.shed.{(decision.reason or 'unknown')}"
                    )
            if verdict == ACCEPTED:
                query.submitted_at = self.clock()
                self._inflight[query.client] = self._inflight.get(query.client, 0) + 1
                heapq.heappush(self._heap, (-query.priority, self._seq, query))
                self._seq += 1
                self.metrics.sample_window("serve.queue.depth", len(self._heap))
                self._available.notify()
        self.metrics.add(f"serve.admission.{verdict.replace(':', '.')}")
        return verdict

    # -- dispatch ------------------------------------------------------------

    def next_query(self, timeout: float | None = 0) -> Query | None:
        """Pop the highest-priority query; ``None`` when empty/closed.

        ``timeout=0`` polls; ``None`` blocks until work or close.
        Queries whose deadline expired while queued are finished with a
        ``rejected:deadline`` error here and never reach a worker.
        """
        while True:
            with self._lock:
                if not self._heap and timeout != 0:
                    self._available.wait_for(
                        lambda: self._heap or self._closed, timeout=timeout
                    )
                if not self._heap:
                    return None
                query = self._pop_locked()
                query.started_at = self.clock()
                self.metrics.sample_window("serve.queue.depth", len(self._heap))
            if query.deadline is not None and query.deadline.expired():
                self.metrics.add("serve.admission.rejected.deadline")
                self._release(query)
                response = {
                    "ok": False,
                    "error": REJECTED_DEADLINE,
                    "admission": REJECTED_DEADLINE,
                }
                if query.query_id is not None:
                    response["query_id"] = query.query_id
                query.finished_at = self.clock()
                query.finish(response)
                continue
            return query

    def _pop_locked(self) -> Query:
        """Pop the next query to dispatch (caller holds the lock).

        Normally strict priority order — but a queued query whose
        deadline has less headroom than one estimated service time is
        *urgent*: unless it starts now it will expire while waiting, so
        it pre-empts priority order (earliest-submitted urgent query
        first). This is the anti-starvation guarantee: a stream of
        high-priority arrivals cannot hold a feasible low-priority
        query past its deadline. Already-expired queries are not urgent
        (the post-pop deadline check rejects them as before), and with
        ``estimated_service_seconds == 0`` the scan never fires.
        """
        estimate = self.policy.estimated_service_seconds
        if estimate > 0:
            urgent_pos: int | None = None
            for pos, (_, seq, queued) in enumerate(self._heap):
                if queued.deadline is None or queued.deadline.expired():
                    continue
                if queued.deadline.remaining() > estimate:
                    continue
                if urgent_pos is None or seq < self._heap[urgent_pos][1]:
                    urgent_pos = pos
            if urgent_pos is not None:
                _, _, query = self._heap[urgent_pos]
                self._heap[urgent_pos] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                self.metrics.add("serve.scheduler.urgent_dispatch")
                return query
        return heapq.heappop(self._heap)[2]

    def run_next(self, execute: Callable[[Query], dict], timeout: float | None = 0) -> bool:
        """Synchronously execute one queued query (worker loop body).

        Returns ``False`` when no query was available. Exceptions from
        ``execute`` become error responses, never worker crashes.
        """
        query = self.next_query(timeout=timeout)
        if query is None:
            return False
        try:
            response = execute(query)
        except Exception as exc:  # noqa: BLE001 - workers must not die
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            if query.query_id is not None:
                response["query_id"] = query.query_id
        finally:
            self._release(query)
        query.finished_at = self.clock()
        query.finish(response)
        return True

    def _release(self, query: Query) -> None:
        with self._lock:
            count = self._inflight.get(query.client, 0) - 1
            if count <= 0:
                self._inflight.pop(query.client, None)
            else:
                self._inflight[query.client] = count

    # -- lifecycle -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of queries currently queued (not executing)."""
        with self._lock:
            return len(self._heap)

    def sample_depth(self) -> int:
        """Record the current depth into the ``serve.queue.depth`` window.

        Transitions (submit/pop/close) already sample; this adds
        *time-based* samples so the window's min/max envelope is honest
        even across a quiet-then-bursty interval — the server's sampler
        thread calls it periodically.
        """
        with self._lock:
            depth = len(self._heap)
            self.metrics.sample_window("serve.queue.depth", depth)
            return depth

    def inflight(self, client: str) -> int:
        """Queued + executing queries charged to ``client``."""
        with self._lock:
            return self._inflight.get(client, 0)

    def total_inflight(self) -> int:
        """Queued + executing queries across every client.

        The drain loop polls this: zero means every admitted query has
        published its response and the daemon may stop.
        """
        with self._lock:
            return sum(self._inflight.values())

    def set_draining(self, draining: bool = True) -> None:
        """Enter (or leave) drain mode: submissions are rejected with
        ``rejected:draining`` while queued/executing work proceeds."""
        with self._lock:
            self._draining = draining

    @property
    def draining(self) -> bool:
        """Whether new submissions are being rejected for drain."""
        with self._lock:
            return self._draining

    def close(self) -> None:
        """Reject everything still queued and wake blocked workers."""
        with self._lock:
            self._closed = True
            pending = [query for _, _, query in self._heap]
            self._heap.clear()
            self.metrics.sample_window("serve.queue.depth", 0)
            self._available.notify_all()
        for query in pending:
            self._release(query)
            query.finish({"ok": False, "error": "scheduler closed"})

    def snapshot(self) -> dict[str, Any]:
        """Wire-safe scheduler state for the ``stats`` op."""
        with self._lock:
            return {
                "depth": len(self._heap),
                "inflight": dict(self._inflight),
                "max_queue_depth": self.policy.max_queue_depth,
                "max_per_client": self.policy.max_per_client,
                "draining": self._draining,
            }
