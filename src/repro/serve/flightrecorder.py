"""Flight recorder: the last N query traces, anomalies kept forever.

Post-hoc debugging of a live daemon has a retention problem: keeping
every query's full span tree is unbounded, keeping none means the one
query you care about — the 3 a.m. timeout — is gone by the time anyone
looks. The flight recorder splits the difference the way avionics do:

* a bounded **ring buffer** holds the most recent completed queries
  (trace and all), so "what just happened" is always answerable;
* a separately bounded **anomaly set** holds queries that erred,
  returned a :class:`~repro.morph.session.PartialRunResult`, or ran
  *slow against their own cost model* — measured match time exceeding
  ``k×`` the plan-predicted time (Algorithm 1's prediction scaled by
  the engine's calibrated ``unit_seconds``). Anomalies survive ring
  eviction, so a burst of healthy traffic cannot flush the evidence.

:meth:`FlightRecorder.dump` writes every retained trace as JSONL plus
Chrome ``trace_event`` JSON (one pair per query id, plus an
``index.json`` of summaries) — wired to the daemon's ``dump`` op and
its ``SIGUSR1`` handler, so an operator can snapshot a misbehaving
service without restarting it.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.observe.export import RunTrace, write_chrome_trace, write_jsonl

__all__ = ["FlightRecord", "FlightRecorder"]

#: Default ring capacity (recent queries) and anomaly retention.
DEFAULT_CAPACITY = 64
DEFAULT_ANOMALY_CAPACITY = 32
#: Default slowness threshold: measured match seconds > k× predicted.
DEFAULT_SLOW_FACTOR = 8.0


@dataclass
class FlightRecord:
    """One completed query as the flight recorder retains it."""

    query_id: str
    client: str
    graph: str
    engine: str
    patterns: list[str]
    #: ``"ok"``, ``"partial"`` or ``"error"``.
    status: str
    #: ``True`` when answered from the result cache (no trace).
    cached: bool = False
    #: End-to-end seconds (submit → response published).
    seconds: float = 0.0
    #: Seconds spent queued before a worker picked the query up.
    queue_wait: float = 0.0
    #: Algorithm 1's predicted cost for the selected set (units).
    predicted_cost: float | None = None
    #: The prediction converted to seconds via the engine profile.
    predicted_seconds: float | None = None
    #: Measured match seconds for the same set.
    measured_seconds: float | None = None
    #: ``measured / predicted`` (``None`` when no prediction exists).
    cost_ratio: float | None = None
    #: ``True`` when ``cost_ratio`` exceeded the recorder's threshold.
    slow: bool = False
    error: str | None = None
    #: Full span tree (``None`` for cache hits and failed admissions).
    trace: RunTrace | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def anomalous(self) -> bool:
        """Errors, partial answers and cost-model-slow queries qualify."""
        return self.status != "ok" or self.slow

    def describe(self) -> dict[str, Any]:
        """Wire-safe summary (everything but the span tree)."""
        return {
            "query_id": self.query_id,
            "client": self.client,
            "graph": self.graph,
            "engine": self.engine,
            "patterns": list(self.patterns),
            "status": self.status,
            "cached": self.cached,
            "seconds": self.seconds,
            "queue_wait": self.queue_wait,
            "predicted_cost": self.predicted_cost,
            "predicted_seconds": self.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "cost_ratio": self.cost_ratio,
            "slow": self.slow,
            "error": self.error,
            "has_trace": self.trace is not None,
        }


class FlightRecorder:
    """Bounded retention of completed query records (thread-safe).

    ``slow_factor`` is the online SLO threshold: a query whose measured
    match time exceeds ``slow_factor ×`` its plan-predicted time is
    classified slow by :meth:`classify` and retained as an anomaly.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        anomaly_capacity: int = DEFAULT_ANOMALY_CAPACITY,
        slow_factor: float = DEFAULT_SLOW_FACTOR,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if anomaly_capacity < 1:
            raise ValueError(
                f"anomaly_capacity must be >= 1, got {anomaly_capacity!r}"
            )
        if slow_factor <= 0:
            raise ValueError(f"slow_factor must be > 0, got {slow_factor!r}")
        self.capacity = capacity
        self.anomaly_capacity = anomaly_capacity
        self.slow_factor = slow_factor
        self._recent: deque[FlightRecord] = deque(maxlen=capacity)
        self._anomalies: deque[FlightRecord] = deque(maxlen=anomaly_capacity)
        self._recorded = 0
        self._events = 0
        self._lock = threading.Lock()

    # -- classification ----------------------------------------------------

    def classify(self, record: FlightRecord) -> FlightRecord:
        """Stamp ``cost_ratio``/``slow`` from the record's cost fields."""
        if (
            record.predicted_seconds
            and record.predicted_seconds > 0
            and record.measured_seconds is not None
        ):
            record.cost_ratio = record.measured_seconds / record.predicted_seconds
            record.slow = record.cost_ratio > self.slow_factor
        return record

    # -- write -------------------------------------------------------------

    def record(self, record: FlightRecord) -> FlightRecord:
        """Classify and retain one completed query."""
        self.classify(record)
        with self._lock:
            self._recorded += 1
            self._recent.append(record)
            if record.anomalous:
                self._anomalies.append(record)
        return record

    def note(
        self,
        event: str,
        detail: str = "",
        *,
        graph: str = "",
        engine: str = "",
        extra: dict[str, Any] | None = None,
    ) -> FlightRecord:
        """Retain a synthetic service event as an anomaly.

        Not every anomaly is a query: breaker transitions, protocol
        errors on the wire, drain milestones. ``note`` wraps the event
        in a traceless :class:`FlightRecord` with ``status="event"``
        (anomalous by construction, so it lands in the anomaly ring and
        survives healthy traffic) under a server-minted ``evt-*`` id.
        """
        with self._lock:
            self._events += 1
            event_id = f"evt-{self._events:05d}"
        return self.record(
            FlightRecord(
                query_id=event_id,
                client="daemon",
                graph=graph,
                engine=engine,
                patterns=[],
                status="event",
                error=f"{event}: {detail}" if detail else event,
                extra=dict(extra or {}),
            )
        )

    # -- read --------------------------------------------------------------

    def recent(self, n: int | None = None) -> list[FlightRecord]:
        """The most recent records, oldest first (all by default)."""
        with self._lock:
            records = list(self._recent)
        return records if n is None else records[-n:]

    def anomalies(self, n: int | None = None) -> list[FlightRecord]:
        """Retained anomalies, oldest first (all by default)."""
        with self._lock:
            records = list(self._anomalies)
        return records if n is None else records[-n:]

    def find(self, query_id: str) -> FlightRecord | None:
        """Look a query up by id (anomaly set first, then the ring)."""
        with self._lock:
            for record in reversed(self._anomalies):
                if record.query_id == query_id:
                    return record
            for record in reversed(self._recent):
                if record.query_id == query_id:
                    return record
        return None

    def occupancy(self) -> dict[str, Any]:
        """Wire-safe occupancy summary for the ``stats`` op."""
        with self._lock:
            return {
                "recorded": self._recorded,
                "recent": len(self._recent),
                "capacity": self.capacity,
                "anomalies": len(self._anomalies),
                "anomaly_capacity": self.anomaly_capacity,
                "slow_factor": self.slow_factor,
            }

    # -- dump --------------------------------------------------------------

    def dump(self, directory: str) -> list[str]:
        """Write every retained trace to ``directory``; returns the paths.

        Per traced query: ``<query_id>.trace.jsonl`` (the portable
        JSONL form) and ``<query_id>.chrome.json`` (Chrome/Perfetto
        ``trace_event``). An ``index.json`` lists every retained
        record's summary with anomalies flagged. Records without a
        trace (cache hits) appear in the index only.
        """
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            anomaly_ids = {r.query_id for r in self._anomalies}
            # dict keyed by id dedups queries present in both buffers.
            records = {r.query_id: r for r in self._recent}
            records.update({r.query_id: r for r in self._anomalies})
        paths: list[str] = []
        index = []
        for query_id, record in sorted(records.items()):
            summary = record.describe()
            summary["anomaly"] = query_id in anomaly_ids
            index.append(summary)
            if record.trace is None:
                continue
            jsonl_path = os.path.join(directory, f"{query_id}.trace.jsonl")
            chrome_path = os.path.join(directory, f"{query_id}.chrome.json")
            write_jsonl(record.trace, jsonl_path)
            write_chrome_trace(record.trace, chrome_path)
            paths.extend([jsonl_path, chrome_path])
        index_path = os.path.join(directory, "index.json")
        with open(index_path, "w", encoding="utf-8") as fh:
            json.dump({"records": index}, fh, indent=2, sort_keys=True)
        paths.append(index_path)
        return paths

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)
