"""Thin client for the resident mining service.

``repro.connect(port=...)`` returns a :class:`Client` whose
:meth:`Client.run` mirrors :func:`repro.run`: same
:class:`repro.RunOptions` configuration, same typed result values
(``int`` counts, MNI frozenset tuples, ordered match lists, ``bool``
existence) keyed by the caller's own :class:`repro.Pattern` objects —
the only visible difference is that the graph lives in the daemon and
is named, not passed.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.parser import format_pattern
from repro.core.pattern import Pattern
from repro.options import RunOptions
from repro.serve import protocol

__all__ = ["Client", "ServeResult", "connect"]


@dataclass
class ServeResult:
    """One remote run's answer, reshaped to the in-process contract.

    ``results`` is keyed by the caller's own :class:`Pattern` objects
    (exactly like :attr:`repro.MorphRunResult.results`), so code
    consuming an in-process result consumes a remote one unchanged.
    """

    results: dict[Pattern, Any]
    #: ``True`` when the daemon answered from its result cache.
    cached: bool = False
    #: ``True`` for a deadline-degraded (incomplete) answer.
    partial: bool = False
    #: Completed-shard coverage for partial answers (1.0 otherwise).
    coverage: float = 1.0
    #: Per-phase timing reported by the daemon.
    seconds: dict[str, float] = field(default_factory=dict)
    #: Service-contract metrics (``plan.cache.hit`` / ``plan.cache.miss``).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Daemon-minted id of this query — the handle for finding its
    #: trace in the flight recorder (``stats``/``dump`` ops).
    query_id: str | None = None


class Client:
    """A connection to one ``repro serve`` daemon.

    Thread-safe by construction: every request opens a fresh socket, so
    concurrent callers (threads, test harnesses) never interleave
    frames. The daemon's connection handler is cheap enough that this
    costs microseconds against queries that cost milliseconds.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        client_id: str = "anonymous",
        timeout: float | None = 60.0,
    ) -> None:
        if port <= 0:
            raise ValueError(f"port must be a bound server port, got {port!r}")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _request(self, payload: dict) -> dict:
        """One request/response exchange on a fresh connection."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            stream = sock.makefile("rwb")
            try:
                protocol.write_message(stream, payload)
                response = protocol.read_message(stream)
            finally:
                stream.close()
        if response is None:
            raise ConnectionError("server closed the connection mid-request")
        return response

    def _checked(self, payload: dict) -> dict:
        response = self._request(payload)
        if not response.get("ok"):
            raise RuntimeError(
                f"server rejected {payload.get('op')!r}: "
                f"{response.get('error', 'unknown error')}"
            )
        return response

    # -- protocol ops --------------------------------------------------------

    def ping(self) -> bool:
        """``True`` iff the daemon answers."""
        return bool(self._checked({"op": "ping"}).get("pong"))

    def graphs(self) -> list[dict]:
        """Summaries of the graphs currently resident in the daemon."""
        return self._checked({"op": "graphs"})["graphs"]

    def load(self, name: str) -> dict:
        """Load ``name`` (dataset name/code or edge-list path) remotely."""
        return self._checked({"op": "load", "graph": name})["graph"]

    def stats(self) -> dict:
        """The daemon's versioned observability snapshot.

        Metrics, latency histogram quantiles, the queue-depth window,
        scheduler/cache state and flight-recorder occupancy — the
        schema :func:`repro.serve.validate_stats` checks.
        """
        return self._checked({"op": "stats"})

    def health(self) -> dict:
        """Cheap liveness probe: status, uptime, query count, depth."""
        return self._checked({"op": "health"})

    def dump(self, directory: str | None = None) -> dict:
        """Ask the daemon to dump its flight recorder to ``directory``.

        Returns ``{"dir": ..., "files": [...]}`` — JSONL and Chrome
        traces for every retained query plus an ``index.json``. With
        ``directory=None`` the daemon picks a temp directory (and
        reports it back).
        """
        payload: dict[str, Any] = {"op": "dump"}
        if directory is not None:
            payload["dir"] = str(directory)
        return self._checked(payload)

    def shutdown(self) -> None:
        """Ask the daemon to stop (idempotent; returns once acknowledged)."""
        self._checked({"op": "shutdown"})

    def run(
        self,
        graph: str,
        patterns: Sequence[Pattern] | Pattern,
        options: RunOptions | None = None,
        priority: int = 0,
        use_result_cache: bool = True,
    ) -> ServeResult:
        """Mine ``patterns`` on the resident graph named ``graph``.

        ``options`` is the same :class:`repro.RunOptions` an in-process
        run takes; it must be wire-safe (``options.to_dict()`` raises on
        local-only live objects before anything is sent). ``priority``
        orders this query against others queued in the daemon (higher
        first); admission rejections surface as :class:`RuntimeError`
        with the verdict (``rejected:queue-full``,
        ``rejected:client-limit``, ``rejected:deadline``) as message.
        """
        if isinstance(patterns, Pattern):
            patterns = [patterns]
        patterns = list(patterns)
        texts = [format_pattern(p) for p in patterns]
        response = self._checked(
            {
                "op": "run",
                "graph": graph,
                "patterns": texts,
                "options": (options or RunOptions()).to_dict(),
                "client": self.client_id,
                "priority": priority,
                "use_result_cache": use_result_cache,
            }
        )
        by_text = response.get("results", {})
        results = {
            pattern: protocol.decode_value(by_text.get(text))
            for text, pattern in zip(texts, patterns)
        }
        return ServeResult(
            results=results,
            cached=bool(response.get("cached", False)),
            partial=bool(response.get("partial", False)),
            coverage=float(response.get("coverage", 1.0)),
            seconds=dict(response.get("seconds", {})),
            metrics=dict(response.get("metrics", {})),
            query_id=response.get("query_id"),
        )


def connect(
    port: int,
    host: str = "127.0.0.1",
    client_id: str = "anonymous",
    timeout: float | None = 60.0,
) -> Client:
    """Connect to a ``repro serve`` daemon and verify it answers.

    The returned :class:`Client` is ready to use::

        client = repro.connect(port=7071)
        client.load("mico")
        result = client.run("mico", [repro.Pattern.clique(3)])
    """
    client = Client(host=host, port=port, client_id=client_id, timeout=timeout)
    client.ping()
    return client
