"""Thin client for the resident mining service.

``repro.connect(port=...)`` returns a :class:`Client` whose
:meth:`Client.run` mirrors :func:`repro.run`: same
:class:`repro.RunOptions` configuration, same typed result values
(``int`` counts, MNI frozenset tuples, ordered match lists, ``bool``
existence) keyed by the caller's own :class:`repro.Pattern` objects —
the only visible difference is that the graph lives in the daemon and
is named, not passed.

Resilience: with a retry policy configured (``retry=`` — an ``int`` or
a full :class:`repro.RetryPolicy`), :meth:`Client.run` survives the
transient failures a hardened daemon *intentionally* produces — typed
``rejected:overload`` / ``rejected:circuit-open`` verdicts (honoring
their ``retry_after_s`` hints), torn connections, unparsable response
frames, per-request socket timeouts — using the same seeded-jitter
exponential backoff the batch layer uses for shard retries, so a test
with a fixed seed replays the exact same schedule. Each logical call
carries an **idempotency key**: if attempt 0's response was lost on the
wire after the daemon completed the query, the retry replays the stored
response instead of re-mining (and the answer stays byte-identical).
Permanent rejections (``rejected:deadline``, unknown graphs, …) raise
:class:`ServeRejected` / :class:`RuntimeError` immediately — retrying
them would never succeed.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.parser import format_pattern
from repro.core.pattern import Pattern
from repro.engines.recovery import RetryPolicy
from repro.options import RunOptions
from repro.serve import protocol

__all__ = ["Client", "ServeRejected", "ServeResult", "connect"]

#: Admission verdicts worth retrying: the condition is load, not the
#: request — backing off and retrying is the designed client response.
_RETRYABLE_VERDICTS = (
    "rejected:overload",
    "rejected:circuit-open",
    "rejected:queue-full",
)

#: Server-side error families worth retrying: a worker crash is a
#: transient execution failure (a crash *loop* opens the circuit
#: breaker, which surfaces as a retryable verdict instead).
_RETRYABLE_ERRORS = ("WorkerCrashError",)


class ServeRejected(RuntimeError):
    """The daemon rejected a request with a typed admission verdict.

    ``verdict`` is the ``rejected:*`` string; ``retry_after_s`` carries
    the daemon's backoff hint when one was offered (overload and
    circuit-open verdicts), else ``None``. ``retryable`` tells the
    retry loop (and callers) whether waiting can help.
    """

    def __init__(
        self,
        op: str,
        verdict: str,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"server rejected {op!r}: {verdict}")
        self.op = op
        self.verdict = verdict
        self.retry_after_s = retry_after_s

    @property
    def retryable(self) -> bool:
        """Whether this verdict can clear up by waiting and retrying."""
        return self.verdict in _RETRYABLE_VERDICTS


@dataclass
class ServeResult:
    """One remote run's answer, reshaped to the in-process contract.

    ``results`` is keyed by the caller's own :class:`Pattern` objects
    (exactly like :attr:`repro.MorphRunResult.results`), so code
    consuming an in-process result consumes a remote one unchanged.
    """

    results: dict[Pattern, Any]
    #: ``True`` when the daemon answered from its result cache.
    cached: bool = False
    #: ``True`` for a deadline-degraded (incomplete) answer.
    partial: bool = False
    #: Completed-shard coverage for partial answers (1.0 otherwise).
    coverage: float = 1.0
    #: Per-phase timing reported by the daemon.
    seconds: dict[str, float] = field(default_factory=dict)
    #: Service-contract metrics (``plan.cache.hit`` / ``plan.cache.miss``).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Daemon-minted id of this query — the handle for finding its
    #: trace in the flight recorder (``stats``/``dump`` ops).
    query_id: str | None = None
    #: Which resource sentinel cancelled the query (``"wall-budget"`` /
    #: ``"rss-budget"``), or ``None`` when no budget tripped.
    sentinel: str | None = None


class Client:
    """A connection to one ``repro serve`` daemon.

    Thread-safe by construction: every request opens a fresh socket, so
    concurrent callers (threads, test harnesses) never interleave
    frames. The daemon's connection handler is cheap enough that this
    costs microseconds against queries that cost milliseconds.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        client_id: str = "anonymous",
        timeout: float | None = 60.0,
        retry: RetryPolicy | int | None = None,
    ) -> None:
        if port <= 0:
            raise ValueError(f"port must be a bound server port, got {port!r}")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        #: ``None`` (no retries — the pre-hardening behavior), an int
        #: (max retries with default backoff), or a full policy.
        self.retry = None if retry is None else RetryPolicy.resolve(retry)
        self._seq = 0
        self._seq_lock = threading.Lock()

    def _request(self, payload: dict) -> dict:
        """One request/response exchange on a fresh connection."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            stream = sock.makefile("rwb")
            try:
                protocol.write_message(stream, payload)
                response = protocol.read_message(stream)
            finally:
                stream.close()
        if response is None:
            raise ConnectionError("server closed the connection mid-request")
        return response

    def _checked(self, payload: dict) -> dict:
        response = self._request(payload)
        if not response.get("ok"):
            error = str(response.get("error", "unknown error"))
            if error.startswith("rejected:"):
                retry_after = response.get("retry_after_s")
                raise ServeRejected(
                    str(payload.get("op")),
                    error,
                    retry_after_s=(
                        float(retry_after) if retry_after is not None else None
                    ),
                )
            raise RuntimeError(
                f"server rejected {payload.get('op')!r}: {error}"
            )
        return response

    def _checked_with_retry(self, payload: dict) -> dict:
        """``_checked`` under the client's retry policy (if any).

        Retryable: transient transport failures (torn connection,
        timeout, unparsable frame) and retryable admission verdicts.
        The wait before attempt ``n`` is the seeded-jitter backoff —
        raised to the server's ``retry_after_s`` hint when the daemon
        offered one, because the daemon knows its backlog better than
        an exponential schedule does.
        """
        policy = self.retry
        if policy is None:
            return self._checked(payload)
        last_error: Exception | None = None
        for attempt in range(policy.max_retries + 1):
            try:
                return self._checked(payload)
            except ServeRejected as exc:
                if not exc.retryable or attempt >= policy.max_retries:
                    raise
                last_error = exc
                delay = policy.delay(0, attempt)
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
            except RuntimeError as exc:
                # Typed server-side errors: only the transient families
                # (worker crashes) are worth another attempt.
                if attempt >= policy.max_retries or not any(
                    token in str(exc) for token in _RETRYABLE_ERRORS
                ):
                    raise
                last_error = exc
                delay = policy.delay(0, attempt)
            except (ConnectionError, socket.timeout, OSError, ValueError) as exc:
                # Torn socket, refused/reset connection, per-request
                # timeout, or a corrupt (unparsable) response frame.
                if attempt >= policy.max_retries:
                    raise
                last_error = exc
                delay = policy.delay(0, attempt)
            policy.sleep(delay)
        raise last_error if last_error is not None else AssertionError(
            "retry loop exited without an outcome"
        )  # pragma: no cover - loop always returns or raises

    # -- protocol ops --------------------------------------------------------

    def ping(self) -> bool:
        """``True`` iff the daemon answers."""
        return bool(self._checked({"op": "ping"}).get("pong"))

    def graphs(self) -> list[dict]:
        """Summaries of the graphs currently resident in the daemon."""
        return self._checked({"op": "graphs"})["graphs"]

    def load(self, name: str) -> dict:
        """Load ``name`` (dataset name/code or edge-list path) remotely."""
        return self._checked({"op": "load", "graph": name})["graph"]

    def stats(self) -> dict:
        """The daemon's versioned observability snapshot.

        Metrics, latency histogram quantiles, the queue-depth window,
        scheduler/cache state and flight-recorder occupancy — the
        schema :func:`repro.serve.validate_stats` checks.
        """
        return self._checked({"op": "stats"})

    def health(self) -> dict:
        """Cheap liveness probe: status, uptime, query count, depth."""
        return self._checked({"op": "health"})

    def dump(self, directory: str | None = None) -> dict:
        """Ask the daemon to dump its flight recorder to ``directory``.

        Returns ``{"dir": ..., "files": [...]}`` — JSONL and Chrome
        traces for every retained query plus an ``index.json``. With
        ``directory=None`` the daemon picks a temp directory (and
        reports it back).
        """
        payload: dict[str, Any] = {"op": "dump"}
        if directory is not None:
            payload["dir"] = str(directory)
        return self._checked(payload)

    def shutdown(self) -> None:
        """Ask the daemon to stop (idempotent; returns once acknowledged)."""
        self._checked({"op": "shutdown"})

    def _next_idempotency_key(self, payload: dict) -> str:
        """A deterministic per-call idempotency key (no RNG).

        ``<client>:<seq>:<digest>`` — the per-client sequence separates
        deliberate repeats of the same query, and the request digest
        keeps a collision across client instances sharing an id
        harmless (identical key implies identical request).
        """
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()[:16]
        return f"{self.client_id}:{seq}:{digest}"

    def run(
        self,
        graph: str,
        patterns: Sequence[Pattern] | Pattern,
        options: RunOptions | None = None,
        priority: int = 0,
        use_result_cache: bool = True,
        chaos_index: int | None = None,
    ) -> ServeResult:
        """Mine ``patterns`` on the resident graph named ``graph``.

        ``options`` is the same :class:`repro.RunOptions` an in-process
        run takes; it must be wire-safe (``options.to_dict()`` raises on
        local-only live objects before anything is sent). ``priority``
        orders this query against others queued in the daemon (higher
        first); admission rejections surface as :class:`ServeRejected`
        with the verdict (``rejected:queue-full``,
        ``rejected:client-limit``, ``rejected:deadline``,
        ``rejected:overload``, ``rejected:circuit-open``,
        ``rejected:draining``). With a retry policy configured,
        retryable failures back off and retry under a per-call
        idempotency key (see the module docstring); ``chaos_index``
        tags the request for a server-side
        :class:`repro.testing.faults.QueryFaultPlan`.
        """
        if isinstance(patterns, Pattern):
            patterns = [patterns]
        patterns = list(patterns)
        texts = [format_pattern(p) for p in patterns]
        payload: dict[str, Any] = {
            "op": "run",
            "graph": graph,
            "patterns": texts,
            "options": (options or RunOptions()).to_dict(),
            "client": self.client_id,
            "priority": priority,
            "use_result_cache": use_result_cache,
        }
        if chaos_index is not None:
            payload["chaos_index"] = int(chaos_index)
        if self.retry is not None:
            payload["idempotency_key"] = self._next_idempotency_key(payload)
        response = self._checked_with_retry(payload)
        by_text = response.get("results", {})
        results = {
            pattern: protocol.decode_value(by_text.get(text))
            for text, pattern in zip(texts, patterns)
        }
        return ServeResult(
            results=results,
            cached=bool(response.get("cached", False)),
            partial=bool(response.get("partial", False)),
            coverage=float(response.get("coverage", 1.0)),
            seconds=dict(response.get("seconds", {})),
            metrics=dict(response.get("metrics", {})),
            query_id=response.get("query_id"),
            sentinel=response.get("sentinel"),
        )


def connect(
    port: int,
    host: str = "127.0.0.1",
    client_id: str = "anonymous",
    timeout: float | None = 60.0,
    retry: RetryPolicy | int | None = None,
) -> Client:
    """Connect to a ``repro serve`` daemon and verify it answers.

    The returned :class:`Client` is ready to use::

        client = repro.connect(port=7071)
        client.load("mico")
        result = client.run("mico", [repro.Pattern.clique(3)])

    ``timeout`` bounds each request on the wire; ``retry`` (an ``int``
    or a :class:`repro.RetryPolicy`) turns on client-side resilience —
    see :class:`Client`.
    """
    client = Client(
        host=host, port=port, client_id=client_id, timeout=timeout, retry=retry
    )
    client.ping()
    return client
