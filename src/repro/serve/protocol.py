"""Wire protocol of the resident mining service.

JSON-lines over a stream socket: every message is one JSON object on
one ``\\n``-terminated line, UTF-8. Requests carry an ``op`` field;
responses carry ``ok`` (``true``/``false``) plus op-specific payload or
an ``error`` string. The framing is deliberately boring — any language
with a socket and a JSON parser is a client.

Aggregation values are *typed* Python objects (``int`` counts, ``bool``
existence, ``list[tuple]`` match lists, ``tuple[frozenset]`` MNI
tables) that plain JSON would flatten into indistinguishable arrays.
:func:`encode_value` / :func:`decode_value` wrap compound values in
``{"t": <kind>, "v": [...]}`` tags so the client reconstructs the
exact type — a remote result compares ``==`` to the in-process one.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

__all__ = [
    "decode_value",
    "encode_value",
    "read_message",
    "validate_stats",
    "write_message",
]

#: Tag names for the compound types that must survive the round-trip.
_TAGS = ("tuple", "list", "frozenset", "set", "dict")

#: Version stamped into every ``stats`` response. Bumped whenever the
#: snapshot's shape changes so dashboards and scrapers can detect a
#: daemon speaking a different schema instead of mis-parsing it.
#: Version 2 added: ``schema_version``, ``histograms``, ``queue``
#: (window-gauge envelope), ``flight`` (recorder occupancy + recent
#: anomalies) and per-query latency distributions. Version 3 added the
#: robustness sections: ``service`` (drain state machine),
#: ``shed`` (overload controller), ``breakers`` (per-(graph, engine)
#: circuit-breaker states) and ``sentinels`` (watchdog budgets/trips).
STATS_SCHEMA_VERSION = 3

#: ``stats`` snapshot contract: required key -> required type(s).
_STATS_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "metrics": dict,
    "scheduler": dict,
    "graphs": list,
    "result_cache_entries": int,
    "plan_cache": dict,
    "uptime_seconds": (int, float),
    "histograms": dict,
    "queue": dict,
    "flight": dict,
    "service": dict,
    "shed": dict,
    "breakers": dict,
    "sentinels": dict,
}

#: Drain state machine values the ``service`` section may report.
_SERVICE_STATES = ("accepting", "draining", "closed")


def validate_stats(snapshot: dict) -> dict:
    """Check a ``stats`` response against the version-3 schema.

    Raises :class:`ValueError` naming every violation at once (missing
    or mistyped top-level keys, malformed histogram summaries, a
    flight-recorder section without occupancy fields, robustness
    sections missing their state fields); returns the snapshot
    unchanged when it validates, so callers can chain it.
    """
    problems: list[str] = []
    for key, expected in _STATS_SCHEMA.items():
        if key not in snapshot:
            problems.append(f"missing key {key!r}")
        elif not isinstance(snapshot[key], expected):
            problems.append(
                f"key {key!r} should be {expected}, "
                f"got {type(snapshot[key]).__name__}"
            )
    if not problems:
        if snapshot["schema_version"] != STATS_SCHEMA_VERSION:
            problems.append(
                f"schema_version {snapshot['schema_version']!r} != "
                f"{STATS_SCHEMA_VERSION}"
            )
        for name, summary in snapshot["histograms"].items():
            if not isinstance(summary, dict) or "count" not in summary:
                problems.append(f"histogram {name!r} has no count")
            elif summary["count"] > 0 and not all(
                q in summary for q in ("p50", "p90", "p99", "max")
            ):
                problems.append(f"histogram {name!r} is missing quantiles")
        for key in ("last", "min", "max", "samples"):
            if key not in snapshot["queue"]:
                problems.append(f"queue window is missing {key!r}")
        for key in ("recorded", "recent", "capacity", "anomalies"):
            if key not in snapshot["flight"]:
                problems.append(f"flight section is missing {key!r}")
        if snapshot["service"].get("state") not in _SERVICE_STATES:
            problems.append(
                f"service state {snapshot['service'].get('state')!r} not in "
                f"{_SERVICE_STATES}"
            )
        for key in ("shed_total", "by_reason", "slo_p99"):
            if key not in snapshot["shed"]:
                problems.append(f"shed section is missing {key!r}")
        for cell, breaker in snapshot["breakers"].items():
            if not isinstance(breaker, dict) or "state" not in breaker:
                problems.append(f"breaker {cell!r} has no state")
        for key in ("active", "trips"):
            if key not in snapshot["sentinels"]:
                problems.append(f"sentinels section is missing {key!r}")
    if problems:
        raise ValueError(
            "stats snapshot violates schema: " + "; ".join(problems)
        )
    return snapshot


def encode_value(value: Any) -> Any:
    """Encode an aggregation value into its tagged JSON form.

    Scalars (``int``, ``float``, ``str``, ``bool``, ``None``) pass
    through; tuples, lists, frozensets and sets become
    ``{"t": kind, "v": [...]}`` with elements encoded recursively.
    Set-likes are emitted in sorted order so the encoding — and hence
    the service's result cache and any on-the-wire comparison — is
    deterministic regardless of construction order.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"t": "list", "v": [encode_value(v) for v in value]}
    if isinstance(value, (frozenset, set)):
        kind = "frozenset" if isinstance(value, frozenset) else "set"
        try:
            elements = sorted(value)
        except TypeError:
            elements = sorted(value, key=repr)
        return {"t": kind, "v": [encode_value(v) for v in elements]}
    if isinstance(value, dict):
        return {
            "t": "dict",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise TypeError(f"cannot encode {type(value).__name__} value {value!r}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`: rebuild the exact Python type."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        tag = value.get("t")
        if tag not in _TAGS or "v" not in value:
            raise ValueError(f"malformed tagged value: {value!r}")
        items = value["v"]
        if tag == "tuple":
            return tuple(decode_value(v) for v in items)
        if tag == "list":
            return [decode_value(v) for v in items]
        if tag == "frozenset":
            return frozenset(decode_value(v) for v in items)
        if tag == "set":
            return {decode_value(v) for v in items}
        return {decode_value(k): decode_value(v) for k, v in items}
    raise ValueError(f"cannot decode {value!r}")


def write_message(stream: BinaryIO, message: dict) -> None:
    """Write one JSON-lines message and flush."""
    stream.write(json.dumps(message, separators=(",", ":")).encode("utf-8"))
    stream.write(b"\n")
    stream.flush()


def read_message(stream: BinaryIO) -> dict | None:
    """Read one JSON-lines message; ``None`` on a closed stream."""
    line = stream.readline()
    if not line:
        return None
    text = line.decode("utf-8").strip()
    if not text:
        return None
    message = json.loads(text)
    if not isinstance(message, dict):
        raise ValueError(f"protocol messages are JSON objects, got {text[:80]!r}")
    return message
