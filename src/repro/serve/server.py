"""The resident mining daemon: :class:`MiningServer`.

One process owns the expensive state — resident graphs (with their
shared-memory segments), a warm :class:`repro.PlanCache`, per-graph
:class:`repro.MeasurementCache` instances, and a result cache — and
answers queries over the JSON-lines protocol (:mod:`.protocol`).
Requests flow through the :class:`.scheduler.QueryScheduler` (priority
ordering, per-client limits, deadline-aware admission) into a small
pool of worker threads, each of which builds a *fresh* engine per query
(:func:`repro.resolve_engine` with ``fresh=True`` — engine instances
carry per-run mutable state and must never be shared across concurrent
runs).

Three cache layers, coarsest first:

1. **result cache** — byte-identical encoded payloads keyed by (graph
   fingerprint, pattern texts, aggregation, engine, strategy, morph
   knobs); a hit answers without touching the pipeline at all;
2. **plan cache** — a result-cache miss still skips plan *search* when
   the same (graph, queries, engine, strategy) was planned before;
3. **measurement cache** — per-graph memoized alternative-set
   measurements shared across queries.

Every layer reports into the server's metrics registry
(``serve.result_cache.*``, merged ``plan.cache.*``, admission verdicts
and queue depth from the scheduler), surfaced by the ``stats`` op.
"""

from __future__ import annotations

import socket
import socketserver
import tempfile
import threading
import time
import warnings
from typing import Any, Callable

from repro.core.parser import format_pattern, parse_pattern
from repro.engines.recovery import Deadline
from repro.errors import WorkerCrashError
from repro.morph.cache import MeasurementCache, PlanCache
from repro.morph.profiles import profile_for
from repro.morph.session import MorphingSession, PartialRunResult
from repro.observe.export import RunTrace
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import Tracer
from repro.options import RunOptions
from repro.serve import protocol
from repro.serve.breaker import REJECTED_CIRCUIT_OPEN, BreakerBoard
from repro.serve.flightrecorder import FlightRecord, FlightRecorder
from repro.serve.registry import GraphRegistry
from repro.serve.scheduler import (
    ACCEPTED,
    REJECTED_DRAINING,
    AdmissionPolicy,
    Query,
    QueryScheduler,
)
from repro.serve.sentinel import SentinelBoard
from repro.serve.shed import ShedController
from repro.serve.state import load_service_state, save_service_state

__all__ = ["MiningServer"]

#: Bound on the idempotency map (completed responses kept for replay).
_IDEMPOTENCY_CAPACITY = 256

#: Metrics forwarded to clients in every run response (cache behavior
#: is part of the service contract, so clients can assert on it).
_RESPONSE_METRICS = ("plan.cache.hit", "plan.cache.miss")


class MiningServer:
    """Resident daemon: registry + scheduler + caches + TCP front-end.

    Usable at three levels, outermost optional:

    * :meth:`handle` — dict in, dict out; the full protocol without any
      sockets or threads (unit tests drive this directly);
    * :meth:`start` / :meth:`close` — TCP listener plus worker threads
      (what ``repro serve`` runs);
    * ``with MiningServer(...) as server:`` — start/close scoped.

    ``clock`` is forwarded to the scheduler so tests control deadline
    admission deterministically. ``workers=0`` runs queries
    synchronously in whichever thread submitted them (deterministic
    integration tests); any positive count gives real cross-query
    concurrency.

    Observability: every run mints a ``query_id`` (returned in the
    response and stamped into every span of the query's trace), the
    metrics registry accumulates latency histograms
    (``serve.latency.total`` / ``.queue_wait`` / ``.first_result`` and
    per-engine ``serve.stage.{plan,match,convert}.<engine>``), and a
    :class:`~repro.serve.flightrecorder.FlightRecorder` retains the
    last ``flight_capacity`` query traces plus anomalies — errors,
    partial answers, and queries whose measured match time exceeded
    ``slow_factor ×`` their plan-predicted time. ``sample_interval``
    throttles the background queue-depth sampler started by
    :meth:`start`.
    """

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        policy: AdmissionPolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        clock: Callable[[], float] = time.monotonic,
        result_cache: bool = True,
        slow_factor: float = 8.0,
        flight_capacity: int = 64,
        sample_interval: float = 0.25,
        slo_p99: float | None = None,
        protect_priority: int = 1,
        wall_budget_s: float | None = None,
        rss_budget_bytes: int | None = None,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        drain_deadline_s: float = 5.0,
        state_path: str | None = None,
        chaos: Any = None,
        sweep_on_start: bool = True,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers!r}")
        if drain_deadline_s <= 0:
            raise ValueError(
                f"drain_deadline_s must be positive, got {drain_deadline_s!r}"
            )
        self.registry = registry if registry is not None else GraphRegistry()
        self.metrics = MetricsRegistry()
        policy = policy or AdmissionPolicy()
        self.shed = ShedController(
            self.metrics,
            slo_p99=slo_p99,
            protect_priority=protect_priority,
            estimated_service_seconds=policy.estimated_service_seconds,
        )
        self.scheduler = QueryScheduler(
            policy=policy, clock=clock, metrics=self.metrics, shed=self.shed
        )
        self.sentinels = SentinelBoard(
            clock=clock,
            wall_budget_s=wall_budget_s,
            rss_budget_bytes=rss_budget_bytes,
        )
        self.breakers = BreakerBoard(
            failure_threshold=breaker_threshold,
            reset_seconds=breaker_reset_s,
            clock=clock,
            on_transition=self._on_breaker_transition,
        )
        self.plan_cache = PlanCache()
        self.flight = FlightRecorder(
            capacity=flight_capacity, slow_factor=slow_factor
        )
        self.host = host
        self.port = port
        self.workers = workers
        self.result_cache_enabled = result_cache
        self.sample_interval = sample_interval
        self.drain_deadline_s = drain_deadline_s
        self.state_path = state_path
        #: Optional :class:`repro.testing.faults.QueryFaultPlan` driving
        #: the service-level chaos harness (``None`` in production).
        self.chaos = chaos
        self.sweep_on_start = sweep_on_start
        self._result_cache: dict[tuple, dict] = {}
        self._idempotency: dict[str, dict] = {}
        self._measurement_caches: dict[str, MeasurementCache] = {}
        self._lock = threading.Lock()
        self._tcp: _TCPServer | None = None
        self._threads: list[threading.Thread] = []
        self._worker_threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._closed = threading.Event()
        self._started: float | None = None
        self._query_seq = 0
        #: Drain state machine: ``accepting`` → ``draining`` → ``closed``.
        self._drain_state = "accepting"

    # -- protocol dispatch ---------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Answer one protocol request (dict in, dict out).

        Never raises: malformed requests and execution failures become
        ``{"ok": false, "error": ...}`` responses, because a daemon
        that dies on a bad request takes every other client with it.
        """
        try:
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "graphs":
                return {"ok": True, "graphs": self.registry.describe()}
            if op == "load":
                resident = self.registry.load(str(request["graph"]))
                return {"ok": True, "graph": resident.describe()}
            if op == "run":
                return self._handle_run(request)
            if op == "stats":
                return self._stats_snapshot()
            if op == "health":
                return self._health_snapshot()
            if op == "dump":
                directory, files = self.dump_flight(request.get("dir"))
                return {"ok": True, "dir": directory, "files": files}
            if op == "drain":
                # Same write-then-act discipline as shutdown: over a
                # socket the handler loop starts the drain after the
                # ack is flushed; dict-level callers get a thread here.
                if self._tcp is None:
                    threading.Thread(target=self.drain, daemon=True).start()
                return {"ok": True, "draining": True}
            if op == "shutdown":
                # Over a socket the handler loop triggers close() only
                # after the acknowledgement is flushed — starting it
                # here would race the response write with the listener
                # teardown. Dict-level callers have no handler loop, so
                # close immediately on their behalf.
                if self._tcp is None:
                    threading.Thread(target=self.close, daemon=True).start()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- observability snapshots ----------------------------------------------

    def _uptime_seconds(self) -> float:
        if self._started is None:
            return 0.0
        return max(0.0, self.scheduler.clock() - self._started)

    def _stats_snapshot(self) -> dict:
        """The versioned ``stats`` payload (:func:`protocol.validate_stats`).

        Reading the ``queue`` section *ends* the current window-gauge
        window: consecutive snapshots partition time, so each reports
        the depth envelope since the previous one.
        """
        self.scheduler.sample_depth()
        flight = self.flight.occupancy()
        flight["recent_anomalies"] = [
            record.describe() for record in self.flight.anomalies(8)
        ]
        return {
            "ok": True,
            "schema_version": protocol.STATS_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "histograms": self.metrics.histogram_snapshots(),
            "queue": self.metrics.window("serve.queue.depth").read(),
            "scheduler": self.scheduler.snapshot(),
            "graphs": self.registry.names(),
            "result_cache_entries": len(self._result_cache),
            "plan_cache": {
                "hits": self.plan_cache.hits,
                "misses": self.plan_cache.misses,
            },
            "flight": flight,
            "uptime_seconds": self._uptime_seconds(),
            "service": {
                "state": self._drain_state,
                "workers": self.workers,
                "drain_deadline_s": self.drain_deadline_s,
                "idempotency_entries": len(self._idempotency),
            },
            "shed": self.shed.snapshot(),
            "breakers": self.breakers.snapshot(),
            "sentinels": self.sentinels.snapshot(),
        }

    def _health_snapshot(self) -> dict:
        """The cheap liveness payload (no histogram walks, no windows)."""
        return {
            "ok": True,
            "status": "ok",
            "schema_version": protocol.STATS_SCHEMA_VERSION,
            "uptime_seconds": self._uptime_seconds(),
            "queries": self.metrics.value("serve.queries", 0),
            "queue_depth": self.scheduler.depth,
        }

    def dump_flight(self, directory: str | None = None) -> tuple[str, list[str]]:
        """Write the flight recorder's retained traces to ``directory``.

        With ``directory=None`` a fresh ``repro-flight-*`` temp
        directory is created. Returns ``(directory, written paths)``.
        Wired to the ``dump`` op and the CLI's ``SIGUSR1`` handler.
        """
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-flight-")
        files = self.flight.dump(str(directory))
        self.metrics.add("serve.flight.dumps")
        return str(directory), files

    def _next_query_id(self) -> str:
        with self._lock:
            self._query_seq += 1
            return f"q-{self._query_seq:06d}"

    def _handle_run(self, request: dict) -> dict:
        """Admit, schedule and (a)wait one mining query."""
        if self._drain_state != "accepting":
            self.metrics.add("serve.admission.rejected.draining")
            return {
                "ok": False,
                "error": REJECTED_DRAINING,
                "admission": REJECTED_DRAINING,
            }
        idempotency_key = request.get("idempotency_key")
        if idempotency_key is not None:
            with self._lock:
                stored = self._idempotency.get(str(idempotency_key))
            if stored is not None:
                # A retried query whose first attempt completed (but
                # whose response the client never saw — torn socket,
                # timeout) replays the exact original response.
                self.metrics.add("serve.idempotent.replays")
                return dict(stored)
        if self.chaos is not None:
            spec, attempt = self.chaos.begin(request.get("chaos_index"))
            if spec is not None:
                request["_chaos"] = (spec, attempt)
        options = RunOptions.from_dict(request.get("options") or {})
        breaker = self.breakers.get(
            str(request.get("graph", "?")), str(options.engine)
        )
        if not breaker.allow():
            self.metrics.add("serve.admission.rejected.circuit-open")
            response: dict[str, Any] = {
                "ok": False,
                "error": REJECTED_CIRCUIT_OPEN,
                "admission": REJECTED_CIRCUIT_OPEN,
            }
            retry_after = breaker.retry_after()
            if retry_after is not None:
                response["retry_after_s"] = retry_after
            return response
        query = Query(
            request,
            client=str(request.get("client", "anonymous")),
            priority=int(request.get("priority", 0)),
            deadline=self.scheduler.make_deadline(options.deadline_seconds),
            query_id=self._next_query_id(),
        )
        accepted_at = self.scheduler.clock()
        verdict = self.scheduler.submit(query)
        if verdict != ACCEPTED:
            response = {
                "ok": False,
                "error": verdict,
                "admission": verdict,
                "query_id": query.query_id,
            }
            if query.retry_after_s is not None:
                response["retry_after_s"] = query.retry_after_s
            return response
        if not self._worker_threads:
            # Synchronous mode (``workers=0``, dict-level unit tests):
            # drain the queue in the calling thread until this query
            # resolves — higher-priority work still runs first.
            while query.response is None:
                self.scheduler.run_next(self._execute)
        response = query.wait(timeout=None)
        assert response is not None
        # End-to-end latency includes queueing, execution *and* the
        # submitter's wakeup — the number a client actually experiences.
        with self._lock:
            self.metrics.observe(
                "serve.latency.total", self.scheduler.clock() - accepted_at
            )
        chaos = request.get("_chaos")
        if chaos is not None and chaos[0].kind in ("corrupt", "torn-socket"):
            # Wire-level faults ride the response as a private marker
            # the socket handler pops before (not) writing the bytes.
            response = dict(response)
            response["_chaos_wire"] = chaos[0].kind
        if (
            idempotency_key is not None
            and response.get("ok")
            and not response.get("partial")
        ):
            clean = {
                k: v for k, v in response.items() if k != "_chaos_wire"
            }
            with self._lock:
                self._idempotency[str(idempotency_key)] = clean
                while len(self._idempotency) > _IDEMPOTENCY_CAPACITY:
                    self._idempotency.pop(next(iter(self._idempotency)))
        return response

    # -- query execution -----------------------------------------------------

    def _execute(self, query: Query) -> dict:
        """Run one admitted query to a wire-ready response payload."""
        request = query.request
        try:
            resident = self.registry.get(str(request["graph"]))
            texts = list(request.get("patterns") or [])
            if not texts:
                raise ValueError("run request carries no patterns")
            patterns = [parse_pattern(str(t)) for t in texts]
            options = RunOptions.from_dict(request.get("options") or {})
        except Exception as exc:
            # A query that dies before a session exists (unknown graph,
            # unparseable pattern, bad options) is still an anomaly the
            # operator will ask about; retain it traceless.
            self._record_flight(
                query,
                str(request.get("graph", "?")),
                list(request.get("patterns") or []),
                RunOptions(),
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
            raise
        queue_wait = 0.0
        if query.submitted_at is not None and query.started_at is not None:
            queue_wait = max(0.0, query.started_at - query.submitted_at)
        with self._lock:
            self.metrics.observe("serve.latency.queue_wait", queue_wait)
        breaker = self.breakers.get(
            str(request.get("graph", "?")), str(options.engine)
        )
        # Arm the watchdog before anything can run away: its deadline —
        # the tighter of the request's own and the server wall budget —
        # replaces the plain seconds so the board (or the budgets) can
        # cancel the run externally through the established path.
        sentinel = self.sentinels.watch(
            query.query_id or "", options.deadline_seconds
        )
        run_options = options
        if sentinel is not None:
            run_options = options.replace(deadline_seconds=sentinel.deadline)
        try:
            self._apply_chaos(query, sentinel, resident.name, texts, options)
            response = self._run_query(
                query, resident, texts, patterns, options, run_options, queue_wait
            )
        except Exception as exc:
            if isinstance(exc, WorkerCrashError) or (
                sentinel is not None and sentinel.tripped
            ):
                breaker.record_failure()
            raise
        finally:
            self.sentinels.finish(query.query_id or "")
        tripped = sentinel.tripped if sentinel is not None else None
        if tripped is None and sentinel is not None and response.get("partial"):
            # The run degraded without a poll-time trip: a wall-budget
            # overrun the sampler never sampled still gets attributed.
            tripped = sentinel.check(None)
            if tripped is not None:
                self.metrics.add(f"serve.sentinel.trip.{tripped}")
            elif sentinel.deadline.expiry_reason is not None:
                tripped = sentinel.deadline.expiry_reason
        if tripped is not None:
            breaker.record_failure()
            response = dict(response)
            response["sentinel"] = tripped
        else:
            breaker.record_success()
        return response

    def _apply_chaos(
        self,
        query: Query,
        sentinel,
        graph: str,
        texts: list,
        options: RunOptions,
    ) -> None:
        """Fire this query's injected fault (chaos harness only).

        ``crash`` raises a :class:`WorkerCrashError` (the typed shape a
        real pool-worker death surfaces as); ``slow`` sleeps; ``hang``
        wedges until the sentinel's deadline releases it — exactly the
        runaway a production sentinel exists to cancel. Wire-level
        kinds (``corrupt``/``torn-socket``) are applied by the socket
        handler, not here.
        """
        chaos = query.request.get("_chaos")
        if chaos is None:
            return
        spec, attempt = chaos
        if spec.kind == "crash":
            exc = WorkerCrashError(
                f"injected chaos crash (attempt {attempt})",
                attempts=attempt + 1,
            )
            self._record_flight(
                query,
                graph,
                texts,
                options,
                status="error",
                error=f"WorkerCrashError: {exc}",
            )
            raise exc
        if spec.kind == "slow":
            time.sleep(spec.seconds)
        elif spec.kind == "hang":
            stop = sentinel.deadline if sentinel is not None else query.deadline
            if stop is None:
                raise ValueError(
                    "a 'hang' chaos fault needs a wall budget or deadline "
                    "to release it — configure one for this server"
                )
            while not stop.expired():
                time.sleep(0.005)

    def _run_query(
        self,
        query: Query,
        resident,
        texts: list,
        patterns: list,
        options: RunOptions,
        run_options: RunOptions,
        queue_wait: float,
    ) -> dict:
        """Cache check + session run + response build for one query."""
        request = query.request
        use_cache = self.result_cache_enabled and bool(
            request.get("use_result_cache", True)
        )
        key = self._cache_key(resident.graph.fingerprint, texts, options)
        if use_cache:
            with self._lock:
                hit = self._result_cache.get(key)
            if hit is not None:
                self.metrics.add("serve.result_cache.hits")
                response = dict(hit)
                response["cached"] = True
                response["query_id"] = query.query_id
                self._observe_first_result(query)
                self._record_flight(
                    query,
                    resident.name,
                    texts,
                    options,
                    status="ok",
                    cached=True,
                    queue_wait=queue_wait,
                )
                return response
            self.metrics.add("serve.result_cache.misses")

        tracer = Tracer(
            tags={"query_id": query.query_id} if query.query_id else None
        )
        from repro.api import resolve_engine

        engine = resolve_engine(options.engine, fresh=True)
        try:
            with tracer.span(
                "serve.query",
                graph=resident.name,
                client=query.client,
                engine=options.engine,
                patterns=len(patterns),
            ):
                session = MorphingSession(
                    engine,
                    options=run_options.replace(
                        trace=tracer,
                        plan_cache=self.plan_cache,
                        cache=self._measurement_cache(resident.name),
                    ),
                )
                result = session.run(resident.graph, patterns)
        except Exception as exc:
            # Retain the failure's trace before the scheduler converts
            # the exception into an error response.
            self._record_flight(
                query,
                resident.name,
                texts,
                options,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                queue_wait=queue_wait,
                tracer=tracer,
            )
            raise
        engine_label = str(options.engine)
        with self._lock:
            self.metrics.merge(tracer.metrics)
            self.metrics.add("serve.queries")
            self.metrics.observe(
                f"serve.stage.plan.{engine_label}", result.transform_seconds
            )
            self.metrics.observe(
                f"serve.stage.match.{engine_label}", result.match_seconds
            )
            self.metrics.observe(
                f"serve.stage.convert.{engine_label}", result.convert_seconds
            )
        self._observe_first_result(query)

        partial = isinstance(result, PartialRunResult)
        response: dict[str, Any] = {
            "ok": True,
            "results": {
                text: protocol.encode_value(result.results.get(pattern))
                for text, pattern in zip(texts, patterns)
            },
            "cached": False,
            "partial": partial,
            "query_id": query.query_id,
            "seconds": {
                "transform": result.transform_seconds,
                "match": result.match_seconds,
                "convert": result.convert_seconds,
                "executor": result.executor_seconds,
                "total": result.total_seconds,
            },
            "metrics": {
                name: tracer.metrics.value(name)
                for name in _RESPONSE_METRICS
                if tracer.metrics.value(name, None) is not None
            },
        }
        if partial:
            response["coverage"] = result.coverage
            response["unresolved"] = [format_pattern(p) for p in result.unresolved]
        elif use_cache:
            # Partial results never enter the cache: a later identical
            # query without deadline pressure deserves the full answer.
            # The fresh query_id is stripped with the cached flag — a
            # repeat query gets its own id stamped on the hit path.
            with self._lock:
                self._result_cache[key] = {
                    k: v
                    for k, v in response.items()
                    if k not in ("cached", "query_id")
                }
        self._record_flight(
            query,
            resident.name,
            texts,
            options,
            status="partial" if partial else "ok",
            queue_wait=queue_wait,
            tracer=tracer,
        )
        return response

    def _observe_first_result(self, query: Query) -> None:
        """Record admission-to-first-result latency for ``query``."""
        if query.submitted_at is None:
            return
        with self._lock:
            self.metrics.observe(
                "serve.latency.first_result",
                max(0.0, self.scheduler.clock() - query.submitted_at),
            )

    def _record_flight(
        self,
        query: Query,
        graph: str,
        texts: list,
        options: RunOptions,
        status: str,
        *,
        cached: bool = False,
        error: str | None = None,
        queue_wait: float = 0.0,
        tracer: Tracer | None = None,
    ) -> FlightRecord:
        """Retain one completed query in the flight recorder.

        The cost-model-based slowness verdict compares the selection
        audit's measured match seconds against its predicted cost
        scaled by the engine profile's calibrated ``unit_seconds`` —
        the same audit PR 3 emits offline, reused as an online SLO.
        """
        predicted_cost = predicted_seconds = measured_seconds = None
        if tracer is not None:
            selection = next(
                (
                    audit
                    for audit in tracer.audits
                    if getattr(audit, "role", None) == "selection"
                ),
                None,
            )
            if selection is not None:
                predicted_cost = float(selection.predicted_cost)
                predicted_seconds = (
                    predicted_cost * profile_for(str(options.engine)).unit_seconds
                )
                measured_seconds = float(selection.measured_seconds)
        seconds = 0.0
        if query.submitted_at is not None:
            seconds = max(0.0, self.scheduler.clock() - query.submitted_at)
        trace = None
        if tracer is not None:
            trace = RunTrace.from_tracer(
                tracer,
                query_id=query.query_id,
                client=query.client,
                graph=graph,
                engine=str(options.engine),
            )
        record = self.flight.record(
            FlightRecord(
                query_id=query.query_id or "",
                client=query.client,
                graph=graph,
                engine=str(options.engine),
                patterns=[str(t) for t in texts],
                status=status,
                cached=cached,
                seconds=seconds,
                queue_wait=queue_wait,
                predicted_cost=predicted_cost,
                predicted_seconds=predicted_seconds,
                measured_seconds=measured_seconds,
                error=error,
                trace=trace,
            )
        )
        if record.slow:
            self.metrics.add("serve.slow_queries")
        return record

    @staticmethod
    def _cache_key(fingerprint: str, texts: list, options: RunOptions) -> tuple:
        """Result-cache identity: everything that can change the answer.

        ``deadline_seconds`` is excluded deliberately — a deadline
        changes *whether* the full answer arrives, not what it is, and
        partial results are never cached. Local-only fields can't occur
        here (options arrived via ``from_dict``).
        """
        aggregation = options.aggregation
        if aggregation is not None and not isinstance(aggregation, str):
            aggregation = aggregation.name
        return (
            fingerprint,
            tuple(str(t) for t in texts),
            aggregation or "count",
            options.engine,
            options.strategy,
            options.morph,
            options.margin,
            options.workers,
            options.batch_roots,
        )

    def _measurement_cache(self, graph_name: str) -> MeasurementCache:
        """The per-graph measurement cache (created on first use)."""
        with self._lock:
            cache = self._measurement_caches.get(graph_name)
            if cache is None:
                cache = self._measurement_caches[graph_name] = MeasurementCache()
            return cache

    def _on_breaker_transition(self, cell: str, old: str, new: str) -> None:
        """Record one circuit-breaker state change (metric + anomaly)."""
        self.metrics.add(f"serve.breaker.transition.{new}")
        self.flight.note("breaker", f"{cell}: {old} -> {new}")

    # -- drain and warm restart ----------------------------------------------

    @property
    def drain_state(self) -> str:
        """Service lifecycle state: ``accepting``/``draining``/``closed``."""
        with self._lock:
            return self._drain_state

    def drain(self, dump_dir: str | None = None) -> dict:
        """Graceful stop: finish in-flight work, persist, then close.

        The SIGTERM path (and the ``drain`` op). State machine:
        ``accepting`` → ``draining`` (submissions rejected with
        ``rejected:draining``, queued/executing queries run to
        completion under ``drain_deadline_s``) → ``closed`` (listener
        down, every :class:`SharedGraphPayload` disposed). Before
        closing, the flight recorder is dumped (to ``dump_dir`` or a
        temp directory) and — when ``state_path`` is configured — the
        registry manifest and result-cache journal are saved so
        ``repro serve --resume`` reboots warm. Idempotent: a second
        call reports the current state without re-draining.
        """
        with self._lock:
            if self._drain_state != "accepting":
                return {"state": self._drain_state, "drained": False}
            self._drain_state = "draining"
        self.metrics.add("serve.drain.started")
        self.flight.note("drain", "drain started")
        self.scheduler.set_draining(True)
        deadline = Deadline(self.drain_deadline_s, clock=self.scheduler.clock)
        drained = True
        while self.scheduler.total_inflight() > 0:
            if deadline.expired():
                drained = False
                break
            time.sleep(0.01)
        summary: dict[str, Any] = {
            "drained": drained,
            "abandoned": self.scheduler.total_inflight(),
        }
        self.flight.note(
            "drain",
            "drained clean" if drained else
            f"drain deadline expired with {summary['abandoned']} in flight",
        )
        directory, files = self.dump_flight(dump_dir)
        summary["flight_dir"] = directory
        summary["flight_files"] = len(files)
        if self.state_path is not None:
            try:
                entries = save_service_state(
                    self.state_path,
                    graphs=self.registry.names(),
                    result_cache=dict(self._result_cache),
                    meta={"drained": drained},
                )
                summary["state_entries"] = entries
                self.metrics.add("serve.drain.state_saved")
            except OSError as exc:
                warnings.warn(
                    f"could not persist service state to "
                    f"{self.state_path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                summary["state_error"] = str(exc)
        self.close()
        with self._lock:
            self._drain_state = "closed"
        summary["state"] = "closed"
        return summary

    def resume_from(self, path: str) -> dict:
        """Warm-restart from a drain journal written by :meth:`drain`.

        Reloads every graph named in the manifest (failures warn and
        skip — a path that vanished between incarnations must not stop
        the daemon booting) and installs the persisted result-cache
        entries. Keys embed the graph fingerprint, so entries for a
        graph whose data changed simply never match again.
        """
        state = load_service_state(path)
        loaded: list[str] = []
        failed: list[str] = []
        for name in state.graphs:
            try:
                self.registry.load(name)
                loaded.append(name)
            except Exception as exc:  # noqa: BLE001 - boot must proceed
                warnings.warn(
                    f"could not re-load resident graph {name!r} on resume: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                failed.append(name)
        with self._lock:
            self._result_cache.update(state.results)
        self.metrics.add("serve.resume.graphs", len(loaded))
        self.metrics.add("serve.resume.results", len(state.results))
        if state.skipped:
            self.metrics.add("serve.resume.skipped_records", state.skipped)
        return {
            "graphs": loaded,
            "failed": failed,
            "results": len(state.results),
            "skipped_records": state.skipped,
        }

    # -- socket front-end ----------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind the TCP listener and spin up the worker threads.

        Returns the bound ``(host, port)`` — with ``port=0`` the OS
        picks a free port, so parallel test runs never collide.
        """
        if self._tcp is not None:
            return self.host, self.port
        if self.sweep_on_start:
            # Reclaim shared-memory segments a SIGKILLed predecessor
            # daemon left in /dev/shm (warns with the segment names).
            from repro.engines.execution import sweep_stale_segments

            swept = sweep_stale_segments()
            if swept:
                self.metrics.add("serve.segments.swept", len(swept))
        self._started = self.scheduler.clock()
        self._stop.clear()
        self._closed.clear()
        self._tcp = _TCPServer((self.host, self.port), _Handler, self)
        self.host, self.port = self._tcp.server_address[:2]
        listener = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-listener",
            daemon=True,
        )
        listener.start()
        self._threads = [listener]
        self._worker_threads = []
        for index in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._worker_threads.append(worker)
        self._threads.extend(self._worker_threads)
        if self.sample_interval > 0:
            sampler = threading.Thread(
                target=self._sampler_loop,
                name="repro-serve-sampler",
                daemon=True,
            )
            sampler.start()
            self._threads.append(sampler)
        return self.host, self.port

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if not self.scheduler.run_next(self._execute, timeout=0.1):
                continue

    def _sampler_loop(self) -> None:
        """Periodic queue-depth sampling (the satellite to admission-time
        gauging): keeps the window gauge's envelope honest when the
        queue drains or bursts between protocol requests. The same beat
        polls the sentinel board, so wall/RSS budget overruns are
        detected within one sample interval."""
        while not self._stop.wait(self.sample_interval):
            self.scheduler.sample_depth()
            for query_id, reason in self.sentinels.poll():
                self.metrics.add(f"serve.sentinel.trip.{reason}")
                self.flight.note("sentinel-trip", f"{query_id}: {reason}")

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`close` runs (the ``repro serve`` main loop)."""
        return self._closed.wait(timeout)

    def close(self) -> None:
        """Stop listening, drain workers, release graphs and segments.

        Idempotent and safe to race: the shutdown op's handler thread
        and the ``repro serve`` main loop both call it.
        """
        self._stop.set()
        self._closed.set()
        with self._lock:
            tcp, self._tcp = self._tcp, None
            self._drain_state = "closed"
        if tcp is not None:
            tcp.shutdown()
            tcp.server_close()
        self.scheduler.close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5)
        self._threads = []
        self._worker_threads = []
        self.registry.close()

    def __enter__(self) -> "MiningServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _TCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP server carrying a back-reference to the daemon."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, mining_server: MiningServer) -> None:
        self.mining_server = mining_server
        super().__init__(address, handler)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a loop of request → :meth:`MiningServer.handle`.

    Protocol errors are *answered*, not dropped: a torn or non-JSON
    request line gets a typed ``protocol-error`` response (and a
    flight-recorder anomaly) before the connection closes — a client
    whose serializer glitched learns so, instead of staring at a
    silently closed socket. The stream state after a bad line is
    unknowable, so the connection still ends afterwards.
    """

    def handle(self) -> None:
        server: MiningServer = self.server.mining_server  # type: ignore[attr-defined]
        while True:
            try:
                request = protocol.read_message(self.rfile)
            except (ConnectionError, socket.error):
                break
            except ValueError as exc:
                # Malformed request line (bad JSON, non-object, torn
                # UTF-8): typed response, anomaly, then hang up.
                server.metrics.add("serve.protocol.errors")
                server.flight.note(
                    "protocol-error", f"{type(exc).__name__}: {exc}"
                )
                try:
                    protocol.write_message(
                        self.wfile,
                        {
                            "ok": False,
                            "error": (
                                "protocol-error: request line is not a "
                                f"JSON object ({type(exc).__name__}: {exc})"
                            ),
                        },
                    )
                except (ConnectionError, socket.error, BrokenPipeError):
                    pass
                break
            if request is None:
                break
            response = server.handle(request)
            wire_fault = None
            if isinstance(response, dict):
                wire_fault = response.pop("_chaos_wire", None)
            if wire_fault == "torn-socket":
                # Chaos harness: drop the connection without answering.
                break
            try:
                if wire_fault == "corrupt":
                    # Chaos harness: an unparsable response line.
                    self.wfile.write(b"\x00corrupted-response-frame\n")
                    self.wfile.flush()
                else:
                    protocol.write_message(self.wfile, response)
            except (ConnectionError, socket.error, BrokenPipeError):
                break
            if request.get("op") == "shutdown":
                # The ack is on the wire; now the daemon may die.
                threading.Thread(target=server.close, daemon=True).start()
                break
            if request.get("op") == "drain":
                # Ack flushed; drain (and eventually close) off-thread.
                threading.Thread(target=server.drain, daemon=True).start()
                break
