"""``repro top``: a throttled live terminal dashboard for the daemon.

Polls the ``stats`` op at a fixed interval and renders one compact
frame per poll: QPS, end-to-end latency quantiles, queue-depth envelope
(the window gauge), per-engine stage breakdowns, cache hit rates and
the flight recorder's slow-query log. The same injection seams as
:class:`~repro.observe.progress.ProgressReporter` — ``clock``,
``sleep`` and ``stream`` are constructor parameters — so tests drive a
whole session against a fake daemon deterministically, and the frame
builder (:meth:`TopDashboard.render`) is a pure function of two stats
snapshots.

QPS is a *rate between polls*: ``Δ serve.queries / Δ uptime``, not the
lifetime average — a daemon that served a burst an hour ago shows 0.0,
which is what an operator watching a live service wants.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, TextIO

from repro.serve.client import Client

__all__ = ["TopDashboard"]

#: ANSI clear-screen + home, used only when the stream is a TTY.
_CLEAR = "\x1b[H\x1b[2J"


def _fmt_seconds(value: Any) -> str:
    """Human-scale duration: µs/ms/s picked by magnitude."""
    if value is None:
        return "-"
    value = float(value)
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _quantile_line(label: str, summary: dict[str, Any] | None) -> str:
    if not summary or not summary.get("count"):
        return f"  {label:<14} (no samples)"
    return (
        f"  {label:<14} p50 {_fmt_seconds(summary.get('p50')):>8}  "
        f"p90 {_fmt_seconds(summary.get('p90')):>8}  "
        f"p99 {_fmt_seconds(summary.get('p99')):>8}  "
        f"max {_fmt_seconds(summary.get('max')):>8}  "
        f"n={summary['count']}"
    )


class TopDashboard:
    """Live stats viewer over one :class:`~repro.serve.Client`.

    ``interval`` throttles polling (and therefore the daemon-side work:
    each frame is exactly one ``stats`` request). ``iterations`` bounds
    the run for scripting/CI (``None`` polls until interrupted).
    """

    def __init__(
        self,
        client: Client,
        interval: float = 1.0,
        stream: TextIO | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.client = client
        self.interval = interval
        self.stream = stream if stream is not None else sys.stdout
        self.clock = clock
        self.sleep = sleep
        self._previous: dict[str, Any] | None = None
        self.frames = 0

    # -- frame building (pure) ----------------------------------------------

    def render(self, stats: dict[str, Any]) -> str:
        """One dashboard frame from a ``stats`` snapshot.

        Pure: rates are computed against the previously rendered
        snapshot (held on the instance), everything else is read from
        ``stats`` alone.
        """
        metrics = stats.get("metrics", {})
        histograms = stats.get("histograms", {})
        queue = stats.get("queue", {})
        flight = stats.get("flight", {})
        plan_cache = stats.get("plan_cache", {})
        uptime = float(stats.get("uptime_seconds", 0.0))
        queries = float(metrics.get("serve.queries", 0))

        qps = None
        if self._previous is not None:
            prev_uptime = float(self._previous.get("uptime_seconds", 0.0))
            prev_queries = float(
                self._previous.get("metrics", {}).get("serve.queries", 0)
            )
            dt = uptime - prev_uptime
            if dt > 0:
                qps = max(0.0, queries - prev_queries) / dt
        elif uptime > 0:
            qps = queries / uptime

        lines = [
            f"repro top — {self.client.host}:{self.client.port}   "
            f"up {uptime:.1f}s   "
            f"schema v{stats.get('schema_version', '?')}",
            f"queries {queries:.0f}"
            + (f" ({qps:.2f}/s)" if qps is not None else "")
            + f"   slow {metrics.get('serve.slow_queries', 0):.0f}"
            + f"   queue {queue.get('last', '-')}"
            + (
                f" (min {queue.get('min')} / max {queue.get('max')}, "
                f"{queue.get('samples', 0)} samples)"
                if queue.get("last") is not None
                else ""
            ),
            "latency:",
            _quantile_line("total", histograms.get("serve.latency.total")),
            _quantile_line("queue_wait", histograms.get("serve.latency.queue_wait")),
            _quantile_line(
                "first_result", histograms.get("serve.latency.first_result")
            ),
        ]

        engines = sorted(
            {
                name.rsplit(".", 1)[-1]
                for name in histograms
                if name.startswith("serve.stage.match.")
            }
        )
        if engines:
            lines.append("per-engine match / plan / convert (p50):")
            for engine in engines:
                match = histograms.get(f"serve.stage.match.{engine}", {})
                plan = histograms.get(f"serve.stage.plan.{engine}", {})
                convert = histograms.get(f"serve.stage.convert.{engine}", {})
                lines.append(
                    f"  {engine:<12} "
                    f"{_fmt_seconds(match.get('p50')):>8} / "
                    f"{_fmt_seconds(plan.get('p50')):>8} / "
                    f"{_fmt_seconds(convert.get('p50')):>8}"
                    f"   n={match.get('count', 0)}"
                )

        hits = metrics.get("serve.result_cache.hits", 0)
        misses = metrics.get("serve.result_cache.misses", 0)
        lines.append(
            f"caches: result {hits:.0f} hit / {misses:.0f} miss   "
            f"plan {plan_cache.get('hits', 0)} hit / "
            f"{plan_cache.get('misses', 0)} miss"
        )
        lines.append(
            f"flight: {flight.get('recent', 0)}/{flight.get('capacity', 0)} "
            f"recent, {flight.get('anomalies', 0)} anomalies "
            f"(slow > {flight.get('slow_factor', '?')}x predicted)"
        )

        # Robustness sections are schema-v3; older daemons (and v2 test
        # fixtures) simply omit them, so every read is .get-guarded.
        service = stats.get("service") or {}
        shed = stats.get("shed") or {}
        sentinels = stats.get("sentinels") or {}
        if service or shed or sentinels:
            state = service.get("state", "?")
            shed_total = shed.get("shed_total", 0)
            slo = shed.get("slo_p99")
            line = f"service: {state}   shed {shed_total}"
            by_reason = shed.get("by_reason") or {}
            if by_reason:
                detail = ", ".join(
                    f"{reason} {count}"
                    for reason, count in sorted(by_reason.items())
                )
                line += f" ({detail})"
            line += f"   slo p99 {_fmt_seconds(slo) if slo is not None else '-'}"
            trips = sentinels.get("trips", 0)
            if isinstance(trips, dict):
                trips = sum(trips.values())
            line += (
                f"   sentinels {sentinels.get('active', 0)} active / "
                f"{trips} trips"
            )
            lines.append(line)
        breakers = stats.get("breakers") or {}
        if breakers:
            lines.append("breakers:")
            for cell, breaker in sorted(breakers.items()):
                state = breaker.get("state", "?")
                marker = {"closed": " ", "half-open": "~", "open": "!"}.get(
                    state, "?"
                )
                lines.append(
                    f"  {marker} {cell:<24} {state:<10} "
                    f"fails {breaker.get('consecutive_failures', 0)}/"
                    f"{breaker.get('failure_threshold', '?')}  "
                    f"transitions {breaker.get('transitions', 0)}"
                )
        anomalies = flight.get("recent_anomalies") or []
        if anomalies:
            lines.append("slow/failed queries:")
            for record in anomalies[-5:]:
                ratio = record.get("cost_ratio")
                detail = (
                    f"{ratio:.1f}x predicted"
                    if isinstance(ratio, (int, float)) and record.get("slow")
                    else record.get("status", "?")
                )
                error = record.get("error")
                if error:
                    detail += f"  {error}"
                lines.append(
                    f"  {record.get('query_id', '?'):<10} "
                    f"{record.get('engine', '?'):<10} "
                    f"{_fmt_seconds(record.get('seconds')):>8}  {detail}"
                )
        return "\n".join(lines) + "\n"

    # -- live loop -----------------------------------------------------------

    def tick(self) -> str:
        """Poll once, render one frame to the stream, return the frame."""
        stats = self.client.stats()
        frame = self.render(stats)
        self._previous = stats
        self.frames += 1
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write(_CLEAR)
        elif self.frames > 1:
            self.stream.write("\n")
        self.stream.write(frame)
        self.stream.flush()
        return frame

    def run(self, iterations: int | None = None) -> int:
        """Poll/render until ``iterations`` frames (or Ctrl-C); returns
        the number of frames rendered."""
        rendered = 0
        try:
            while iterations is None or rendered < iterations:
                self.tick()
                rendered += 1
                if iterations is not None and rendered >= iterations:
                    break
                self.sleep(self.interval)
        except KeyboardInterrupt:
            pass
        return rendered
