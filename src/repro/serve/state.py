"""Service state persistence: drain to disk, reboot warm.

A graceful drain is only half of a restart story — the daemon's value
is its *warm state* (resident graphs, a result cache full of answered
queries), and losing it on every deploy means every restart is a cold
start for every client. This module persists the recoverable subset of
that state as a JSONL journal at drain time and reloads it on
``repro serve --resume``:

* the **registry manifest** — the *names* the resident graphs were
  loaded under (dataset names/codes or edge-list paths), which is all
  :meth:`~repro.serve.registry.GraphRegistry.load` needs to rebuild
  them; the CSR arrays and shared-memory segments themselves are
  process-lifetime objects and are deliberately rebuilt, not serialized;
* the **result-cache journal** — every completed (non-partial) response
  keyed by the same (fingerprint, patterns, options) identity the live
  cache uses, so a resumed daemon answers repeat queries from cache
  immediately. Fingerprints ride in the key: a graph whose data changed
  between incarnations simply never matches.

The format is line-oriented JSON with a versioned meta header, so a
partially written journal (the daemon died mid-flush) degrades to
"fewer cache entries", never to corruption: each line is parsed
independently and bad lines are counted and skipped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ServiceState", "load_service_state", "save_service_state"]

SERVICE_STATE_VERSION = 1

#: Cache-key tuple fields, in tuple order (mirrors
#: ``MiningServer._cache_key``). The wire form is a dict keyed by these
#: names so the journal stays self-describing and diffable.
_KEY_FIELDS = (
    "fingerprint",
    "patterns",
    "aggregation",
    "engine",
    "strategy",
    "morph",
    "margin",
    "workers",
    "batch_roots",
)


def cache_key_to_wire(key: tuple) -> dict[str, Any]:
    """The dict (JSON) form of one result-cache key tuple."""
    if len(key) != len(_KEY_FIELDS):
        raise ValueError(
            f"cache key has {len(key)} fields, expected {len(_KEY_FIELDS)}"
        )
    wire = dict(zip(_KEY_FIELDS, key))
    wire["patterns"] = list(wire["patterns"])
    return wire


def wire_to_cache_key(wire: Mapping[str, Any]) -> tuple:
    """Rebuild the cache-key tuple from its :func:`cache_key_to_wire` form."""
    missing = [name for name in _KEY_FIELDS if name not in wire]
    if missing:
        raise ValueError(f"cache key missing field(s): {', '.join(missing)}")
    values = dict(wire)
    values["patterns"] = tuple(str(p) for p in values["patterns"])
    return tuple(values[name] for name in _KEY_FIELDS)


@dataclass
class ServiceState:
    """One loaded (or about-to-be-saved) service-state journal."""

    meta: dict[str, Any] = field(default_factory=dict)
    #: Graph names in registry-load order.
    graphs: list[str] = field(default_factory=list)
    #: Result-cache entries: key tuple -> cached response payload.
    results: dict[tuple, dict] = field(default_factory=dict)
    #: Journal lines that failed to parse on load (corruption tally).
    skipped: int = 0


def save_service_state(
    path: str,
    graphs: list[str],
    result_cache: Mapping[tuple, dict],
    meta: Mapping[str, Any] | None = None,
) -> int:
    """Write the journal atomically; the number of entries written.

    Atomic via write-to-temp + ``os.replace``, so a crash mid-save
    leaves the previous journal intact rather than a truncated one.
    """
    header: dict[str, Any] = {
        "kind": "meta",
        "version": SERVICE_STATE_VERSION,
        "graphs": len(graphs),
        "results": len(result_cache),
    }
    if meta:
        header.update(meta)
    tmp_path = f"{path}.tmp"
    entries = 0
    with open(tmp_path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for name in graphs:
            fh.write(
                json.dumps({"kind": "graph", "name": name}, sort_keys=True)
                + "\n"
            )
            entries += 1
        for key, response in result_cache.items():
            record = {
                "kind": "result",
                "key": cache_key_to_wire(key),
                "response": response,
            }
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            entries += 1
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return entries


def load_service_state(path: str) -> ServiceState:
    """Parse a journal; tolerant of torn tails (bad lines are counted).

    Raises :class:`FileNotFoundError` when the journal does not exist —
    resuming from nothing is a caller decision, not a silent no-op —
    and :class:`ValueError` when the version header is from a future
    incarnation of the format.
    """
    state = ServiceState()
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("journal line is not an object")
            kind = record.get("kind")
            if kind == "meta":
                version = int(record.get("version", -1))
                if version > SERVICE_STATE_VERSION:
                    raise _FutureVersion(
                        f"service state journal version {version} is newer "
                        f"than supported ({SERVICE_STATE_VERSION})"
                    )
                state.meta = {
                    k: v for k, v in record.items() if k != "kind"
                }
            elif kind == "graph":
                state.graphs.append(str(record["name"]))
            elif kind == "result":
                key = wire_to_cache_key(record["key"])
                response = record["response"]
                if not isinstance(response, dict):
                    raise ValueError("result response is not an object")
                state.results[key] = response
            else:
                raise ValueError(f"unknown journal record kind {kind!r}")
        except _FutureVersion:
            raise
        except (ValueError, KeyError, TypeError):
            state.skipped += 1
            continue
    return state


class _FutureVersion(ValueError):
    """A journal written by a newer format version (never skipped)."""
