"""Per-query resource sentinels: no query may wedge the daemon.

A resident service lives or dies by isolation: one runaway query — a
pattern that explodes combinatorially, a hang injected by the chaos
harness, a slow engine on a huge graph — must cost *its own* budget,
never a worker thread forever. PR 5 already built the cancellation
machinery (:class:`repro.Deadline` flows into ``RunControl`` and stops
shard dispatch at the next boundary, returning the established
``PartialRunResult`` / typed-error shapes); the sentinel layer arms it
per query and adds the trigger the batch layer never needed: an
**external** watchdog that can expire the deadline from outside the
run.

Each executing query gets a :class:`QuerySentinel` owning a live
:class:`~repro.engines.recovery.Deadline` (injectable clock) that the
server threads through ``RunOptions.deadline_seconds`` into the
session. The sentinel enforces two budgets:

* a **wall-clock budget** — baked into the deadline itself (the
  effective deadline is the tighter of the request's own deadline and
  the server's wall budget), so the run self-cancels at the next shard
  boundary with zero polling;
* an **RSS-growth budget** — the server's sampler loop polls
  :meth:`SentinelBoard.poll` with the process RSS; a query whose
  watch-interval growth exceeds the budget is tripped via
  :meth:`~repro.engines.recovery.Deadline.expire`, which the running
  session observes exactly like a deadline expiry.

Trips are recorded with a reason (``wall-budget`` / ``rss-budget``) so
the server can tag responses, metrics and flight-recorder anomalies,
and feed the circuit breaker.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable

from repro.engines.recovery import Deadline

__all__ = ["QuerySentinel", "SentinelBoard"]

#: Stand-in horizon when only the RSS budget needs a cancellable
#: deadline (about 31,000 years — "no wall limit" in practice).
_FAR_FUTURE_SECONDS = 1e12


def process_rss_bytes() -> int | None:
    """Current process resident-set size; ``None`` when unreadable.

    Reads ``/proc/self/statm`` (POSIX) — no psutil dependency. The
    board's ``rss_reader`` is injectable, so tests feed synthetic RSS
    trajectories instead.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


class QuerySentinel:
    """Watchdog for one executing query.

    Owns the live :class:`Deadline` the run is cancelled through.
    :meth:`check` is called by the board's poll with the current RSS;
    the first budget violation trips the sentinel (idempotent) by
    expiring the deadline with the trip reason.
    """

    def __init__(
        self,
        query_id: str,
        deadline: Deadline,
        clock: Callable[[], float],
        wall_budget_s: float | None = None,
        rss_budget_bytes: int | None = None,
        rss_start: int | None = None,
    ) -> None:
        self.query_id = query_id
        self.deadline = deadline
        self.clock = clock
        self.wall_budget_s = wall_budget_s
        self.rss_budget_bytes = rss_budget_bytes
        self.rss_start = rss_start
        self.started_at = clock()
        self.tripped: str | None = None

    def trip(self, reason: str) -> None:
        """Cancel the query now (idempotent; first reason wins)."""
        if self.tripped is None:
            self.tripped = reason
            self.deadline.expire(reason)

    def check(self, rss: int | None = None) -> str | None:
        """Evaluate budgets; the trip reason if this call tripped it.

        The wall check uses the sentinel's own clock, so tests advance a
        fake clock instead of sleeping. The RSS check needs all three of
        a budget, a baseline, and a current sample to fire — partial
        information never cancels work.
        """
        if self.tripped is not None:
            return None
        if (
            self.wall_budget_s is not None
            and self.clock() - self.started_at > self.wall_budget_s
        ):
            self.trip("wall-budget")
            return "wall-budget"
        if (
            self.rss_budget_bytes is not None
            and self.rss_start is not None
            and rss is not None
            and rss - self.rss_start > self.rss_budget_bytes
        ):
            self.trip("rss-budget")
            return "rss-budget"
        return None

    def describe(self) -> dict[str, Any]:
        """Wire-safe summary row."""
        return {
            "query_id": self.query_id,
            "elapsed_s": self.clock() - self.started_at,
            "wall_budget_s": self.wall_budget_s,
            "rss_budget_bytes": self.rss_budget_bytes,
            "tripped": self.tripped,
        }


class SentinelBoard:
    """Registry of active sentinels plus the budgets they enforce.

    ``wall_budget_s`` / ``rss_budget_bytes`` are the server-wide
    defaults (``None`` disables that budget). :meth:`watch` arms a
    sentinel for a starting query and returns it — or ``None`` when
    there is nothing to enforce (no budgets, no request deadline), so
    the unguarded fast path stays exactly as before.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        wall_budget_s: float | None = None,
        rss_budget_bytes: int | None = None,
        rss_reader: Callable[[], int | None] = process_rss_bytes,
    ) -> None:
        if wall_budget_s is not None and wall_budget_s <= 0:
            raise ValueError(
                f"wall_budget_s must be positive, got {wall_budget_s!r}"
            )
        if rss_budget_bytes is not None and rss_budget_bytes <= 0:
            raise ValueError(
                f"rss_budget_bytes must be positive, got {rss_budget_bytes!r}"
            )
        self.clock = clock
        self.wall_budget_s = wall_budget_s
        self.rss_budget_bytes = rss_budget_bytes
        self.rss_reader = rss_reader
        self._active: dict[str, QuerySentinel] = {}
        self._lock = threading.Lock()
        self._trips: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------

    def watch(
        self, query_id: str, deadline_seconds: float | None = None
    ) -> QuerySentinel | None:
        """Arm a sentinel for a query that is starting to execute.

        The sentinel's deadline is the tighter of the request's own
        ``deadline_seconds`` and the server wall budget; with neither
        (and no RSS budget) no sentinel is armed.
        """
        candidates = [
            s for s in (deadline_seconds, self.wall_budget_s) if s is not None
        ]
        if not candidates and self.rss_budget_bytes is None:
            return None
        effective = min(candidates) if candidates else _FAR_FUTURE_SECONDS
        sentinel = QuerySentinel(
            query_id,
            Deadline(effective, clock=self.clock),
            clock=self.clock,
            wall_budget_s=self.wall_budget_s,
            rss_budget_bytes=self.rss_budget_bytes,
            rss_start=(
                self.rss_reader() if self.rss_budget_bytes is not None else None
            ),
        )
        with self._lock:
            self._active[query_id] = sentinel
        return sentinel

    def finish(self, query_id: str) -> QuerySentinel | None:
        """Disarm and return the query's sentinel (``None`` if absent)."""
        with self._lock:
            return self._active.pop(query_id, None)

    # -- polling ------------------------------------------------------------

    def poll(self) -> list[tuple[str, str]]:
        """Check every active sentinel once; the ``(query_id, reason)``
        pairs tripped by *this* poll.

        One RSS sample serves the whole sweep (the budgets are per-query
        but the process RSS is global). Called from the server's sampler
        loop; safe from any thread.
        """
        with self._lock:
            active = list(self._active.values())
        if not active:
            return []
        rss = (
            self.rss_reader() if self.rss_budget_bytes is not None else None
        )
        tripped: list[tuple[str, str]] = []
        for sentinel in active:
            reason = sentinel.check(rss)
            if reason is not None:
                tripped.append((sentinel.query_id, reason))
                with self._lock:
                    self._trips[reason] = self._trips.get(reason, 0) + 1
        return tripped

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Wire-safe board state for the ``stats`` op."""
        with self._lock:
            return {
                "active": len(self._active),
                "wall_budget_s": self.wall_budget_s,
                "rss_budget_bytes": self.rss_budget_bytes,
                "trips": dict(self._trips),
            }
