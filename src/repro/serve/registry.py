"""Resident graph registry: load once, serve every query.

The cold-path cost a resident daemon amortizes away starts with the
graph itself: dataset synthesis/parsing, CSR construction, and — when
queries run sharded — the shared-memory export that lets worker
processes attach the adjacency arrays zero-copy. :class:`GraphRegistry`
does all of that exactly once per graph and keeps the results alive
until :meth:`GraphRegistry.close` disposes the segments.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable

from repro.graph.datagraph import DataGraph

__all__ = ["GraphRegistry", "ResidentGraph"]


class ResidentGraph:
    """One loaded graph plus its (optional) shared-memory export.

    ``payload`` is a :class:`repro.engines.execution.SharedGraphPayload`
    when the platform supports shared memory, else ``None`` (workers
    then receive pickled copies — slower, identical results).
    """

    def __init__(self, name: str, graph: DataGraph, payload=None) -> None:
        self.name = name
        self.graph = graph
        self.payload = payload

    def describe(self) -> dict:
        """Wire-safe summary row for the ``graphs`` op."""
        return {
            "name": self.name,
            "vertices": int(self.graph.num_vertices),
            "edges": int(self.graph.num_edges),
            "fingerprint": self.graph.fingerprint,
            "shared": self.payload is not None,
        }

    def dispose(self) -> None:
        """Release the shared-memory segment (idempotent)."""
        if self.payload is not None:
            self.payload.dispose()
            self.payload = None


class GraphRegistry:
    """Name → :class:`ResidentGraph` map with single-load semantics.

    ``share=True`` (the default) exports each graph's CSR arrays into a
    shared-memory segment at load time, so the *first* sharded query
    pays nothing extra and every later one attaches the same segment.
    The registry owns those segments: :meth:`close` disposes them, and
    tests pin the no-leak contract with
    :func:`repro.engines.execution.assert_no_leaked_segments`.
    """

    def __init__(self, share: bool = True) -> None:
        self.share = share
        self._graphs: dict[str, ResidentGraph] = {}
        self._lock = threading.Lock()

    def add(self, name: str, graph: DataGraph) -> ResidentGraph:
        """Register an already-built graph under ``name``."""
        with self._lock:
            existing = self._graphs.get(name)
            if existing is not None:
                return existing
            payload = None
            if self.share:
                from repro.engines.execution import export_graph

                payload = export_graph(graph)
            resident = ResidentGraph(name, graph, payload)
            self._graphs[name] = resident
            return resident

    def load(self, name: str) -> ResidentGraph:
        """Load ``name`` — a dataset name/code or an edge-list path.

        Idempotent: a name that is already resident is returned as-is
        (the graph is *not* re-read), so concurrent ``load`` requests
        for the same graph cost one load total.
        """
        with self._lock:
            existing = self._graphs.get(name)
        if existing is not None:
            return existing
        graph = self._build(name)
        return self.add(name, graph)

    def _build(self, name: str) -> DataGraph:
        from repro.graph import datasets
        from repro.graph.io import load_edge_list

        try:
            return datasets.load(name)
        except KeyError:
            if os.path.exists(name):
                return load_edge_list(name)
            raise KeyError(
                f"unknown graph {name!r}: not a dataset name/code and "
                "not an edge-list path"
            ) from None

    def get(self, name: str) -> ResidentGraph:
        """The resident graph for ``name``; :class:`KeyError` if absent."""
        with self._lock:
            resident = self._graphs.get(name)
        if resident is None:
            raise KeyError(
                f"graph {name!r} is not resident; load it first "
                f"(resident: {', '.join(sorted(self._graphs)) or 'none'})"
            )
        return resident

    def names(self) -> list[str]:
        """Sorted names of the resident graphs."""
        with self._lock:
            return sorted(self._graphs)

    def describe(self) -> list[dict]:
        """Wire-safe summary of every resident graph."""
        with self._lock:
            residents: Iterable[ResidentGraph] = list(self._graphs.values())
        return [r.describe() for r in sorted(residents, key=lambda r: r.name)]

    def close(self) -> None:
        """Dispose every shared segment and empty the registry."""
        with self._lock:
            residents = list(self._graphs.values())
            self._graphs.clear()
        for resident in residents:
            resident.dispose()

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def __enter__(self) -> "GraphRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
