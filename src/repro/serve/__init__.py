"""Resident mining service: load graphs once, answer many queries.

A cold ``repro.run()`` pays graph construction, plan search and (for
``workers > 1``) process-pool spin-up on every call. The service keeps
all three resident: a :class:`GraphRegistry` holds loaded graphs (with
their shared-memory CSR segments exported once), a server-owned
:class:`repro.PlanCache` / :class:`repro.MeasurementCache` pair carries
planning and measurement work across queries, and a result cache
returns byte-identical payloads for repeat queries without touching the
engines at all.

Topology::

    repro serve  ──  MiningServer (JSON-lines over TCP)
                       ├── GraphRegistry       graphs + shm segments
                       ├── QueryScheduler      priority queue + admission
                       └── worker threads  ──  MorphingSession per query

    repro.connect(port=...)  ──  Client.run(graph, patterns, options)

The wire request schema is :meth:`repro.RunOptions.to_dict` — the same
object that configures an in-process run configures a remote one.
"""

from repro.serve.client import Client, ServeResult, connect
from repro.serve.protocol import decode_value, encode_value
from repro.serve.registry import GraphRegistry, ResidentGraph
from repro.serve.scheduler import AdmissionPolicy, Query, QueryScheduler
from repro.serve.server import MiningServer

__all__ = [
    "AdmissionPolicy",
    "Client",
    "GraphRegistry",
    "MiningServer",
    "Query",
    "QueryScheduler",
    "ResidentGraph",
    "ServeResult",
    "connect",
    "decode_value",
    "encode_value",
]
