"""Resident mining service: load graphs once, answer many queries.

A cold ``repro.run()`` pays graph construction, plan search and (for
``workers > 1``) process-pool spin-up on every call. The service keeps
all three resident: a :class:`GraphRegistry` holds loaded graphs (with
their shared-memory CSR segments exported once), a server-owned
:class:`repro.PlanCache` / :class:`repro.MeasurementCache` pair carries
planning and measurement work across queries, and a result cache
returns byte-identical payloads for repeat queries without touching the
engines at all.

Topology::

    repro serve  ──  MiningServer (JSON-lines over TCP)
                       ├── GraphRegistry       graphs + shm segments
                       ├── QueryScheduler      priority queue + admission
                       └── worker threads  ──  MorphingSession per query

    repro.connect(port=...)  ──  Client.run(graph, patterns, options)

The wire request schema is :meth:`repro.RunOptions.to_dict` — the same
object that configures an in-process run configures a remote one.

Live observability: every run response carries a daemon-minted
``query_id`` stamped into the query's whole span tree, the ``stats``
op returns a versioned snapshot (latency histogram quantiles,
queue-depth window, flight-recorder occupancy — checked by
:func:`validate_stats`), the :class:`FlightRecorder` retains recent
and anomalous query traces for the ``dump`` op / ``SIGUSR1``, and
``repro top <port>`` (:class:`TopDashboard`) renders the whole thing
live.
"""

from repro.serve.client import Client, ServeResult, connect
from repro.serve.flightrecorder import FlightRecord, FlightRecorder
from repro.serve.protocol import decode_value, encode_value, validate_stats
from repro.serve.registry import GraphRegistry, ResidentGraph
from repro.serve.scheduler import AdmissionPolicy, Query, QueryScheduler
from repro.serve.server import MiningServer
from repro.serve.top import TopDashboard

__all__ = [
    "AdmissionPolicy",
    "Client",
    "FlightRecord",
    "FlightRecorder",
    "GraphRegistry",
    "MiningServer",
    "Query",
    "QueryScheduler",
    "ResidentGraph",
    "ServeResult",
    "TopDashboard",
    "connect",
    "decode_value",
    "encode_value",
    "validate_stats",
]
