"""Resident mining service: load graphs once, answer many queries.

A cold ``repro.run()`` pays graph construction, plan search and (for
``workers > 1``) process-pool spin-up on every call. The service keeps
all three resident: a :class:`GraphRegistry` holds loaded graphs (with
their shared-memory CSR segments exported once), a server-owned
:class:`repro.PlanCache` / :class:`repro.MeasurementCache` pair carries
planning and measurement work across queries, and a result cache
returns byte-identical payloads for repeat queries without touching the
engines at all.

Topology::

    repro serve  ──  MiningServer (JSON-lines over TCP)
                       ├── GraphRegistry       graphs + shm segments
                       ├── QueryScheduler      priority queue + admission
                       └── worker threads  ──  MorphingSession per query

    repro.connect(port=...)  ──  Client.run(graph, patterns, options)

The wire request schema is :meth:`repro.RunOptions.to_dict` — the same
object that configures an in-process run configures a remote one.

Live observability: every run response carries a daemon-minted
``query_id`` stamped into the query's whole span tree, the ``stats``
op returns a versioned snapshot (latency histogram quantiles,
queue-depth window, flight-recorder occupancy — checked by
:func:`validate_stats`), the :class:`FlightRecorder` retains recent
and anomalous query traces for the ``dump`` op / ``SIGUSR1``, and
``repro top <port>`` (:class:`TopDashboard`) renders the whole thing
live.

Robustness (schema v3): an adaptive :class:`ShedController` rejects
low-priority work (``rejected:overload`` with a ``retry_after_s`` hint)
when the live p99 breaks its SLO or the queue is deadline-infeasible,
a :class:`SentinelBoard` watches every executing query's wall-clock and
RSS budgets and cancels runaways through the normal deadline path,
per-(graph, engine) :class:`CircuitBreaker` cells fail crash loops fast
(``rejected:circuit-open``), and SIGTERM/:meth:`MiningServer.drain`
stops admission, finishes in-flight work under a drain deadline, dumps
the flight recorder and persists service state so ``repro serve
--resume`` reboots warm. :class:`Client` retries retryable verdicts and
torn connections under the batch layer's seeded-jitter
:class:`repro.RetryPolicy`, with idempotency keys so a retried query
replays the stored answer byte-identically.
"""

from repro.serve.breaker import (
    REJECTED_CIRCUIT_OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.serve.client import Client, ServeRejected, ServeResult, connect
from repro.serve.flightrecorder import FlightRecord, FlightRecorder
from repro.serve.protocol import decode_value, encode_value, validate_stats
from repro.serve.registry import GraphRegistry, ResidentGraph
from repro.serve.scheduler import (
    REJECTED_DRAINING,
    AdmissionPolicy,
    Query,
    QueryScheduler,
)
from repro.serve.sentinel import QuerySentinel, SentinelBoard
from repro.serve.server import MiningServer
from repro.serve.shed import REJECTED_OVERLOAD, ShedController, ShedDecision
from repro.serve.state import (
    ServiceState,
    load_service_state,
    save_service_state,
)
from repro.serve.top import TopDashboard

__all__ = [
    "AdmissionPolicy",
    "BreakerBoard",
    "CircuitBreaker",
    "Client",
    "FlightRecord",
    "FlightRecorder",
    "GraphRegistry",
    "MiningServer",
    "Query",
    "QueryScheduler",
    "QuerySentinel",
    "REJECTED_CIRCUIT_OPEN",
    "REJECTED_DRAINING",
    "REJECTED_OVERLOAD",
    "ResidentGraph",
    "SentinelBoard",
    "ServeRejected",
    "ServeResult",
    "ServiceState",
    "ShedController",
    "ShedDecision",
    "TopDashboard",
    "connect",
    "decode_value",
    "encode_value",
    "load_service_state",
    "save_service_state",
    "validate_stats",
]
