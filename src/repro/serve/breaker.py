"""Per-(graph, engine) circuit breakers: fail fast on a failing cell.

A crash loop is worse than a crash: when a particular graph × engine
combination keeps killing workers (a poisoned dataset, an engine bug, a
chaos-injected crash spec), re-dispatching fresh queries into it burns
worker time, churns process pools, and stretches every other client's
latency. The standard remedy is the circuit breaker — after ``N``
consecutive failures the breaker *opens* and requests fail immediately
with a typed ``rejected:circuit-open`` verdict (cheap, honest,
retryable); after a cool-down one *half-open* probe is let through, and
its outcome decides between closing the breaker and re-opening it.

State machine (clock injectable, no wall-clock reads in tests)::

    CLOSED --[failures >= threshold]--> OPEN
    OPEN   --[reset_seconds elapsed]--> HALF_OPEN   (probes admitted)
    HALF_OPEN --[probe succeeds]------> CLOSED
    HALF_OPEN --[probe fails]---------> OPEN        (cool-down restarts)

:class:`BreakerBoard` keys breakers by ``(graph, engine)`` — failure
isolation at exactly the granularity the execution layer shards on —
and reports every transition through an injectable callback so the
server can mint metrics and flight-recorder anomalies without this
module importing either.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["BreakerBoard", "CircuitBreaker"]

#: Breaker verdict (wire error + admission verdict form).
REJECTED_CIRCUIT_OPEN = "rejected:circuit-open"

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker for one (graph, engine) cell.

    ``allow`` / ``record_success`` / ``record_failure`` are the whole
    protocol: call ``allow`` before dispatching (it also performs the
    OPEN → HALF_OPEN transition when the cool-down has elapsed), then
    report the outcome. Thread-safe; all timing via the injected clock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if reset_seconds <= 0:
            raise ValueError(
                f"reset_seconds must be positive, got {reset_seconds!r}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes!r}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = half_open_probes
        self.clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_inflight = 0
        self._transitions = 0

    # -- state machine ------------------------------------------------------

    def _set_state(self, new_state: str) -> None:
        # Caller holds the lock; the callback runs outside it (below).
        self._pending_transition = (self._state, new_state)
        self._state = new_state
        self._transitions += 1

    def _fire_transition(self) -> None:
        pending = getattr(self, "_pending_transition", None)
        self._pending_transition = None
        if pending is not None and self.on_transition is not None:
            self.on_transition(*pending)

    def allow(self) -> bool:
        """Whether a request may be dispatched into this cell now.

        ``False`` means fail fast with ``rejected:circuit-open``. In
        HALF_OPEN at most ``half_open_probes`` requests are admitted
        concurrently; the rest keep failing fast until a probe reports.
        """
        with self._lock:
            if self._state == OPEN:
                opened_at = self._opened_at if self._opened_at is not None else 0.0
                if self.clock() - opened_at >= self.reset_seconds:
                    self._set_state(HALF_OPEN)
                    self._probes_inflight = 0
                else:
                    return False
            if self._state == HALF_OPEN:
                if self._probes_inflight >= self.half_open_probes:
                    self._fire_transition()
                    return False
                self._probes_inflight += 1
            allowed = True
        self._fire_transition()
        return allowed

    def record_success(self) -> None:
        """Report a successful request; closes a half-open breaker."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._set_state(CLOSED)
                self._probes_inflight = 0
        self._fire_transition()

    def record_failure(self) -> None:
        """Report a failed request; may open (or re-open) the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._set_state(OPEN)
                self._opened_at = self.clock()
                self._probes_inflight = 0
        self._fire_transition()

    # -- introspection ------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            return self._state

    def retry_after(self) -> float | None:
        """Seconds until the cool-down admits a probe; ``None`` unless OPEN."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return None
            return max(
                0.0, self.reset_seconds - (self.clock() - self._opened_at)
            )

    def snapshot(self) -> dict[str, Any]:
        """Wire-safe breaker state."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_seconds": self.reset_seconds,
                "transitions": self._transitions,
            }


class BreakerBoard:
    """Lazy ``(graph, engine)`` → :class:`CircuitBreaker` map.

    ``on_transition(key, old, new)`` (injectable) observes every state
    change of every breaker; the server uses it to record metrics and
    flight-recorder anomalies. All breakers share one configuration and
    one clock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = half_open_probes
        self.clock = clock
        self.on_transition = on_transition
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key_str(key: tuple[str, str]) -> str:
        return f"{key[0]}/{key[1]}"

    def get(self, graph: str, engine: str) -> CircuitBreaker:
        """The breaker for one cell, created closed on first use."""
        key = (graph, engine)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                callback = None
                if self.on_transition is not None:
                    label = self._key_str(key)
                    outer = self.on_transition

                    def callback(old: str, new: str, _label=label) -> None:
                        outer(_label, old, new)

                breaker = CircuitBreaker(
                    failure_threshold=self.failure_threshold,
                    reset_seconds=self.reset_seconds,
                    half_open_probes=self.half_open_probes,
                    clock=self.clock,
                    on_transition=callback,
                )
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> dict[str, Any]:
        """Wire-safe map ``"graph/engine" -> breaker state`` (stats op)."""
        with self._lock:
            cells = dict(self._breakers)
        return {
            self._key_str(key): breaker.snapshot()
            for key, breaker in sorted(cells.items())
        }
