"""Adaptive load shedding: reject what the daemon cannot serve in time.

Admission control (PR 8) bounds *how much* work may queue; it says
nothing about whether the daemon is keeping up with the work it
admitted. Under sustained overload every queued query ages toward its
deadline and the service degrades for all clients at once — the classic
failure mode load shedding exists to prevent: it is better to reject a
few requests quickly (with an honest retry hint) than to serve every
request late.

:class:`ShedController` turns the PR 9 telemetry into that decision.
Two deterministic signals feed it:

* the **p99 of ``serve.latency.total``** (the end-to-end latency
  histogram the server already maintains) against a configured SLO —
  when the tail exceeds the objective, low-priority work is shed until
  it recovers;
* the **deadline-feasibility bound**: with the queue ``d`` deep and a
  per-query service estimate ``s``, a newly arriving query waits about
  ``d * s`` before starting, so when that projected wait exceeds the
  SLO the queue is already unservable for latency-sensitive callers.

Both signals are pure functions of (histogram state, queue depth), so a
test that pre-loads the histogram and pins the queue depth gets the
same verdict every time — no wall clock, no randomness. Shed verdicts
carry ``retry_after_s``, an estimate of how long the current backlog
needs to drain, which the resilient client honors before retrying.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.observe.metrics import MetricsRegistry

__all__ = ["ShedController", "ShedDecision"]

#: Shed verdict (wire error + admission verdict form).
REJECTED_OVERLOAD = "rejected:overload"

#: Histogram name the controller reads (maintained by the server).
LATENCY_METRIC = "serve.latency.total"


@dataclass(frozen=True)
class ShedDecision:
    """One shed verdict plus the evidence it was computed from."""

    shed: bool
    #: ``"slo-p99"`` / ``"queue-infeasible"`` when shedding, else ``None``.
    reason: str | None = None
    #: Suggested client backoff before retrying (``None`` when admitted).
    retry_after_s: float | None = None
    #: The p99 the decision saw (``None`` with too few samples).
    p99: float | None = None
    queue_depth: int = 0


class ShedController:
    """Deterministic overload gate in front of the admission policy.

    ``slo_p99`` is the latency objective in seconds; ``None`` disables
    shedding entirely (the controller always admits). Queries with
    ``priority >= protect_priority`` are never shed — overload control
    exists precisely so high-priority traffic keeps flowing while
    best-effort traffic absorbs the rejects. ``min_samples`` guards the
    cold start: a histogram with fewer observations cannot estimate a
    tail, so the controller admits until the signal is real.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        slo_p99: float | None = None,
        protect_priority: int = 1,
        min_samples: int = 8,
        estimated_service_seconds: float = 0.0,
        retry_after_floor: float = 0.1,
    ) -> None:
        if slo_p99 is not None and slo_p99 <= 0:
            raise ValueError(f"slo_p99 must be positive, got {slo_p99!r}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples!r}")
        self.metrics = metrics
        self.slo_p99 = slo_p99
        self.protect_priority = protect_priority
        self.min_samples = min_samples
        self.estimated_service_seconds = estimated_service_seconds
        self.retry_after_floor = retry_after_floor
        self._lock = threading.Lock()
        self._shed_total = 0
        self._by_reason: dict[str, int] = {}

    # -- decision -----------------------------------------------------------

    def evaluate(self, priority: int, queue_depth: int) -> ShedDecision:
        """The shed verdict for one arriving query.

        Pure in its inputs: the verdict depends only on the latency
        histogram's current state, ``queue_depth``, and ``priority``.
        Counters update only when the verdict is *shed*.
        """
        if self.slo_p99 is None or priority >= self.protect_priority:
            return ShedDecision(shed=False, queue_depth=queue_depth)
        histogram = self.metrics.histogram(LATENCY_METRIC)
        p99 = (
            histogram.quantile(0.99)
            if histogram.count >= self.min_samples
            else None
        )
        reason = None
        if p99 is not None and p99 > self.slo_p99:
            reason = "slo-p99"
        else:
            projected_wait = queue_depth * self.estimated_service_seconds
            if projected_wait > self.slo_p99 > 0:
                reason = "queue-infeasible"
        if reason is None:
            return ShedDecision(shed=False, p99=p99, queue_depth=queue_depth)
        retry_after = self._retry_after(p99, queue_depth)
        with self._lock:
            self._shed_total += 1
            self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
        return ShedDecision(
            shed=True,
            reason=reason,
            retry_after_s=retry_after,
            p99=p99,
            queue_depth=queue_depth,
        )

    def _retry_after(self, p99: float | None, queue_depth: int) -> float:
        """Deterministic backlog-drain estimate for the retry hint.

        The backlog of ``d`` queries drains in roughly ``d * s`` where
        ``s`` is the better of the configured estimate and the observed
        p50; floor it so clients never busy-spin on a zero hint.
        """
        service = self.estimated_service_seconds
        histogram = self.metrics.histogram(LATENCY_METRIC)
        if histogram.count >= self.min_samples:
            service = max(service, histogram.quantile(0.50))
        hint = max(queue_depth, 1) * service
        if p99 is not None:
            hint = max(hint, p99)
        return max(hint, self.retry_after_floor)

    # -- introspection ------------------------------------------------------

    @property
    def shed_total(self) -> int:
        """Queries shed since construction."""
        with self._lock:
            return self._shed_total

    def snapshot(self) -> dict[str, Any]:
        """Wire-safe controller state for the ``stats`` op."""
        histogram = self.metrics.histogram(LATENCY_METRIC)
        p99 = (
            histogram.quantile(0.99)
            if histogram.count >= self.min_samples
            else None
        )
        with self._lock:
            return {
                "slo_p99": self.slo_p99,
                "p99": p99,
                "protect_priority": self.protect_priority,
                "shed_total": self._shed_total,
                "by_reason": dict(self._by_reason),
            }
