"""Command-line interface: mine graphs with Subgraph Morphing from a shell.

Usage examples::

    python -m repro.cli datasets
    python -m repro.cli motifs --graph mico --size 4
    python -m repro.cli count --graph mico --pattern 4CL --pattern TT-V
    python -m repro.cli count --graph-file my.edges --pattern C4 --engine graphpi
    python -m repro.cli fsm --graph mico --support 15 --max-edges 3
    python -m repro.cli equation TT C4-V
    python -m repro.cli cliques --graph orkut --max-size 8
    python -m repro.cli bench record --trials 3
    python -m repro.cli bench compare
    python -m repro.cli serve --graphs mico --port 7071
    python -m repro.cli submit --port 7071 --graph mico --pattern 4CL
    python -m repro.cli top 7071

Pattern names are the paper's (Figure 1 / Figure 11a): ``triangle``,
``4S``, ``TT``, ``C4``, ``C4C``, ``4CL``, ``4P``, ``p1``..``p10``; a
``-V`` suffix selects the vertex-induced variant. ``--no-morph`` runs
the baseline path.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.approximate import approximate_count
from repro.apps.clique_finding import clique_census
from repro.apps.fsm import mine_frequent_subgraphs
from repro.core.atlas import (
    EVALUATION_PATTERNS,
    NAMED_PATTERNS,
    motif_patterns,
    pattern_name,
)
from repro.core.equations import morph_equation
from repro.core.pattern import Pattern
from repro.api import ENGINES, run
from repro.graph import datasets
from repro.graph.io import load_edge_list
from repro.options import RunOptions


def resolve_pattern(name: str) -> Pattern:
    """Parse a pattern spec: a name like ``TT``/``C4-V``, or DSL text.

    Anything containing a comma, ``!``, brackets or multiple dashes is
    treated as a pattern expression (see :mod:`repro.core.parser`), e.g.
    ``"a-b,b-c,c-a"`` or ``"a-b-c-d-a [a:1]"``.
    """
    table = {**NAMED_PATTERNS, **EVALUATION_PATTERNS}
    base, _, suffix = name.partition("-")
    if base in table:
        pattern = table[base]
        if suffix == "V":
            return pattern.vertex_induced()
        if suffix in ("", "E"):
            return pattern
        raise SystemExit(f"unknown variant suffix {suffix!r} (use -V or -E)")
    if any(ch in name for ch in ",!([") or name.count("-") > 1:
        from repro.core.parser import PatternSyntaxError, parse_pattern

        try:
            return parse_pattern(name)
        except PatternSyntaxError as exc:
            raise SystemExit(f"bad pattern expression {name!r}: {exc}")
    raise SystemExit(
        f"unknown pattern {name!r}; choose from {', '.join(sorted(table))} "
        "or pass a pattern expression like 'a-b,b-c,c-a'"
    )


def resolve_graph(args):
    if args.graph_file:
        graph = load_edge_list(args.graph_file, args.label_file)
        if graph.num_dropped_self_loops or graph.num_duplicate_edges:
            print(
                f"# cleaned {graph.name}: dropped "
                f"{graph.num_dropped_self_loops} self-loops and "
                f"{graph.num_duplicate_edges} duplicate edges",
                file=sys.stderr,
            )
        return graph
    return datasets.load(args.graph)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", default="mico", help="dataset name/code")
    parser.add_argument("--graph-file", help="edge-list file (overrides --graph)")
    parser.add_argument("--label-file", help="vertex-label file for --graph-file")
    parser.add_argument(
        "--engine", choices=sorted(ENGINES), default="peregrine"
    )
    parser.add_argument(
        "--no-morph", action="store_true", help="run the baseline path"
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    """Only on subcommands whose pipeline honors shard parallelism."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard-parallel worker processes (1 = serial, the default)",
    )


def _add_strategy(parser: argparse.ArgumentParser) -> None:
    """Only on subcommands that run through ``repro.run``."""
    from repro.plan.search import STRATEGIES

    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="auto",
        help="rewrite strategy: auto (cost-driven rule competition, the "
        "default), morph (Algorithm 1 only), decompose (force IEP "
        "decomposition wherever legal), direct (no rewriting) — "
        "identical results either way",
    )


def _add_batch_roots(parser: argparse.ArgumentParser) -> None:
    """Only on subcommands that run through ``repro.run``."""
    parser.add_argument(
        "--batch-roots",
        type=int,
        default=None,
        metavar="N",
        help="expand roots in vectorized frontier batches of N instead of "
        "the per-root DFS kernels (identical results; try 2048)",
    )


def _add_fault_tolerance(parser: argparse.ArgumentParser) -> None:
    """Only on subcommands that run through ``repro.run``."""
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; on expiry outstanding shards are "
        "cancelled and completed-shard aggregates are reported with a "
        "coverage fraction (exit code 3)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="JSONL journal of completed shard results; re-running with "
        "the same path resumes, skipping finished shards",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-execute a crashed shard up to N times (exponential "
        "backoff) before the in-process fallback (default 3 whenever "
        "fault tolerance is active)",
    )


def _add_trace(parser: argparse.ArgumentParser) -> None:
    """Only on subcommands that run through ``repro.run``."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a structured run trace (JSONL) to PATH "
        "(convert with repro.observe.write_chrome_trace for flame graphs)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live per-item progress/ETA line on stderr (ETA seeded from "
        "the cost model's predictions, corrected by measured match times)",
    )


def cmd_datasets(_args) -> int:
    print(f"{'code':5s} {'name':11s} {'|V|':>7s} {'|E|':>8s} {'labels':>7s} {'maxdeg':>7s} {'avgdeg':>7s}")
    for row in datasets.summary_table():
        labels = row["labels"] if row["labels"] is not None else "-"
        print(
            f"{row['code']:5s} {row['name']:11s} {row['vertices']:>7d} "
            f"{row['edges']:>8d} {labels!s:>7s} {row['max_degree']:>7d} "
            f"{row['avg_degree']:>7.1f}"
        )
    return 0


def _run_options(args) -> RunOptions:
    """The :class:`repro.RunOptions` the ``repro.run`` flags describe."""
    return RunOptions(
        engine=args.engine,
        morph=not args.no_morph,
        strategy=args.strategy,
        workers=args.workers,
        trace=args.trace,
        progress=args.progress,
        batch_roots=args.batch_roots,
        deadline_seconds=args.deadline,
        checkpoint=args.checkpoint,
        retry=args.max_retries,
    )


def cmd_count(args) -> int:
    graph = resolve_graph(args)
    patterns = [resolve_pattern(p) for p in args.pattern]
    result = run(graph, patterns, options=_run_options(args))
    for p in patterns:
        if p in result.results:
            print(f"{pattern_name(p):10s} {result.results[p]}")
        else:
            print(f"{pattern_name(p):10s} <not derived before deadline>")
    _print_footer(result, trace_path=args.trace)
    return _exit_code(result)


def cmd_motifs(args) -> int:
    graph = resolve_graph(args)
    result = run(graph, list(motif_patterns(args.size)), options=_run_options(args))
    for p, c in sorted(result.results.items(), key=lambda kv: -kv[1]):
        print(f"{pattern_name(p):10s} {c}")
    _print_footer(result, trace_path=args.trace)
    return _exit_code(result)


def cmd_fsm(args) -> int:
    graph = resolve_graph(args)
    if not graph.is_labeled:
        raise SystemExit(f"{graph.name} is unlabeled; FSM needs labels")
    result = mine_frequent_subgraphs(
        graph,
        support_threshold=args.support,
        max_edges=args.max_edges,
        engine=ENGINES[args.engine](),
        morph=not args.no_morph,
        workers=args.workers,
    )
    for p, support in sorted(result.frequent.items(), key=lambda kv: -kv[1]):
        labels = "/".join(str(p.label(v)) for v in range(p.n))
        print(f"support={support:5d} {p.num_edges}e {p.n}v labels[{labels}]")
    print(f"# {len(result.frequent)} frequent patterns in {result.total_seconds:.2f}s")
    return 0


def cmd_cliques(args) -> int:
    graph = resolve_graph(args)
    census = clique_census(graph, args.max_size, engine=ENGINES[args.engine]())
    for size, count in census.items():
        print(f"{size}-clique  {count}")
    return 0


def cmd_equation(args) -> int:
    for name in args.patterns:
        print(morph_equation(resolve_pattern(name)))
    return 0


def cmd_orbits(args) -> int:
    from repro.apps.orbit_counting import orbit_signature

    graph = resolve_graph(args)
    signature = orbit_signature(graph, args.vertex, size=args.size)
    for name, count in signature.items():
        print(f"{name:16s} {count}")
    return 0


def cmd_approx(args) -> int:
    graph = resolve_graph(args)
    pattern = resolve_pattern(args.pattern)
    approx = approximate_count(
        graph,
        pattern,
        sample_prob=args.prob,
        trials=args.trials,
        engine=ENGINES[args.engine](),
    )
    lo, hi = approx.confidence_interval()
    print(
        f"estimate {approx.estimate:.1f} "
        f"(95% CI [{lo:.1f}, {hi:.1f}], {approx.trials} trials, p={approx.sample_prob})"
    )
    return 0


def cmd_bench_record(args) -> int:
    """Measure the standing suite and append a BENCH_<seq>.json record."""
    from repro.bench.trajectory import collect_record, save_record

    record = collect_record(
        trials=args.trials,
        quick=args.quick,
        log=lambda message: print(f"# {message}", file=sys.stderr),
    )
    path = save_record(record, root=args.root)
    for key, stats in record.workloads.items():
        print(
            f"{key:28s} morphed {stats.morphed.median:.4f}s "
            f"(±{stats.morphed.mad:.4f} MAD, {stats.trials} trials)  "
            f"baseline {stats.baseline.median:.4f}s  "
            f"speedup {stats.speedup:.2f}x"
        )
    print(f"# wrote {path} (seq {record.seq}, schema v{record.schema_version})")
    return 0


def cmd_bench_compare(args) -> int:
    """Gate the newest (or given) record against the stored trajectory."""
    from repro.bench.regress import compare_to_history
    from repro.bench.trajectory import load_record, load_trajectory

    trajectory = load_trajectory(args.root)
    if args.record:
        candidate = load_record(args.record)
    elif trajectory:
        candidate = trajectory[-1]
    else:
        raise SystemExit(
            f"no BENCH_*.json records under {args.root!r}; "
            "run `repro bench record` first"
        )
    history = [r for r in trajectory if r.seq < candidate.seq]
    comparison = compare_to_history(candidate, history, k=args.k)
    print(comparison.render())
    if args.advisory or comparison.ok:
        return 0
    return 1


def cmd_bench(args) -> int:
    handlers = {"record": cmd_bench_record, "compare": cmd_bench_compare}
    return handlers[args.bench_command](args)


def cmd_serve(args) -> int:
    """Run the resident mining daemon until interrupted or shut down."""
    from repro.serve import AdmissionPolicy, GraphRegistry, MiningServer

    registry = GraphRegistry(share=not args.no_share)
    for name in args.graphs or []:
        resident = registry.load(name)
        print(
            f"# resident: {resident.name} "
            f"({resident.graph.num_vertices} vertices, "
            f"{'shared' if resident.payload is not None else 'private'})",
            file=sys.stderr,
        )
    chaos = None
    if args.chaos_seed is not None:
        from repro.testing.faults import QueryFaultPlan

        chaos = QueryFaultPlan.random(
            num_queries=args.chaos_queries,
            seed=args.chaos_seed,
            p_fault=args.chaos_p,
        )
        print(
            f"# CHAOS MODE: seeded fault plan over {args.chaos_queries} "
            f"query indices (seed {args.chaos_seed}, p={args.chaos_p})",
            file=sys.stderr,
        )
    server = MiningServer(
        registry=registry,
        policy=AdmissionPolicy(
            max_queue_depth=args.max_queue_depth,
            max_per_client=args.max_per_client,
        ),
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        slow_factor=args.slow_factor,
        flight_capacity=args.flight_capacity,
        slo_p99=args.slo_p99,
        protect_priority=args.protect_priority,
        wall_budget_s=args.wall_budget,
        rss_budget_bytes=(
            int(args.rss_budget_mb * 1024 * 1024)
            if args.rss_budget_mb is not None
            else None
        ),
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        drain_deadline_s=args.drain_deadline,
        state_path=args.state,
        chaos=chaos,
    )
    _install_dump_handler(server, args.dump_dir)
    _install_drain_handler(server, args.dump_dir)
    host, port = server.start()
    if args.resume:
        try:
            resumed = server.resume_from(args.resume)
        except FileNotFoundError:
            print(f"# no service state at {args.resume}; starting cold",
                  file=sys.stderr)
        else:
            print(
                f"# resumed: {len(resumed['graphs'])} graphs, "
                f"{resumed['results']} cached results"
                + (f", {len(resumed['failed'])} graphs failed"
                   if resumed["failed"] else ""),
                file=sys.stderr,
            )
    print(f"# listening on {host}:{port} (Ctrl-C or the shutdown op stops)",
          file=sys.stderr)
    print(port, flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        if server.drain_state == "accepting":
            server.drain(args.dump_dir)
        server.close()
    return 0


def _install_dump_handler(server, dump_dir) -> None:
    """SIGUSR1 → dump the flight recorder (main thread only, best effort)."""
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return  # signal handlers can only be installed from the main thread
    usr1 = getattr(signal, "SIGUSR1", None)
    if usr1 is None:
        return  # platform without SIGUSR1 (Windows)

    def _dump(_signum, _frame):
        directory, files = server.dump_flight(dump_dir)
        print(
            f"# flight recorder dumped: {len(files)} files in {directory}",
            file=sys.stderr,
        )

    signal.signal(usr1, _dump)


def _install_drain_handler(server, dump_dir) -> None:
    """SIGTERM → graceful drain (main thread only, best effort)."""
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return  # signal handlers can only be installed from the main thread
    term = getattr(signal, "SIGTERM", None)
    if term is None:
        return

    def _drain(_signum, _frame):
        # The drain itself runs off the signal handler's stack so the
        # handler returns immediately; drain() closes the server, which
        # unblocks server.wait() in cmd_serve.
        print("# SIGTERM: draining (no new queries accepted)", file=sys.stderr)
        threading.Thread(
            target=server.drain, args=(dump_dir,), daemon=True
        ).start()

    signal.signal(term, _drain)


def cmd_top(args) -> int:
    """Live dashboard over a running ``repro serve`` daemon."""
    from repro.serve import TopDashboard, connect

    client = connect(port=args.port, host=args.host, client_id=args.client)
    dashboard = TopDashboard(client, interval=args.interval)
    iterations = 1 if args.once else args.iterations
    rendered = dashboard.run(iterations=iterations)
    return 0 if rendered else 1


def cmd_submit(args) -> int:
    """Submit one query to a running ``repro serve`` daemon."""
    from repro.serve import connect

    client = connect(
        port=args.port,
        host=args.host,
        client_id=args.client,
        timeout=args.timeout,
        retry=args.max_retries,
    )
    if args.stats:
        stats = client.stats()
        for name, value in sorted(stats["metrics"].items()):
            print(f"{name:40s} {value}")
        print(f"# queue depth {stats['scheduler']['depth']}, "
              f"result cache {stats['result_cache_entries']} entries, "
              f"graphs: {', '.join(stats['graphs']) or 'none'}",
              file=sys.stderr)
        return 0
    client.load(args.graph)
    patterns = [resolve_pattern(p) for p in args.pattern]
    options = RunOptions(
        engine=args.engine,
        aggregation=args.aggregation,
        morph=not args.no_morph,
        strategy=args.strategy,
        workers=args.workers,
    )
    result = client.run(
        args.graph,
        patterns,
        options=options,
        priority=args.priority,
        use_result_cache=not args.no_result_cache,
    )
    for p in patterns:
        print(f"{pattern_name(p):10s} {result.results[p]}")
    print(
        f"# {'cache hit' if result.cached else 'computed'}"
        + (f", match {result.seconds.get('match', 0.0):.3f}s" if result.seconds else ""),
        file=sys.stderr,
    )
    return 0


def _exit_code(result) -> int:
    """0 for a complete run, 3 for a deadline-degraded partial result."""
    from repro.morph.session import PartialRunResult

    return 3 if isinstance(result, PartialRunResult) else 0


def _print_footer(result, trace_path=None) -> None:
    from repro.morph.session import PartialRunResult

    mode = "morphed" if result.morphing_enabled else "baseline"
    extra = ""
    if result.morphing_enabled and result.selection:
        fired = sum(result.selection.morphed.values())
        extra = f", {fired} queries morphed, {len(result.measured)} patterns measured"
    print(
        f"# {mode}: {result.total_seconds:.2f}s, "
        f"{result.stats.setops.total_ops} set ops{extra}",
        file=sys.stderr,
    )
    if isinstance(result, PartialRunResult):
        print(
            f"# PARTIAL: deadline expired at "
            f"{result.completed_shards}/{result.total_shards} shards "
            f"(coverage {result.coverage:.0%}); "
            f"{len(result.unresolved)} quer"
            f"{'y' if len(result.unresolved) == 1 else 'ies'} not derived "
            "— pass --checkpoint to resume where this run stopped",
            file=sys.stderr,
        )
    if trace_path and result.trace is not None:
        stages = ", ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in sorted(result.trace.stage_seconds().items())
        )
        print(f"# trace: {trace_path} ({stages})", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the synthetic dataset suite")

    count = sub.add_parser("count", help="count pattern matches")
    _add_common(count)
    _add_workers(count)
    _add_strategy(count)
    _add_batch_roots(count)
    _add_trace(count)
    _add_fault_tolerance(count)
    count.add_argument(
        "--pattern", action="append", required=True, help="repeatable"
    )

    motifs = sub.add_parser("motifs", help="motif counting")
    _add_common(motifs)
    _add_workers(motifs)
    _add_strategy(motifs)
    _add_batch_roots(motifs)
    _add_trace(motifs)
    _add_fault_tolerance(motifs)
    motifs.add_argument("--size", type=int, default=4, choices=(3, 4, 5))

    fsm = sub.add_parser("fsm", help="frequent subgraph mining")
    _add_common(fsm)
    _add_workers(fsm)
    fsm.add_argument("--support", type=int, required=True)
    fsm.add_argument("--max-edges", type=int, default=3)

    cliques = sub.add_parser("cliques", help="clique census")
    _add_common(cliques)
    cliques.add_argument("--max-size", type=int, default=6)

    equation = sub.add_parser("equation", help="print morphing equations")
    equation.add_argument("patterns", nargs="+")

    orbits = sub.add_parser("orbits", help="graphlet orbit signature of a vertex")
    _add_common(orbits)
    orbits.add_argument("--vertex", type=int, required=True)
    orbits.add_argument("--size", type=int, default=3, choices=(3, 4))

    approx = sub.add_parser("approx", help="approximate pattern count")
    _add_common(approx)
    approx.add_argument("--pattern", required=True)
    approx.add_argument("--prob", type=float, default=0.5)
    approx.add_argument("--trials", type=int, default=5)

    bench = sub.add_parser(
        "bench", help="benchmark trajectory: record / compare"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    record = bench_sub.add_parser(
        "record",
        help="measure the standing suite, write BENCH_<seq>.json",
    )
    record.add_argument(
        "--trials", type=int, default=3, help="repeated trials per workload"
    )
    record.add_argument(
        "--quick", action="store_true", help="cheapest workloads only"
    )
    record.add_argument(
        "--root", default=".", help="trajectory directory (default: repo root)"
    )
    compare = bench_sub.add_parser(
        "compare",
        help="gate the newest record against the stored trajectory",
    )
    compare.add_argument(
        "--record", metavar="PATH", help="candidate record (default: newest)"
    )
    compare.add_argument(
        "--root", default=".", help="trajectory directory (default: repo root)"
    )
    compare.add_argument(
        "--k",
        type=float,
        default=4.0,
        help="acceptance band half-width in robust noise units (median ± k·MAD)",
    )
    compare.add_argument(
        "--advisory",
        action="store_true",
        help="always exit 0 (shared/1-core runners: verdicts are advisory)",
    )

    serve = sub.add_parser(
        "serve",
        help="resident mining daemon: load graphs once, answer queries "
        "over a local socket",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick a free one; the chosen port is printed "
        "on stdout)",
    )
    serve.add_argument(
        "--graphs", action="append", metavar="NAME",
        help="dataset name/code or edge-list path to preload (repeatable; "
        "clients can also load on demand)",
    )
    serve.add_argument(
        "--serve-workers", type=int, default=2, metavar="N",
        help="concurrent query worker threads (default 2)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="admission control: reject new queries beyond this backlog",
    )
    serve.add_argument(
        "--max-per-client", type=int, default=4,
        help="admission control: max in-flight queries per client id",
    )
    serve.add_argument(
        "--no-share", action="store_true",
        help="skip the shared-memory CSR export at load time",
    )
    serve.add_argument(
        "--slow-factor", type=float, default=8.0, metavar="K",
        help="flight recorder slow-query threshold: measured match time "
        "> K x plan-predicted time is retained as an anomaly (default 8)",
    )
    serve.add_argument(
        "--flight-capacity", type=int, default=64, metavar="N",
        help="flight recorder ring size: last N query traces kept "
        "(anomalies are retained separately; default 64)",
    )
    serve.add_argument(
        "--dump-dir", metavar="PATH",
        help="where SIGUSR1 dumps flight-recorder traces "
        "(default: a fresh temp directory per dump)",
    )
    serve.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="load shedding: when the live p99 end-to-end latency exceeds "
        "this SLO, low-priority submissions are rejected with "
        "rejected:overload and a retry_after_s hint (default: off)",
    )
    serve.add_argument(
        "--protect-priority", type=int, default=1, metavar="P",
        help="load shedding never rejects queries at priority >= P "
        "(default 1: only priority-0 work is sheddable)",
    )
    serve.add_argument(
        "--wall-budget", type=float, default=None, metavar="SECONDS",
        help="per-query sentinel: cancel any query running longer than "
        "this, returning the usual partial/typed-error shape (default: off)",
    )
    serve.add_argument(
        "--rss-budget-mb", type=float, default=None, metavar="MB",
        help="per-query sentinel: cancel the running query when daemon RSS "
        "grows by more than this while it executes (default: off)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="open a (graph, engine) circuit breaker after N consecutive "
        "worker crashes or sentinel trips (default 3)",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=5.0, metavar="SECONDS",
        help="cool-down before an open breaker lets a half-open probe "
        "through (default 5)",
    )
    serve.add_argument(
        "--drain-deadline", type=float, default=5.0, metavar="SECONDS",
        help="graceful drain (SIGTERM / the drain op): how long to wait "
        "for in-flight queries before closing anyway (default 5)",
    )
    serve.add_argument(
        "--state", metavar="PATH",
        help="persist the registry manifest and result-cache journal here "
        "on drain, for --resume (default: no persistence)",
    )
    serve.add_argument(
        "--resume", metavar="PATH",
        help="warm-restart from a --state journal written by a previous "
        "incarnation's drain (missing file starts cold)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="TESTING ONLY: inject a seeded random fault plan "
        "(crash/hang/slow/corrupt/torn-socket) keyed by each request's "
        "chaos_index (default: off)",
    )
    serve.add_argument(
        "--chaos-p", type=float, default=0.3, metavar="P",
        help="chaos mode: per-query fault probability (default 0.3)",
    )
    serve.add_argument(
        "--chaos-queries", type=int, default=64, metavar="N",
        help="chaos mode: how many query indices the fault plan covers "
        "(default 64)",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard for a running repro serve daemon: QPS, "
        "latency quantiles, queue depth, per-engine breakdowns, slow queries",
    )
    top.add_argument("port", type=int, help="the daemon's port")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll/redraw interval (each frame is one stats request)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (scripting/CI)",
    )
    top.add_argument(
        "--client", default="top", help="client id shown to the daemon"
    )

    submit = sub.add_parser(
        "submit", help="submit one query to a running repro serve daemon"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument("--graph", default="mico", help="resident graph name")
    submit.add_argument(
        "--pattern", action="append", default=[], help="repeatable"
    )
    submit.add_argument(
        "--aggregation", choices=("count", "mni", "matches", "exists"),
        default=None,
    )
    submit.add_argument("--engine", choices=sorted(ENGINES), default="peregrine")
    submit.add_argument("--no-morph", action="store_true")
    submit.add_argument("--strategy", default="auto")
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher runs first)",
    )
    submit.add_argument(
        "--client", default="cli", help="client id for per-client limits"
    )
    submit.add_argument(
        "--no-result-cache", action="store_true",
        help="bypass the daemon's result cache (plan cache still applies)",
    )
    submit.add_argument(
        "--stats", action="store_true",
        help="print the daemon's metrics snapshot instead of running a query",
    )
    submit.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request socket timeout (default 60)",
    )
    submit.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retry retryable rejections (overload, circuit-open, "
        "queue-full) and torn connections up to N times with seeded-"
        "jitter exponential backoff, honoring the daemon's retry_after_s "
        "hint (default: no retries)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "count": cmd_count,
        "motifs": cmd_motifs,
        "fsm": cmd_fsm,
        "cliques": cmd_cliques,
        "equation": cmd_equation,
        "orbits": cmd_orbits,
        "approx": cmd_approx,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "top": cmd_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
