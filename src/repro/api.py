"""The one-call public facade: :func:`repro.run`.

Wraps the full Subgraph Morphing pipeline — engine resolution, session
construction, execution and optional structured telemetry — behind a
single function, so the common case reads::

    import repro
    result = repro.run(graph, patterns)              # morphed counting
    result = repro.run(graph, patterns, engine="autozero",
                       workers=4, trace="run.jsonl")  # traced + parallel

Everything the facade accepts is keyword-only past ``engine``; the
session class remains available for callers that need streaming mode,
a caller-owned executor, or engine subclassing.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.aggregation import Aggregation
from repro.core.pattern import Pattern
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import MiningEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.graph.datagraph import DataGraph
from repro.morph.cache import MeasurementCache, PlanCache
from repro.morph.session import MorphingSession, MorphRunResult
from repro.observe.export import write_jsonl
from repro.observe.progress import ProgressReporter
from repro.observe.tracer import Tracer

__all__ = ["ENGINES", "resolve_engine", "run"]

#: Engine-name registry (the five substrates of Section 7).
ENGINES: dict[str, type[MiningEngine]] = {
    "peregrine": PeregrineEngine,
    "autozero": AutoZeroEngine,
    "graphpi": GraphPiEngine,
    "bigjoin": BigJoinEngine,
    "sumpa": SumPAEngine,
}


def resolve_engine(engine: str | MiningEngine | type[MiningEngine]) -> MiningEngine:
    """Turn an engine spec into a live engine instance.

    Accepts a registry name (``"peregrine"``, case-insensitive), a
    :class:`MiningEngine` subclass, or an already-built instance (passed
    through untouched, so callers can pre-configure e.g.
    ``GraphPiEngine.use_iep``).
    """
    if isinstance(engine, MiningEngine):
        return engine
    if isinstance(engine, type) and issubclass(engine, MiningEngine):
        return engine()
    if isinstance(engine, str):
        factory = ENGINES.get(engine.lower())
        if factory is None:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {', '.join(sorted(ENGINES))}"
            )
        return factory()
    raise TypeError(
        f"engine must be a name, MiningEngine subclass or instance, got {engine!r}"
    )


def run(
    graph: DataGraph,
    patterns: Sequence[Pattern] | Pattern,
    engine: str | MiningEngine | type[MiningEngine] = "peregrine",
    *,
    aggregation: Aggregation | None = None,
    morph: bool = True,
    strategy: str = "auto",
    workers: int = 1,
    margin: float = 0.6,
    cache: MeasurementCache | None = None,
    plan_cache: PlanCache | None = None,
    trace: Any = None,
    progress: ProgressReporter | bool | None = None,
    batch_roots: int | None = None,
    deadline_seconds: float | None = None,
    checkpoint: Any = None,
    retry: Any = None,
    faults: Any = None,
) -> MorphRunResult:
    """Mine ``patterns`` on ``graph`` through the morphing pipeline.

    Parameters
    ----------
    graph:
        The data graph (:class:`repro.DataGraph`; see
        :mod:`repro.graph.datasets` and :mod:`repro.graph.generators`).
    patterns:
        The query patterns — a sequence, or a single :class:`Pattern`.
    engine:
        Registry name (``"peregrine"``, ``"autozero"``, ``"graphpi"``,
        ``"bigjoin"``, ``"sumpa"``), engine class, or instance.
    aggregation:
        Output mode; default :class:`repro.CountAggregation`. Counting,
        existence, MNI-support and match-list aggregations all convert
        through the morphing algebra.
    morph:
        ``False`` runs the baseline path (the unmodified engine on the
        queries as given) — both paths return identical results.
    strategy:
        Rewrite strategy for the planner search (``"auto"``,
        ``"direct"``, ``"morph"``, ``"decompose"`` — see
        :func:`repro.plan.search.search_plan`). ``"auto"`` (default)
        runs Algorithm 1 and then lets direct matching and IEP
        decomposition compete per measured item under the cost model.
        Every strategy returns identical results; only the work done to
        obtain them differs.
    workers:
        Shard-parallel worker processes (>1 fans each pattern over
        degree-balanced root-vertex shards; results stay identical).
    margin:
        Algorithm 1's profitability margin (see
        :class:`repro.MorphingSession`).
    cache:
        Optional :class:`repro.MeasurementCache` reused across runs.
    plan_cache:
        Optional :class:`repro.PlanCache` memoizing the planner search
        itself across runs (keyed by graph fingerprint, queries,
        aggregation, engine, strategy and margin); hits skip Algorithm 1
        entirely and report as ``plan.cache.hit`` metrics when traced.
    trace:
        ``None`` (default, zero telemetry overhead), a
        :class:`repro.Tracer` to record into, or a path — the structured
        trace is then also written there as JSONL
        (:func:`repro.observe.write_jsonl`; load back with
        :func:`repro.observe.load_trace`). Either way the result's
        ``trace`` attribute holds the :class:`repro.observe.RunTrace`.
    progress:
        ``None`` (default, zero overhead), ``True`` for a live stderr
        progress line — the ETA starts from Algorithm 1's predicted
        per-item costs and is corrected online by measured match times —
        or a :class:`repro.ProgressReporter` to report through (e.g.
        with a custom stream or a calibration prior).
    batch_roots:
        ``None`` (default) runs the engines' per-root DFS kernels. An
        int switches matching to the vectorized batched-frontier path
        (:mod:`repro.engines.frontier`): roots expand in chunks of that
        size through whole-frontier numpy set-ops — typically several
        times faster on non-trivial graphs — with byte-identical
        results, composing with ``workers``, tracing, progress and all
        fault-tolerance options. 2048 is a good starting point (see the
        cookbook's "Tuning batch size" recipe).
    deadline_seconds:
        Wall-clock budget for the whole run. On expiry outstanding
        shards are cancelled through the shared cancel token and the
        run returns a :class:`repro.PartialRunResult` — completed-shard
        aggregates plus a coverage fraction — instead of hanging.
    checkpoint:
        Path (or open :class:`repro.ShardCheckpoint`) of a JSONL journal
        of completed shard results; an interrupted run re-invoked with
        the same path resumes by skipping finished shards.
    retry:
        :class:`repro.RetryPolicy` or an int ``max_retries`` for
        re-executing crashed shards (exponential backoff + jitter,
        in-process fallback for a worker-poisoning shard). Default
        policy applies whenever any fault-tolerance option is active.
    faults:
        A :class:`repro.FaultPlan` injecting deterministic failures
        (crash/hang/slow/corrupt by shard index) — for tests.

    Returns
    -------
    MorphRunResult
        ``result.results`` maps each query pattern to its value;
        ``stats``, per-phase ``*_seconds``, ``selection`` and ``trace``
        carry the run's telemetry. Deadline-degraded runs return the
        :class:`repro.PartialRunResult` subclass.
    """
    if isinstance(patterns, Pattern):
        patterns = [patterns]
    tracer: Tracer | None
    trace_path = None
    if trace is None:
        tracer = None
    elif isinstance(trace, Tracer):
        tracer = trace
    else:
        tracer = Tracer()
        trace_path = trace
    reporter: ProgressReporter | None
    if progress is None or progress is False:
        reporter = None
    elif progress is True:
        reporter = ProgressReporter()
    else:
        reporter = progress
    session = MorphingSession(
        resolve_engine(engine),
        aggregation=aggregation,
        enabled=morph,
        strategy=strategy,
        margin=margin,
        cache=cache,
        plan_cache=plan_cache,
        workers=workers,
        tracer=tracer,
        progress=reporter,
        batch_roots=batch_roots,
        deadline_seconds=deadline_seconds,
        checkpoint=checkpoint,
        retry=retry,
        faults=faults,
    )
    result = session.run(graph, list(patterns))
    if trace_path is not None:
        write_jsonl(result.trace, trace_path)
    return result
