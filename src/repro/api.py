"""The one-call public facade: :func:`repro.run`.

Wraps the full Subgraph Morphing pipeline — engine resolution, session
construction, execution and optional structured telemetry — behind a
single function, so the common case reads::

    import repro
    result = repro.run(graph, patterns)              # morphed counting
    result = repro.run(graph, patterns, options=repro.RunOptions(
        engine="autozero", workers=4, trace="run.jsonl"))

Configuration travels in one typed :class:`repro.RunOptions` object —
also the wire request schema of the resident mining service
(:mod:`repro.serve`). The historical loose keywords
(``repro.run(..., workers=4)``) keep working for one release through
warn-once deprecation shims (:mod:`repro._compat`). The session class
remains available for callers that need streaming mode, a caller-owned
executor, or engine subclassing.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.pattern import Pattern
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.base import MiningEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession, MorphRunResult
from repro.observe.export import write_jsonl
from repro.options import RunOptions

__all__ = ["ENGINES", "resolve_engine", "run"]

#: Engine-name registry (the five substrates of Section 7).
ENGINES: dict[str, type[MiningEngine]] = {
    "peregrine": PeregrineEngine,
    "autozero": AutoZeroEngine,
    "graphpi": GraphPiEngine,
    "bigjoin": BigJoinEngine,
    "sumpa": SumPAEngine,
}


def resolve_engine(
    engine: str | MiningEngine | type[MiningEngine], *, fresh: bool = False
) -> MiningEngine:
    """Turn an engine spec into a live engine instance.

    Accepts a registry name (``"peregrine"``, case-insensitive), a
    :class:`MiningEngine` subclass, or an already-built instance (passed
    through untouched, so callers can pre-configure e.g.
    ``GraphPiEngine.use_iep``).

    **Sharing contract.** An engine instance carries per-run mutable
    state — ``stats`` accumulate, and the session attaches its
    ``tracer``/``progress``/``batch_roots`` to the instance for the
    duration of a run — so one instance must never serve two *concurrent*
    runs. Reusing an instance across sequential runs is fine (each run
    resets the stats). An instance that is mid-run (its session marked
    it busy) is rejected here with :class:`ValueError`; concurrent
    callers should resolve by name or class so every run gets a fresh
    instance. ``fresh=True`` (the service path) enforces exactly that:
    instances are rejected outright and names/classes build a new
    engine per call.
    """
    if isinstance(engine, MiningEngine):
        if fresh:
            raise TypeError(
                f"{type(engine).__name__} instance rejected: this path "
                "serves concurrent queries and engine instances carry "
                "per-run mutable state (stats, tracer, progress); resolve "
                "by name or class so each query gets a fresh engine"
            )
        if getattr(engine, "busy", False):
            raise ValueError(
                f"{type(engine).__name__} instance is already mid-run; an "
                "engine instance carries per-run mutable state (stats, "
                "tracer, progress) and cannot be shared across concurrent "
                "runs — resolve by name or class to get a fresh instance"
            )
        return engine
    if isinstance(engine, type) and issubclass(engine, MiningEngine):
        return engine()
    if isinstance(engine, str):
        factory = ENGINES.get(engine.lower())
        if factory is None:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {', '.join(sorted(ENGINES))}"
            )
        return factory()
    raise TypeError(
        f"engine must be a name, MiningEngine subclass or instance, got {engine!r}"
    )


def run(
    graph: DataGraph,
    patterns: Sequence[Pattern] | Pattern,
    engine: str | MiningEngine | type[MiningEngine] | None = None,
    *,
    options: RunOptions | None = None,
    **deprecated_kwargs: Any,
) -> MorphRunResult:
    """Mine ``patterns`` on ``graph`` through the morphing pipeline.

    Parameters
    ----------
    graph:
        The data graph (:class:`repro.DataGraph`; see
        :mod:`repro.graph.datasets` and :mod:`repro.graph.generators`).
    patterns:
        The query patterns — a sequence, or a single :class:`Pattern`.
    engine:
        Registry name (``"peregrine"``, ``"autozero"``, ``"graphpi"``,
        ``"bigjoin"``, ``"sumpa"``), engine class, or instance. When
        omitted, ``options.engine`` (default ``"peregrine"``) decides.
        An explicit instance is used as-is — see the sharing contract on
        :func:`resolve_engine` before reusing one across runs.
    options:
        A :class:`repro.RunOptions` carrying the whole run
        configuration — aggregation, morphing/strategy, workers,
        margin, caches, tracing, progress, batching and the four
        fault-tolerance knobs. See the ``RunOptions`` field docs (and
        the README's parameter table) for the semantics of each field.
        ``None`` runs with defaults: morphed counting, the ``"auto"``
        strategy, serial, untraced.
    **deprecated_kwargs:
        The pre-1.2 loose keywords (``workers=``, ``margin=``,
        ``trace=``, ``deadline_seconds=``, ...) keep working for one
        release: each warns a :class:`DeprecationWarning` once per
        process and is folded onto ``options`` via
        :meth:`RunOptions.replace`, taking the exact same code path as
        the typed form (results are byte-identical). Unknown keywords
        raise :class:`TypeError`.

    Returns
    -------
    MorphRunResult
        ``result.results`` maps each query pattern to its value;
        ``stats``, per-phase ``*_seconds``, ``selection`` and ``trace``
        carry the run's telemetry. Deadline-degraded runs return the
        :class:`repro.PartialRunResult` subclass.
    """
    if deprecated_kwargs:
        from repro import _compat

        options = _compat.run_options_from_kwargs(options, deprecated_kwargs)
    opts = options if options is not None else RunOptions()
    if isinstance(patterns, Pattern):
        patterns = [patterns]
    resolved = resolve_engine(engine if engine is not None else opts.engine)
    tracer, trace_path = opts.resolved_tracer()
    session = MorphingSession(
        resolved,
        options=opts.replace(trace=tracer, progress=opts.resolved_progress()),
    )
    result = session.run(graph, list(patterns))
    if trace_path is not None:
        write_jsonl(result.trace, trace_path)
    return result
