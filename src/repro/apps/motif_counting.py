"""Motif Counting (MC): count all vertex-induced k-vertex patterns.

The paper's headline counting workload (Figure 12). The query set is the
full motif set of one size — every connected k-vertex topology as a
vertex-induced pattern — which makes it the *best case* for morphing:
every superpattern an alternative set could want is already in the input,
so morphing only removes anti-edge set differences without adding
patterns (Section 7.1).
"""

from __future__ import annotations

from repro.core.atlas import motif_patterns, pattern_name
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession, MorphRunResult


def count_motifs(
    graph: DataGraph,
    size: int,
    engine: MiningEngine | None = None,
    morph: bool = True,
) -> MorphRunResult:
    """Count every ``size``-vertex motif; results keyed by motif pattern."""
    session = MorphingSession(engine or PeregrineEngine(), enabled=morph)
    return session.run(graph, list(motif_patterns(size)))


def motif_census(
    graph: DataGraph,
    size: int,
    engine: MiningEngine | None = None,
    morph: bool = True,
) -> dict[str, int]:
    """Human-readable motif census: pattern name -> vertex-induced count."""
    result = count_motifs(graph, size, engine=engine, morph=morph)
    return {pattern_name(p): c for p, c in result.results.items()}


def total_motifs(results: dict[Pattern, int]) -> int:
    """Total connected ``k``-vertex subgraphs (sum over the census)."""
    return sum(results.values())
