"""Orbit counting: graphlet degree vectors (extension).

The motif-counting literature the paper builds on ([22], [42], [43],
ORCA-style tools) refines motif counts per *orbit*: for every vertex v
and every automorphism orbit o of every k-motif, count the induced
subgraphs in which v plays role o. The resulting graphlet degree vectors
are the workhorse features of bioinformatics network analysis.

Built directly on this library's primitives: motifs from the atlas,
orbits from :func:`repro.core.isomorphism.vertex_orbits`, matches from
any engine. Each vertex-induced occurrence contributes exactly one role
per pattern position, and orbit membership is automorphism-invariant, so
symmetry-broken enumeration (one representative per occurrence) counts
each (vertex, orbit) incidence exactly once.

The classic orbit tallies reproduce: 1 orbit for size 2, 3 for size 3,
11 for size 4 (graphlet orbits 0-14 across sizes 2-4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.atlas import motif_patterns, pattern_name
from repro.core.isomorphism import vertex_orbits
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph


@dataclass(frozen=True)
class OrbitIndex:
    """Global numbering of (motif, orbit) pairs for one motif size."""

    size: int
    motifs: tuple[Pattern, ...]
    #: orbit_of[motif_index][pattern_vertex] -> global orbit id
    orbit_of: tuple[tuple[int, ...], ...]
    names: tuple[str, ...]

    @property
    def num_orbits(self) -> int:
        return len(self.names)

    @classmethod
    def for_size(cls, size: int) -> "OrbitIndex":
        motifs = motif_patterns(size)
        orbit_of: list[tuple[int, ...]] = []
        names: list[str] = []
        next_id = 0
        for motif in motifs:
            orbits = vertex_orbits(motif.edge_induced())
            vertex_to_global = [0] * motif.n
            for orbit in orbits:
                for v in orbit:
                    vertex_to_global[v] = next_id
                names.append(f"{pattern_name(motif.edge_induced())}:o{next_id}")
                next_id += 1
            orbit_of.append(tuple(vertex_to_global))
        return cls(
            size=size,
            motifs=motifs,
            orbit_of=tuple(orbit_of),
            names=tuple(names),
        )


def orbit_degree_vectors(
    graph: DataGraph,
    size: int,
    engine: MiningEngine | None = None,
) -> tuple[np.ndarray, OrbitIndex]:
    """Per-vertex orbit counts for all ``size``-vertex motifs.

    Returns ``(matrix, index)`` where ``matrix[v, o]`` counts the
    vertex-induced occurrences in which data vertex ``v`` plays global
    orbit ``o``.
    """
    engine = engine or PeregrineEngine()
    index = OrbitIndex.for_size(size)
    matrix = np.zeros((graph.num_vertices, index.num_orbits), dtype=np.int64)

    for motif_idx, motif in enumerate(index.motifs):
        orbit_of = index.orbit_of[motif_idx]

        def tally(pattern: Pattern, match, _orbit_of=orbit_of) -> None:
            for u, data_vertex in enumerate(match):
                matrix[data_vertex, _orbit_of[u]] += 1

        engine.explore(graph, motif, tally)
    return matrix, index


def orbit_signature(
    graph: DataGraph,
    vertex: int,
    size: int = 4,
    engine: MiningEngine | None = None,
) -> dict[str, int]:
    """One vertex's graphlet degree vector, keyed by orbit name."""
    matrix, index = orbit_degree_vectors(graph, size, engine=engine)
    return {
        name: int(matrix[vertex, o]) for o, name in enumerate(index.names)
    }


def most_similar_vertices(
    graph: DataGraph,
    vertex: int,
    size: int = 4,
    top: int = 5,
    engine: MiningEngine | None = None,
) -> list[tuple[int, float]]:
    """Vertices with the closest (cosine) graphlet degree vectors.

    The standard downstream use of orbit counts: structural role
    similarity. Returns ``(vertex, similarity)`` pairs, best first.
    """
    matrix, _index = orbit_degree_vectors(graph, size, engine=engine)
    target = matrix[vertex].astype(float)
    norms = np.linalg.norm(matrix, axis=1) * (np.linalg.norm(target) or 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        sims = np.where(norms > 0, matrix @ target / norms, 0.0)
    sims[vertex] = -np.inf
    order = np.argsort(-sims)[:top]
    return [(int(v), float(sims[v])) for v in order if np.isfinite(sims[v])]
