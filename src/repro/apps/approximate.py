"""Approximate pattern counting (extension; ASAP-inspired [25]).

The paper's related work discusses ASAP, which trades accuracy for speed
in pattern counting. This extension provides the classic *vertex
sparsification* estimator on top of any engine (and optionally through
morphing): sample each vertex independently with probability ``p``, count
the pattern exactly in the sampled induced subgraph, and scale by
``p^-k`` — an unbiased estimator of the full count for any ``k``-vertex
pattern, vertex- or edge-induced, because a subgraph survives sampling
iff all ``k`` of its vertices do.

Repeated trials give a variance estimate and a rough confidence interval,
letting callers navigate the error/performance tradeoff the way ASAP's
"error-latency profile" does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph


@dataclass(frozen=True)
class ApproximateCount:
    """Estimate with spread information from independent trials."""

    estimate: float
    std_error: float
    trials: int
    sample_prob: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation interval (default ~95%)."""
        delta = z * self.std_error
        return (max(0.0, self.estimate - delta), self.estimate + delta)


def approximate_count(
    graph: DataGraph,
    pattern: Pattern,
    sample_prob: float = 0.5,
    trials: int = 5,
    engine: MiningEngine | None = None,
    morph: bool = False,
    seed: int = 0,
) -> ApproximateCount:
    """Unbiased sampled estimate of a pattern's match count.

    Each trial keeps every vertex with probability ``sample_prob``,
    counts exactly on the induced sample (morphing optionally enabled),
    and scales by ``sample_prob ** -pattern.n``.
    """
    if not (0.0 < sample_prob <= 1.0):
        raise ValueError("sample_prob must be in (0, 1]")
    if trials < 1:
        raise ValueError("need at least one trial")
    engine = engine or PeregrineEngine()
    rng = np.random.default_rng(seed)
    scale = sample_prob ** (-pattern.n)

    estimates: list[float] = []
    for _ in range(trials):
        if sample_prob >= 1.0:
            sample = graph
        else:
            keep = np.flatnonzero(rng.random(graph.num_vertices) < sample_prob)
            if len(keep) < pattern.n:
                estimates.append(0.0)
                continue
            sample = graph.subgraph(keep.tolist(), name=f"{graph.name}-sample")
        if morph:
            from repro.morph.session import MorphingSession

            result = MorphingSession(engine, enabled=True).run(sample, [pattern])
            count = result.results[pattern]
        else:
            count = engine.count(sample, pattern)
        estimates.append(count * scale)

    mean = sum(estimates) / trials
    if trials > 1:
        variance = sum((e - mean) ** 2 for e in estimates) / (trials - 1)
        std_error = math.sqrt(variance / trials)
    else:
        std_error = float("inf")
    return ApproximateCount(
        estimate=mean,
        std_error=std_error,
        trials=trials,
        sample_prob=sample_prob,
    )


def error_latency_profile(
    graph: DataGraph,
    pattern: Pattern,
    probabilities: list[float],
    trials: int = 3,
    engine: MiningEngine | None = None,
    seed: int = 0,
) -> list[dict[str, float]]:
    """ASAP-style error/latency sweep over sampling probabilities.

    Returns one row per probability with the estimate, relative error
    against the exact count, and wall time — the data behind ASAP's
    error-latency tradeoff curves.
    """
    import time

    engine = engine or PeregrineEngine()
    exact = engine.count(graph, pattern)
    rows = []
    for prob in probabilities:
        start = time.perf_counter()
        approx = approximate_count(
            graph, pattern, sample_prob=prob, trials=trials, engine=engine, seed=seed
        )
        elapsed = time.perf_counter() - start
        error = abs(approx.estimate - exact) / exact if exact else 0.0
        rows.append(
            {
                "sample_prob": prob,
                "estimate": approx.estimate,
                "exact": float(exact),
                "relative_error": error,
                "seconds": elapsed,
            }
        )
    return rows
