"""Graph mining applications: MC, SC, SE, FSM, cliques, orbits, and more."""

from repro.apps.approximate import approximate_count, error_latency_profile
from repro.apps.clique_finding import clique_census, count_cliques, max_clique_size
from repro.apps.enumeration import enumerate_matches, weight_window_filter
from repro.apps.fsm import FSMResult, mine_frequent_subgraphs
from repro.apps.motif_counting import count_motifs, motif_census
from repro.apps.motif_significance import motif_significance, significant_motifs
from repro.apps.orbit_counting import orbit_degree_vectors, orbit_signature
from repro.apps.programs import PatternProgram
from repro.apps.subgraph_counting import count_one, count_subgraphs

__all__ = [
    "FSMResult",
    "PatternProgram",
    "approximate_count",
    "clique_census",
    "count_cliques",
    "count_motifs",
    "count_one",
    "count_subgraphs",
    "enumerate_matches",
    "error_latency_profile",
    "max_clique_size",
    "mine_frequent_subgraphs",
    "motif_census",
    "motif_significance",
    "orbit_degree_vectors",
    "orbit_signature",
    "significant_motifs",
    "weight_window_filter",
]
