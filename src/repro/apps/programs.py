"""Pattern-based programming model (Peregrine-style fluent API).

The paper stresses that pattern-centric systems pair the matching engine
with *a high-level programming framework*: applications are written as
operations over the subgraphs matching declared patterns. This module
reproduces that front-end as a small fluent builder::

    census = (
        PatternProgram.on(graph)
        .match(motif_patterns(4))
        .count()
    )

    heavy = (
        PatternProgram.on(graph)
        .match([star, path])
        .filter(lambda pattern, m: weights[m[0]] > 0)
        .map(lambda pattern, m: 1)
        .reduce(lambda a, b: a + b, zero=0)
    )

``count()``/``exists()``/``mni()`` route through :class:`MorphingSession`
(so Subgraph Morphing applies transparently, exactly the paper's "add-on
module" claim), while ``filter``/``map``/``reduce`` pipelines stream
matches through Algorithm 3's on-the-fly conversion.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core.aggregation import (
    CountAggregation,
    ExistenceAggregation,
    Match,
    MNIAggregation,
)
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession

FilterFn = Callable[[Pattern, Match], bool]
MapFn = Callable[[Pattern, Match], Any]


class PatternProgram:
    """Fluent builder over (graph, patterns, filter, engine, morphing)."""

    def __init__(self, graph: DataGraph) -> None:
        self._graph = graph
        self._patterns: list[Pattern] = []
        self._filters: list[FilterFn] = []
        self._engine: MiningEngine | None = None
        self._morph = True
        self._margin = 0.6
        self._workers = 1
        self._executor = None

    # -- construction -----------------------------------------------------

    @classmethod
    def on(cls, graph: DataGraph) -> "PatternProgram":
        return cls(graph)

    def match(self, patterns: Iterable[Pattern] | Pattern) -> "PatternProgram":
        """Declare the patterns of interest (appends on repeat calls)."""
        if isinstance(patterns, Pattern):
            self._patterns.append(patterns)
        else:
            self._patterns.extend(patterns)
        return self

    def filter(self, predicate: FilterFn) -> "PatternProgram":
        """Keep only matches passing ``predicate(pattern, match)``."""
        self._filters.append(predicate)
        return self

    def using(self, engine: MiningEngine) -> "PatternProgram":
        self._engine = engine
        return self

    def morphing(self, enabled: bool = True, margin: float | None = None) -> "PatternProgram":
        self._morph = enabled
        if margin is not None:
            self._margin = margin
        return self

    def parallel(self, workers: int, executor=None) -> "PatternProgram":
        """Shard-parallel matching for the terminal operations.

        ``workers > 1`` fans each pattern over degree-balanced
        root-vertex shards; results are merged deterministically and are
        identical to the serial run. ``executor`` picks the transport
        (``"process"`` default, ``"serial"`` for in-process sharding).
        """
        self._workers = workers
        self._executor = executor
        return self

    # -- terminal operations ------------------------------------------------

    def count(self) -> dict[Pattern, int]:
        """Match counts per pattern (exact; morphing applies when on)."""
        if self._filters:
            # Filtered counting must see matches: stream and tally.
            totals: dict[Pattern, int] = {p: 0 for p in self._patterns}

            def bump(pattern: Pattern, match: Match) -> None:
                totals[pattern] += 1

            self._stream(bump)
            return totals
        result = self._session(CountAggregation()).run(self._graph, self._patterns)
        return dict(result.results)

    def exists(self) -> dict[Pattern, bool]:
        """Whether each pattern has at least one (passing) match."""
        if self._filters:
            found = {p: False for p in self._patterns}

            def note(pattern: Pattern, match: Match) -> None:
                found[pattern] = True

            self._stream(note)
            return found
        result = self._session(ExistenceAggregation()).run(
            self._graph, self._patterns
        )
        return {p: bool(v) for p, v in result.results.items()}

    def mni(self) -> dict[Pattern, tuple]:
        """Minimum-node-image tables per pattern (the FSM aggregation)."""
        if self._filters:
            raise ValueError(
                "mni() with filters is application logic; use map/reduce"
            )
        result = self._session(MNIAggregation()).run(self._graph, self._patterns)
        return dict(result.results)

    def collect(self) -> dict[Pattern, list[Match]]:
        """Materialize every (passing) match per pattern."""
        out: dict[Pattern, list[Match]] = {p: [] for p in self._patterns}

        def keep(pattern: Pattern, match: Match) -> None:
            out[pattern].append(match)

        self._stream(keep)
        return out

    def for_each(self, action: Callable[[Pattern, Match], None]) -> None:
        """Run ``action`` on every (passing) match."""
        self._stream(action)

    def map(self, fn: MapFn) -> "_MappedProgram":
        """Per-match projection; chain ``.reduce(...)`` to fold."""
        return _MappedProgram(self, fn)

    # -- plumbing -------------------------------------------------------------

    def _session(self, aggregation) -> MorphingSession:
        return MorphingSession(
            self._engine or PeregrineEngine(),
            aggregation=aggregation,
            enabled=self._morph,
            margin=self._margin,
            workers=self._workers,
            executor=self._executor,
        )

    def _stream(self, consumer: Callable[[Pattern, Match], None]) -> None:
        if not self._patterns:
            return
        filters = list(self._filters)

        def process(pattern: Pattern, match: Match) -> None:
            for predicate in filters:
                if not predicate(pattern, match):
                    return
            consumer(pattern, match)

        session = MorphingSession(
            self._engine or PeregrineEngine(),
            enabled=self._morph,
            margin=self._margin,
            workers=self._workers,
            executor=self._executor,
        )
        session.run_streaming(self._graph, self._patterns, process)


class _MappedProgram:
    """The ``map`` stage: holds the projection until ``reduce`` runs it."""

    def __init__(self, program: PatternProgram, fn: MapFn) -> None:
        self._program = program
        self._fn = fn

    def reduce(
        self, combine: Callable[[Any, Any], Any], zero: Any
    ) -> dict[Pattern, Any]:
        """Fold the projected values per pattern."""
        accumulators: dict[Pattern, Any] = {
            p: zero for p in self._program._patterns
        }

        def step(pattern: Pattern, match: Match) -> None:
            accumulators[pattern] = combine(
                accumulators[pattern], self._fn(pattern, match)
            )

        self._program._stream(step)
        return accumulators

    def collect(self) -> dict[Pattern, list[Any]]:
        """All projected values per pattern."""
        out: dict[Pattern, list[Any]] = {p: [] for p in self._program._patterns}

        def step(pattern: Pattern, match: Match) -> None:
            out[pattern].append(self._fn(pattern, match))

        self._program._stream(step)
        return out
