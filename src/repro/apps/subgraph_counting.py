"""Subgraph Counting (SC): count matches of arbitrary query patterns.

Unlike motif counting, the query set here is sparse — single patterns or
small sets — so alternative sets may introduce *extra* superpatterns the
input never asked for. Section 7.1 uses this as the stress case: morphing
must still win after paying for those extra patterns.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession, MorphRunResult


def count_subgraphs(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    engine: MiningEngine | None = None,
    morph: bool = True,
) -> MorphRunResult:
    """Count matches for each query pattern (vertex- or edge-induced)."""
    session = MorphingSession(engine or PeregrineEngine(), enabled=morph)
    return session.run(graph, list(patterns))


def count_one(
    graph: DataGraph,
    pattern: Pattern,
    engine: MiningEngine | None = None,
    morph: bool = True,
) -> int:
    """Count a single pattern's matches."""
    return count_subgraphs(graph, [pattern], engine=engine, morph=morph).results[
        pattern
    ]
