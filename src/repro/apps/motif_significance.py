"""Network-motif significance (Milo et al. [44]) on top of motif counting.

The original "network motifs" definition the paper's introduction builds
on: a motif is significant when its count in the real graph exceeds its
count in degree-preserving random graphs by several standard deviations.
This application composes the library's motif counting (morphing applies
underneath) with the double-edge-swap null model
(:func:`repro.graph.generators.rewire`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.atlas import pattern_name
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.graph.datagraph import DataGraph
from repro.graph.generators import rewire


@dataclass(frozen=True)
class MotifSignificance:
    """One motif's count against the null-model distribution."""

    pattern: Pattern
    observed: int
    null_mean: float
    null_std: float

    @property
    def z_score(self) -> float:
        """Standard score; ``inf`` when the null never varies but the
        observation differs (rare on tiny graphs)."""
        if self.null_std > 0:
            return (self.observed - self.null_mean) / self.null_std
        return 0.0 if self.observed == self.null_mean else math.inf

    @property
    def name(self) -> str:
        return pattern_name(self.pattern)


def motif_significance(
    graph: DataGraph,
    size: int = 3,
    null_samples: int = 10,
    engine: MiningEngine | None = None,
    morph: bool = True,
    seed: int = 0,
) -> list[MotifSignificance]:
    """Z-scores of every ``size``-motif against rewired null graphs.

    ``null_samples`` independent double-edge-swap randomizations supply
    the null distribution; motif counts (real and null) run through the
    same morphing-enabled pipeline.
    """
    from repro.apps.motif_counting import count_motifs

    if null_samples < 2:
        raise ValueError("need at least two null samples for a std estimate")

    observed = count_motifs(graph, size, engine=engine, morph=morph).results
    patterns = list(observed)

    null_counts: dict[Pattern, list[int]] = {p: [] for p in patterns}
    for sample in range(null_samples):
        null_graph = rewire(graph, seed=seed + sample)
        counts = count_motifs(null_graph, size, engine=engine, morph=morph).results
        for p in patterns:
            null_counts[p].append(counts[p])

    results = []
    for p in patterns:
        samples = null_counts[p]
        mean = sum(samples) / len(samples)
        variance = sum((c - mean) ** 2 for c in samples) / (len(samples) - 1)
        results.append(
            MotifSignificance(
                pattern=p,
                observed=observed[p],
                null_mean=mean,
                null_std=math.sqrt(variance),
            )
        )
    results.sort(key=lambda r: -abs(r.z_score) if math.isfinite(r.z_score) else -math.inf)
    return results


def significant_motifs(
    graph: DataGraph,
    size: int = 3,
    threshold: float = 2.0,
    **kwargs,
) -> list[MotifSignificance]:
    """Motifs whose |z| exceeds the threshold (the Milo et al. criterion)."""
    return [
        r
        for r in motif_significance(graph, size, **kwargs)
        if math.isfinite(r.z_score) and abs(r.z_score) >= threshold
    ]
