"""Clique Finding: maximum clique size and k-clique counting.

One of the applications the paper lists (Section 2). Cliques are the one
pattern family that is simultaneously edge- and vertex-induced, so
morphing is a no-op for a single clique query — but clique *census*
queries (all clique sizes up to k) still route through the shared
engines, and the existence probe uses the cheap
:class:`~repro.core.aggregation.ExistenceAggregation`.
"""

from __future__ import annotations

from repro.core.aggregation import ExistenceAggregation
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph


def count_cliques(
    graph: DataGraph,
    size: int,
    engine: MiningEngine | None = None,
) -> int:
    """Number of ``size``-cliques in the graph."""
    if size < 2:
        raise ValueError("cliques start at 2 vertices (edges)")
    engine = engine or PeregrineEngine()
    return engine.count(graph, Pattern.clique(size))


def clique_census(
    graph: DataGraph,
    max_size: int,
    engine: MiningEngine | None = None,
) -> dict[int, int]:
    """Counts of every clique size from 2 to ``max_size``.

    Stops early once a size has no matches (supersets cannot exist).
    """
    engine = engine or PeregrineEngine()
    census: dict[int, int] = {}
    for size in range(2, max_size + 1):
        count = engine.count(graph, Pattern.clique(size))
        census[size] = count
        if count == 0:
            break
    return census


def max_clique_size(
    graph: DataGraph,
    engine: MiningEngine | None = None,
    upper_bound: int | None = None,
) -> int:
    """Size of the largest clique, via existence probes per size.

    Uses the degeneracy-style bound ``max_degree + 1`` unless a tighter
    ``upper_bound`` is provided; probes sizes upward and stops at the
    first absent size.
    """
    engine = engine or PeregrineEngine()
    bound = upper_bound or (graph.max_degree + 1)
    exists = ExistenceAggregation()
    best = 1 if graph.num_vertices else 0
    for size in range(2, bound + 1):
        if engine.aggregate(graph, Pattern.clique(size), exists):
            best = size
        else:
            break
    return best
