"""Subgraph Enumeration (SE): stream every match through a user UDF.

The paper's streaming workload (Section 7.3): matches are returned to the
application as they are explored, optionally filtered on vertex
properties. With morphing enabled, matches of vertex-induced alternatives
are converted on-the-fly (Algorithm 3); since the filter only depends on
the matched vertex *set*, it runs once per alternative match — before the
permutation fan-out — which is where the reported UDF-time savings come
from.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.aggregation import Match
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.graph.datagraph import DataGraph
from repro.morph.session import MorphingSession, MorphRunResult


def enumerate_matches(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    process: Callable[[Pattern, Match], None],
    engine: MiningEngine | None = None,
    morph: bool = True,
    vertex_filter: Callable[[Match], bool] | None = None,
) -> MorphRunResult:
    """Stream matches of the query patterns through ``process``.

    ``result.results`` maps each query to the number of matches emitted.
    """
    session = MorphingSession(engine or PeregrineEngine(), enabled=morph)
    return session.run_streaming(
        graph, list(patterns), process, vertex_filter=vertex_filter
    )


def weight_window_filter(
    weights: np.ndarray, num_std: float = 1.0
) -> Callable[[Match], bool]:
    """The Section 7.3 filter: mean matched weight within ``num_std`` σ.

    ``weights`` holds one weight per data vertex; a match passes when the
    average weight of its vertices lies within ``num_std`` standard
    deviations of the weight distribution's mean.
    """
    mean = float(np.mean(weights))
    std = float(np.std(weights))
    lo, hi = mean - num_std * std, mean + num_std * std

    def accept(match: Match) -> bool:
        avg = sum(float(weights[v]) for v in match) / len(match)
        return lo <= avg <= hi

    return accept


def collect_matches(
    graph: DataGraph,
    pattern: Pattern,
    engine: MiningEngine | None = None,
    morph: bool = True,
) -> set[frozenset[int]]:
    """Convenience: the set of matched vertex sets for one pattern."""
    found: set[frozenset[int]] = set()

    def process(_p: Pattern, match: Match) -> None:
        found.add(frozenset(match))

    enumerate_matches(graph, [pattern], process, engine=engine, morph=morph)
    return found
