"""Structured exception hierarchy for the fault-tolerance layer.

Every failure the execution stack can surface derives from
:class:`ReproError`, so callers embedding the library can catch one
type and still pattern-match on the concrete failure. The hierarchy
replaces the silent ``except Exception`` clamps the shard-parallel
layer used to hide degradation behind: a failure is now either
*recovered* (retry, in-process fallback, checkpoint resume — visible as
tracer spans and warnings) or *typed* (one of the classes below), never
swallowed.

Each subclass doubles as a plain stdlib type where one fits
(``GraphValidationError`` is a ``ValueError``, ``RunDeadlineExceeded``
a ``TimeoutError``), so pre-existing ``except ValueError`` call sites
keep working.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CheckpointError",
    "GraphValidationError",
    "ReproError",
    "RunDeadlineExceeded",
    "SharedMemoryLeakError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for every structured error this package raises."""


class WorkerCrashError(ReproError):
    """A shard's worker crashed and every recovery path was exhausted.

    Raised by the fault-tolerant executor after per-shard retries (with
    exponential backoff) *and* the in-process serial fallback all
    failed. Carries enough context to identify the poisoned shard.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: tuple[int, int] | None = None,
        shard_index: int | None = None,
        attempts: int = 0,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.shard_index = shard_index
        self.attempts = attempts
        if cause is not None:
            self.__cause__ = cause


class RunDeadlineExceeded(ReproError, TimeoutError):
    """A run's deadline expired before all shards completed.

    The default deadline behavior is *graceful degradation* — the run
    returns a :class:`repro.PartialRunResult` instead of raising — so
    this type only surfaces where a partial result cannot be expressed
    (e.g. streaming mode, which has no batched store to degrade to).
    """

    def __init__(
        self, message: str, *, deadline_seconds: float | None = None
    ) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds


class SharedMemoryLeakError(ReproError):
    """A shared-memory graph segment outlived its owning executor.

    Raised by the leak probe
    (:func:`repro.engines.execution.assert_no_leaked_segments`) that the
    test suite runs after every test; a leak means some exit path
    skipped :meth:`SharedGraphPayload.dispose`.
    """

    def __init__(self, message: str, segments: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.segments = segments


class GraphValidationError(ReproError, ValueError):
    """A graph input failed up-front validation.

    Raised by the loaders in :mod:`repro.graph.io` (and by CSR
    construction) with the *source* context — file and line — so bad
    inputs fail at the boundary with an actionable message instead of
    deep inside the CSR build.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Any | None = None,
        line: int | None = None,
    ) -> None:
        where = ""
        if path is not None:
            where = f"{path}"
            if line is not None:
                where += f":{line}"
            where = f" [{where}]"
        super().__init__(f"{message}{where}")
        self.path = path
        self.line = line


class CheckpointError(ReproError):
    """A checkpoint file is unusable for the run resuming from it.

    Raised when the checkpoint's meta line disagrees with the resuming
    run's configuration (different graph, engine, or aggregation) or
    the file is structurally unreadable. Individually corrupt *shard
    records* do not raise — they are dropped with a warning and the
    shard is recomputed.
    """
