"""Typed run configuration: :class:`RunOptions`.

``repro.run()`` grew one keyword at a time — workers, margin, caches,
tracing, batching, four fault-tolerance knobs — until its signature was
sixteen loose kwargs that every layer (facade, session, CLI, bench
harness) re-declared in parallel. :class:`RunOptions` consolidates them
into one frozen, validated dataclass that is simultaneously:

* the **primary API**: ``repro.run(graph, patterns, options=RunOptions(
  workers=4, strategy="auto"))`` — the loose kwargs keep working through
  warn-once deprecation shims (:mod:`repro._compat`);
* the **session configuration**: :class:`repro.MorphingSession` consumes
  a ``RunOptions`` directly instead of re-declaring the kwarg list;
* the **wire request schema** of the resident mining service
  (:mod:`repro.serve`): :meth:`RunOptions.to_dict` /
  :meth:`RunOptions.from_dict` round-trip the JSON form a client submits
  to a ``repro serve`` daemon.

Fields split into *wire-safe* values (names, numbers, paths — these JSON
round-trip exactly) and *local-only* live objects (an attached
:class:`repro.Tracer`, a shared :class:`repro.MeasurementCache`, an open
checkpoint, a fault plan). Local-only objects are accepted anywhere the
options are used in-process; :meth:`to_dict` refuses to serialize them
so a request can never silently drop configuration on the wire.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.core.aggregation import (
    Aggregation,
    CountAggregation,
    ExistenceAggregation,
    MatchListAggregation,
    MNIAggregation,
)

__all__ = ["RunOptions", "resolve_aggregation"]

#: Wire name -> aggregation factory (the ``Aggregation.name`` values).
AGGREGATIONS: dict[str, type[Aggregation]] = {
    "count": CountAggregation,
    "mni": MNIAggregation,
    "matches": MatchListAggregation,
    "exists": ExistenceAggregation,
}

#: RetryPolicy fields that survive the JSON round-trip (``sleep`` is a
#: callable and stays local).
_RETRY_WIRE_FIELDS = (
    "max_retries",
    "backoff_seconds",
    "backoff_factor",
    "jitter",
    "seed",
)


def resolve_aggregation(spec: "Aggregation | str | None") -> Aggregation:
    """Turn an aggregation spec into a live instance.

    Accepts an :class:`~repro.core.aggregation.Aggregation` instance
    (passed through), a wire name (``"count"``, ``"mni"``, ``"matches"``,
    ``"exists"``), or ``None`` (the counting default).
    """
    if spec is None:
        return CountAggregation()
    if isinstance(spec, Aggregation):
        return spec
    if isinstance(spec, str):
        factory = AGGREGATIONS.get(spec.lower())
        if factory is None:
            raise ValueError(
                f"unknown aggregation {spec!r}; "
                f"choose from {', '.join(sorted(AGGREGATIONS))}"
            )
        return factory()
    raise TypeError(
        f"aggregation must be an Aggregation, a name, or None, got {spec!r}"
    )


@dataclass(frozen=True)
class RunOptions:
    """Frozen, validated configuration for one mining run.

    Construct with keyword arguments, derive variants with
    :meth:`replace`, and serialize the wire-safe form with
    :meth:`to_dict` / :meth:`from_dict`. Validation runs on every
    construction path (including ``replace`` and ``from_dict``), so an
    options object that exists is an options object a session will
    accept.

    Fields mirror the historical ``repro.run()`` keywords one-for-one;
    see :func:`repro.run` for the semantics of each. ``engine`` is the
    registry *name* (the facade's positional ``engine`` argument still
    accepts classes and instances and takes precedence when given).
    """

    engine: str = "peregrine"
    #: ``Aggregation`` instance, wire name, or ``None`` (count).
    aggregation: Any = None
    morph: bool = True
    strategy: str = "auto"
    workers: int = 1
    margin: float = 0.6
    batch_roots: int | None = None
    #: Positive seconds (wire) or a live armed ``Deadline`` (local only —
    #: lets a supervisor such as a serve-side sentinel cancel the run
    #: externally via ``Deadline.expire``).
    deadline_seconds: Any = None
    #: Checkpoint journal path (wire) or an open ``ShardCheckpoint``.
    checkpoint: Any = None
    #: ``int`` max-retries (wire), a ``RetryPolicy``, or ``None``.
    retry: Any = None
    #: ``FaultPlan`` for deterministic fault injection (local only).
    faults: Any = None
    #: Shared ``MeasurementCache`` (local only).
    cache: Any = None
    #: Shared ``PlanCache`` (local only).
    plan_cache: Any = None
    #: ``None``, a JSONL output path (wire), or a live ``Tracer``.
    trace: Any = None
    #: ``None``/``False``, ``True`` (wire), or a live ``ProgressReporter``.
    progress: Any = None

    # -- validation ---------------------------------------------------------

    def __post_init__(self) -> None:
        from repro.plan.search import STRATEGIES

        if not isinstance(self.engine, str) or not self.engine:
            raise TypeError(
                f"RunOptions.engine must be a registry name string, got "
                f"{self.engine!r}; pass engine instances/classes to "
                "repro.run(..., engine=...) directly"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise TypeError(f"workers must be an int, got {self.workers!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if not isinstance(self.margin, (int, float)) or self.margin <= 0:
            raise ValueError(f"margin must be positive, got {self.margin!r}")
        if self.batch_roots is not None and (
            not isinstance(self.batch_roots, int) or self.batch_roots < 1
        ):
            raise ValueError(
                f"batch_roots must be >= 1, got {self.batch_roots!r}"
            )
        if self.deadline_seconds is not None and not self._is_live_deadline(
            self.deadline_seconds
        ):
            if (
                not isinstance(self.deadline_seconds, (int, float))
                or isinstance(self.deadline_seconds, bool)
                or self.deadline_seconds <= 0
            ):
                raise ValueError(
                    f"deadline_seconds must be positive, got "
                    f"{self.deadline_seconds!r}"
                )
        if self.aggregation is not None and not isinstance(
            self.aggregation, (str, Aggregation)
        ):
            raise TypeError(
                f"aggregation must be an Aggregation, a name, or None, "
                f"got {self.aggregation!r}"
            )
        if isinstance(self.aggregation, str):
            resolve_aggregation(self.aggregation)  # raise on unknown names
        if self.retry is not None:
            from repro.engines.recovery import RetryPolicy

            RetryPolicy.resolve(self.retry)  # raises TypeError on bad specs

    @staticmethod
    def _is_live_deadline(value: Any) -> bool:
        """Whether ``value`` is a live ``Deadline`` (local-only)."""
        from repro.engines.recovery import Deadline

        return isinstance(value, Deadline)

    # -- derivation ---------------------------------------------------------

    def replace(self, **changes: Any) -> "RunOptions":
        """A new validated ``RunOptions`` with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    # -- JSON round-trip ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The wire-safe JSON form (the daemon's request schema).

        Raises :class:`ValueError` if a local-only live object (an
        attached tracer or progress reporter, a shared cache, an open
        checkpoint, a fault plan) is set: those cannot cross a process
        boundary and silently dropping them would change behavior.
        """
        local = [
            name
            for name, value in (
                ("faults", self.faults),
                ("cache", self.cache),
                ("plan_cache", self.plan_cache),
            )
            if value is not None
        ]
        aggregation = self.aggregation
        if isinstance(aggregation, Aggregation):
            aggregation = aggregation.name
        checkpoint = self.checkpoint
        if isinstance(checkpoint, Path):
            checkpoint = str(checkpoint)
        elif checkpoint is not None and not isinstance(checkpoint, str):
            local.append("checkpoint")
        retry = self.retry
        if retry is not None and not isinstance(retry, int):
            retry_fields = {
                name: getattr(retry, name, None) for name in _RETRY_WIRE_FIELDS
            }
            if None in retry_fields.values():
                local.append("retry")
            else:
                retry = retry_fields
        trace = self.trace
        if isinstance(trace, Path):
            trace = str(trace)
        elif trace is not None and not isinstance(trace, (str, bool)):
            local.append("trace")
        progress = self.progress
        if progress is not None and not isinstance(progress, bool):
            local.append("progress")
        if self._is_live_deadline(self.deadline_seconds):
            local.append("deadline_seconds")
        if local:
            raise ValueError(
                "RunOptions carries local-only live objects that cannot be "
                f"serialized: {', '.join(sorted(local))}"
            )
        return {
            "engine": self.engine,
            "aggregation": aggregation,
            "morph": self.morph,
            "strategy": self.strategy,
            "workers": self.workers,
            "margin": self.margin,
            "batch_roots": self.batch_roots,
            "deadline_seconds": self.deadline_seconds,
            "checkpoint": checkpoint,
            "retry": retry,
            "trace": trace,
            "progress": bool(progress) if progress is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunOptions":
        """Rebuild options from :meth:`to_dict` output (or a request body).

        Unknown keys are rejected loudly — a misspelled option in a
        daemon request must fail the request, not silently run with
        defaults. Missing keys take their defaults, so sparse request
        bodies (``{"workers": 4}``) are valid.
        """
        if not isinstance(data, Mapping):
            raise TypeError(f"options must be a mapping, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RunOptions field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        values = dict(data)
        retry = values.get("retry")
        if isinstance(retry, Mapping):
            from repro.engines.recovery import RetryPolicy

            unknown_retry = sorted(set(retry) - set(_RETRY_WIRE_FIELDS))
            if unknown_retry:
                raise ValueError(
                    f"unknown retry field(s): {', '.join(unknown_retry)}"
                )
            values["retry"] = RetryPolicy(**dict(retry))
        return cls(**values)

    # -- resolution helpers (consumed by the session and the facade) --------

    def resolved_aggregation(self) -> Aggregation:
        """The live :class:`Aggregation` instance this run aggregates with."""
        return resolve_aggregation(self.aggregation)

    def resolved_tracer(self) -> tuple[Any, Any]:
        """Normalize ``trace`` into ``(tracer, output_path)``.

        ``None``/``False`` → ``(None, None)``; a live ``Tracer`` →
        ``(tracer, None)``; ``True`` → a fresh ``Tracer`` with no output
        path; a path → a fresh ``Tracer`` plus the path the caller
        should write the JSONL trace to after the run.
        """
        from repro.observe.tracer import Tracer

        if self.trace is None or self.trace is False:
            return None, None
        if isinstance(self.trace, Tracer):
            return self.trace, None
        if self.trace is True:
            return Tracer(), None
        return Tracer(), self.trace

    def resolved_progress(self) -> Any:
        """Normalize ``progress`` into a reporter instance or ``None``."""
        from repro.observe.progress import ProgressReporter

        if self.progress is None or self.progress is False:
            return None
        if self.progress is True:
            return ProgressReporter()
        return self.progress
