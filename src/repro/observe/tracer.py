"""Low-overhead span tracer for structured run telemetry.

A :class:`Span` is one timed interval with a name, a parent, and a flat
attribute dict; a :class:`Tracer` records spans on a stack so nested
``with tracer.span(...)`` blocks form a tree (transform → selection,
match → per-item → per-shard → kernel, convert). Design constraints,
in priority order:

1. **Zero cost when off.** Nothing in this module runs unless a caller
   holds a live ``Tracer``; instrumented code guards with a plain
   ``tracer is None`` test and the kernels sample their existing
   :class:`~repro.engines.setops.SetOpStats` counters instead of
   tracing individual set operations (one span per kernel invocation,
   counter deltas as attributes — the hot loop never allocates).
2. **Deterministic reconciliation.** Phase spans are the *same* timer
   the session reports: ``MorphRunResult.transform_seconds`` is the
   transform span's duration, so trace and result always agree.
3. **Cross-process stitching.** Pool workers trace into their own
   ``Tracer`` and ship ``Span`` lists back; :meth:`Tracer.adopt`
   re-ids them, re-parents them under the current span and clamps
   child intervals into the parent window, so the nesting invariant
   (every child interval inside its parent) holds even when worker
   clocks drift.

Timestamps are ``time.perf_counter()`` seconds: on Linux that clock is
``CLOCK_MONOTONIC``, shared across forked workers, which keeps shard
spans on the parent's timeline; :meth:`adopt`'s clamp covers platforms
where it is not.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "timed_span"]


@dataclass
class Span:
    """One timed interval in a run's trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Duration (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": self.attributes,
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "Span":
        return cls(
            span_id=int(record["span_id"]),
            parent_id=(
                int(record["parent_id"]) if record["parent_id"] is not None else None
            ),
            name=str(record["name"]),
            start=float(record["start"]),
            end=float(record["end"]),
            attributes=dict(record.get("attributes", {})),
        )


class Tracer:
    """Records a tree of spans plus run-level metrics and audit records.

    One tracer serves one run. It is deliberately not thread-safe: the
    session and the engines it drives share one thread, and worker
    processes record into their *own* tracer whose spans are adopted
    afterwards (:meth:`adopt`).
    """

    def __init__(self, tags: dict[str, Any] | None = None) -> None:
        from repro.observe.metrics import MetricsRegistry

        self.spans: list[Span] = []
        self.audits: list[Any] = []  # CostAuditRecord, kept loose for pickling
        self.metrics = MetricsRegistry()
        #: Attributes stamped into *every* span this tracer records or
        #: adopts — the propagation mechanism for per-query context
        #: (the daemon sets ``{"query_id": ...}`` so a query's whole
        #: span tree, including worker shards, carries its id).
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self._stack: list[int] = []
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def _new_span(self, name: str, attributes: dict[str, Any]) -> Span:
        if self.tags:
            attributes = {**self.tags, **attributes}
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start=time.perf_counter(),
            attributes=attributes,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body."""
        span = self._new_span(name, attributes)
        self._stack.append(span.span_id)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = time.perf_counter()

    def current_span_id(self) -> int | None:
        """Id of the innermost open span (``None`` at the root)."""
        return self._stack[-1] if self._stack else None

    def audit(self, record: Any) -> None:
        """Attach a cost-model audit record to the trace."""
        self.audits.append(record)

    # -- cross-process stitching ------------------------------------------

    def adopt(self, spans: list[Span], clamp: bool = True) -> None:
        """Graft foreign spans (a worker's trace) under the current span.

        Ids are remapped into this tracer's sequence with internal
        parent links preserved; roots of the foreign forest become
        children of the currently open span. With ``clamp`` (the
        default) every adopted interval is clipped into its new
        parent's live window, preserving the nesting invariant across
        clock domains. This tracer's :attr:`tags` are stamped into
        every adopted span (the span's own attributes win on
        collision), so per-query context survives the worker hop.
        """
        if not spans:
            return
        parent_id = self.current_span_id()
        lo = hi = None
        if clamp and parent_id is not None:
            parent = next(s for s in self.spans if s.span_id == parent_id)
            lo, hi = parent.start, time.perf_counter()
        id_map: dict[int, int] = {}
        for span in spans:
            id_map[span.span_id] = self._next_id
            self._next_id += 1
        for span in spans:
            new_parent = (
                id_map[span.parent_id]
                if span.parent_id in id_map
                else parent_id
            )
            start, end = span.start, span.end
            if lo is not None:
                start = min(max(start, lo), hi)
                end = min(max(end, lo), hi)
            attributes = dict(span.attributes)
            if self.tags:
                attributes = {**self.tags, **attributes}
            self.spans.append(
                Span(
                    span_id=id_map[span.span_id],
                    parent_id=new_parent,
                    name=span.name,
                    start=start,
                    end=end,
                    attributes=attributes,
                )
            )


class _Stopwatch:
    """Duck-typed stand-in yielded by :func:`timed_span` when tracing is off.

    Exposes the two members instrumented code touches on a live
    :class:`Span` — ``seconds`` and ``attributes`` — so call sites need
    exactly one code path whether or not a tracer is attached.
    """

    __slots__ = ("start", "end", "attributes")

    def __init__(self) -> None:
        self.start = time.perf_counter()
        self.end = self.start
        self.attributes: dict[str, Any] = {}

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)


@contextmanager
def timed_span(tracer: Tracer | None, name: str, **attributes: Any):
    """A span when ``tracer`` is live, a bare stopwatch otherwise.

    Either way the yielded object carries ``.seconds`` after the block
    and a writable ``.attributes`` dict, so phase timing and tracing
    share one timer — the reconciliation guarantee between
    ``MorphRunResult``'s ``*_seconds`` fields and the trace.
    """
    if tracer is not None:
        with tracer.span(name, **attributes) as span:
            yield span
        return
    watch = _Stopwatch()
    if attributes:
        watch.attributes.update(attributes)
    try:
        yield watch
    finally:
        watch.end = time.perf_counter()
