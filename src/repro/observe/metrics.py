"""Run-level metrics registry.

Subsumes the flat :class:`~repro.engines.base.EngineStats` counters into
a general name → value registry so exporters, the bench harness and the
CLI read one structure instead of poking engine internals. Counters add,
gauges overwrite, and :meth:`MetricsRegistry.merge` folds shard or
sub-run registries together with the same semantics.
"""

from __future__ import annotations

from typing import Any

from repro.observe.histogram import StreamingHistogram, WindowGauge

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters (monotonic sums), gauges (last-write-wins),
    streaming histograms (:meth:`observe`) and windowed gauges
    (:meth:`sample_window`).

    :meth:`snapshot` deliberately stays counters + gauges only — the
    flat view older exporters and the trace-invariance tests consume —
    while distributions are read through :meth:`histogram_snapshots`
    and :meth:`window`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        self._histograms: dict[str, StreamingHistogram] = {}
        self._windows: dict[str, WindowGauge] = {}

    # -- write -------------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        """Set gauge ``name`` to ``value`` (overwrites)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the streaming histogram ``name``.

        The histogram is created on first use with the default latency
        layout (1µs..10ks, 10 buckets/decade); the record path is O(1)
        and allocation-free thereafter.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = StreamingHistogram()
        hist.record(value)

    def sample_window(self, name: str, value: float) -> None:
        """Record a sample into window gauge ``name`` (and gauge ``name``).

        The plain gauge keeps its last-write-wins view of the same
        quantity, so readers of :meth:`snapshot` still see the current
        value while :meth:`window` exposes the min/max envelope since
        the previous window read.
        """
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = WindowGauge()
        window.record(value)
        self._gauges[name] = value

    def record_engine_stats(self, stats, prefix: str = "engine.") -> None:
        """Fold an :class:`~repro.engines.base.EngineStats` in as counters.

        Every quantity the paper's profiling figures report becomes a
        metric: set-op counts and seconds (Fig. 4b/c, 12c/d, 13b), UDF
        calls and seconds (Fig. 4a/d/e, 15b), materialization volume,
        and Filter-UDF branches/misses (Fig. 14c/d).
        """
        self.add(prefix + "setops.intersections", stats.setops.intersections)
        self.add(prefix + "setops.differences", stats.setops.differences)
        self.add(prefix + "setops.galloped", stats.setops.galloped)
        self.add(prefix + "setops.batched", stats.setops.batched)
        self.add(prefix + "setops.elements_scanned", stats.setops.elements_scanned)
        self.add(prefix + "setops.seconds", stats.setops.seconds)
        self.add(prefix + "matches", stats.matches)
        self.add(prefix + "materialized", stats.materialized)
        self.add(prefix + "udf.calls", stats.udf_calls)
        self.add(prefix + "udf.seconds", stats.udf_seconds)
        self.add(prefix + "filter.calls", stats.filter_calls)
        self.add(prefix + "filter.seconds", stats.filter_seconds)
        self.add(prefix + "branches", stats.branches)
        self.add(prefix + "branch_misses", stats.branch_misses)
        self.add(prefix + "kernel.seconds", stats.total_seconds)
        self.add(prefix + "patterns_matched", stats.patterns_matched)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges overwrite,
        histograms merge bucket-wise (layouts must match)."""
        for name, value in other._counters.items():
            self.add(name, value)
        self._gauges.update(other._gauges)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = StreamingHistogram(
                    lo=hist.lo,
                    hi=hist.hi,
                    buckets_per_decade=hist.buckets_per_decade,
                )
            mine.merge(hist)

    # -- read --------------------------------------------------------------

    def value(self, name: str, default: Any = 0) -> Any:
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> StreamingHistogram:
        """The streaming histogram ``name`` (created empty on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = StreamingHistogram()
        return hist

    def window(self, name: str) -> WindowGauge:
        """The window gauge ``name`` (created empty on first use)."""
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = WindowGauge()
        return window

    def histogram_snapshots(self) -> dict[str, dict[str, float]]:
        """``name -> quantile summary`` for every non-empty histogram."""
        return {
            name: hist.snapshot()
            for name, hist in sorted(self._histograms.items())
            if hist.count
        }

    def snapshot(self) -> dict[str, Any]:
        """Flat ``name -> value`` view (counters and gauges together).

        Histograms and windows are excluded by design: this is the flat
        scalar view; read distributions via
        :meth:`histogram_snapshots` / :meth:`window`.
        """
        out: dict[str, Any] = dict(self._counters)
        out.update(self._gauges)
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )
