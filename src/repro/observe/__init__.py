"""Structured run telemetry: spans, metrics, cost-model audits.

The measurement substrate behind every profiling claim this repo makes.
A :class:`Tracer` records a tree of phase/item/shard/kernel spans while
a run executes (attach one via ``repro.run(..., trace=...)`` or
``MorphingSession(tracer=...)``); the resulting :class:`RunTrace`
carries the spans, a metrics snapshot subsuming the engine counters,
and one :class:`CostAuditRecord` per measured alternative pattern —
Algorithm 1's predicted cost next to the match time actually observed
(§5.2's accuracy story, made checkable).

:class:`ProgressReporter` is the live side of the same substrate: a
per-item progress/ETA line whose estimate starts from Algorithm 1's
predicted per-item costs and is corrected online by the measured
``match.item`` durations (``repro.run(..., progress=True)``, CLI
``--progress``).

Exporters: :func:`write_jsonl` / :func:`load_trace` for the cookbook's
analysis recipes and the tests, :func:`write_chrome_trace` for flame
graphs in ``chrome://tracing`` / Perfetto. Tracing off costs nothing:
instrumented code guards on ``tracer is None`` and the kernels emit one
span per invocation from their existing ``SetOpStats`` counters rather
than tracing individual set operations.
"""

from repro.observe.audit import CostAuditRecord, rank_agreement
from repro.observe.export import (
    RunTrace,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.histogram import StreamingHistogram, WindowGauge
from repro.observe.metrics import MetricsRegistry
from repro.observe.progress import ProgressReporter, ProgressSnapshot
from repro.observe.tracer import Span, Tracer, timed_span

__all__ = [
    "CostAuditRecord",
    "MetricsRegistry",
    "ProgressReporter",
    "ProgressSnapshot",
    "RunTrace",
    "Span",
    "StreamingHistogram",
    "Tracer",
    "WindowGauge",
    "load_trace",
    "rank_agreement",
    "timed_span",
    "write_chrome_trace",
    "write_jsonl",
]
