"""Streaming latency histograms and windowed gauges for live services.

The offline telemetry (PR 3) measures one run exactly; a resident
daemon needs *distributions* over thousands of queries without keeping
them. :class:`StreamingHistogram` is the standard trick production
systems use: fixed log-spaced bucket boundaries chosen once at
construction, so the record path is one logarithm, one ``int()`` and
one array increment — no allocation, no sort, no sample retention — and
two histograms with the same boundaries merge by adding counts (shard
registries fold into the server registry exactly like counters do).

Quantiles come from the bucket counts by interpolating inside the
bucket that crosses the requested rank. With the default layout
(10 buckets per decade across 1µs..10ks) the relative error of any
quantile is bounded by the bucket width — under 26% — which is far
tighter than the order-of-magnitude skew the dashboard exists to
surface (Peregrine reports per-pattern exploration times spread over
several decades).

:class:`WindowGauge` fixes the companion blind spot: a plain
last-write-wins gauge sampled at admission time only shows whatever the
queue depth happened to be at the last submit. The window gauge keeps
``last``/``min``/``max``/``sample count`` *since the previous read*, so
a stats snapshot reports the envelope of the depth between polls, not a
point sample.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Sequence

__all__ = ["StreamingHistogram", "WindowGauge"]

#: Default bucket layout: 10 log-spaced buckets per decade spanning
#: 1 microsecond to 10,000 seconds — every latency a mining query can
#: plausibly exhibit, from a result-cache hit to a multi-hour scan.
DEFAULT_LO = 1e-6
DEFAULT_HI = 1e4
DEFAULT_BUCKETS_PER_DECADE = 10


class StreamingHistogram:
    """Fixed-boundary log-bucketed histogram with O(1) mergeable records.

    ``lo``/``hi``/``buckets_per_decade`` fix the boundaries at
    construction; values below ``lo`` land in an underflow bucket and
    values at or above ``hi`` in an overflow bucket, so :meth:`record`
    never allocates or resizes. Two histograms with identical layouts
    :meth:`merge` by adding counts.
    """

    __slots__ = (
        "lo",
        "hi",
        "buckets_per_decade",
        "_counts",
        "_log_lo",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade!r}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        self._log_lo = math.log10(self.lo)
        decades = math.log10(self.hi) - self._log_lo
        # +2 for the underflow (index 0) and overflow (last) buckets.
        n = int(math.ceil(decades * self.buckets_per_decade)) + 2
        self._counts = [0] * n
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- write -------------------------------------------------------------

    def record(self, value: float) -> None:
        """Record one observation (O(1), allocation-free)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.lo:
            index = 0
        elif value >= self.hi:
            index = len(self._counts) - 1
        else:
            index = 1 + int(
                (math.log10(value) - self._log_lo) * self.buckets_per_decade
            )
            # Float rounding at an exact boundary may land one past the
            # last interior bucket; clamp rather than spill into overflow.
            if index > len(self._counts) - 2:
                index = len(self._counts) - 2
        self._counts[index] += 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram in; layouts must match exactly."""
        if (
            other.lo != self.lo
            or other.hi != self.hi
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"({self.lo}, {self.hi}, {self.buckets_per_decade}) vs "
                f"({other.lo}, {other.hi}, {other.buckets_per_decade})"
            )
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # -- read --------------------------------------------------------------

    def _bucket_edges(self, index: int) -> tuple[float, float]:
        """The value interval covered by interior bucket ``index``."""
        lo = 10.0 ** (self._log_lo + (index - 1) / self.buckets_per_decade)
        hi = 10.0 ** (self._log_lo + index / self.buckets_per_decade)
        return lo, min(hi, self.hi)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), interpolated inside its bucket.

        Exact observed extremes bound the answer: the result is clamped
        into ``[min, max]``, so a histogram fed a single value returns
        that value for every quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                if index == 0:
                    value = self.lo
                elif index == len(self._counts) - 1:
                    value = self.hi
                else:
                    lo, hi = self._bucket_edges(index)
                    fraction = (rank - seen) / bucket_count
                    value = lo + fraction * (hi - lo)
                return min(max(value, self.min), self.max)
            seen += bucket_count
        return self.max

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        """Wire-safe summary: count, sum, mean, min/max, p50/p90/p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_json(self) -> dict[str, Any]:
        """Full mergeable state (layout + counts), for export/transport."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self._counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "StreamingHistogram":
        """Rebuild a histogram from :meth:`to_json` output."""
        hist = cls(
            lo=float(record["lo"]),
            hi=float(record["hi"]),
            buckets_per_decade=int(record["buckets_per_decade"]),
        )
        counts: Sequence[int] = record["counts"]
        if len(counts) != len(hist._counts):
            raise ValueError(
                f"count vector length {len(counts)} does not match layout "
                f"({len(hist._counts)} buckets)"
            )
        hist._counts = [int(c) for c in counts]
        hist.count = int(record["count"])
        hist.total = float(record["sum"])
        if hist.count:
            hist.min = float(record["min"])
            hist.max = float(record["max"])
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.count == 0:
            return "StreamingHistogram(empty)"
        return (
            f"StreamingHistogram(count={self.count}, "
            f"p50={self.quantile(0.5):.4g}, p99={self.quantile(0.99):.4g})"
        )


class WindowGauge:
    """A gauge that keeps its ``min``/``max`` envelope between reads.

    :meth:`record` is called on every change *and* by any periodic
    sampler; :meth:`read` returns ``last``/``min``/``max``/``samples``
    for the window since the previous read and (by default) starts a
    new window seeded with the last value — so consecutive stats
    snapshots partition time without gaps or double counting.
    """

    __slots__ = ("_lock", "_last", "_min", "_max", "_samples")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last: float | None = None
        self._min = math.inf
        self._max = -math.inf
        self._samples = 0

    def record(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        value = float(value)
        with self._lock:
            self._last = value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._samples += 1

    @property
    def last(self) -> float | None:
        """Most recent recorded value (``None`` before any record)."""
        with self._lock:
            return self._last

    def read(self, reset: bool = True) -> dict[str, Any]:
        """The window summary; with ``reset`` a new window begins.

        The new window is seeded with the last value (sample count 0),
        so ``min``/``max`` stay defined even if nothing changes before
        the next read.
        """
        with self._lock:
            if self._last is None:
                return {"last": None, "min": None, "max": None, "samples": 0}
            out = {
                "last": self._last,
                "min": self._min if self._samples else self._last,
                "max": self._max if self._samples else self._last,
                "samples": self._samples,
            }
            if reset:
                self._min = self._last
                self._max = self._last
                self._samples = 0
            return out
