"""Trace containers and exporters: JSONL and Chrome ``trace_event``.

A :class:`RunTrace` is the portable form of one traced run — spans,
metrics snapshot, audit records. :func:`write_jsonl` streams it as one
JSON object per line (a ``meta`` line, then spans, metrics and audits);
:func:`load_trace` reads that file back, so profiling tooling and the
tier-1 tests round-trip without touching live tracer state.
:func:`write_chrome_trace` emits the same spans as Chrome/Perfetto
"complete" (``ph: "X"``) events for flame-graph inspection in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.observe.audit import CostAuditRecord
from repro.observe.tracer import Span, Tracer

__all__ = [
    "RunTrace",
    "load_trace",
    "write_chrome_trace",
    "write_jsonl",
]

#: Format version stamped into every exported trace's ``meta`` line.
TRACE_FORMAT_VERSION = 1


@dataclass
class RunTrace:
    """One run's telemetry: span tree, metrics snapshot, audit records."""

    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    audits: list[CostAuditRecord] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: Tracer, **meta: Any) -> "RunTrace":
        return cls(
            spans=list(tracer.spans),
            metrics=tracer.metrics.snapshot(),
            audits=list(tracer.audits),
            meta=meta,
        )

    # -- queries the cookbook recipes are built on -------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def stage_seconds(self) -> dict[str, float]:
        """Top-level phase durations, keyed by span name.

        Phases are the spans directly under the root ``run`` span
        (``transform``, ``match``, ``convert``, …); their durations are
        the same timers :class:`~repro.morph.session.MorphRunResult`
        reports, so this dict reconciles with the result's
        ``*_seconds`` fields exactly.
        """
        roots = self.find("run")
        if not roots:
            return {}
        out: dict[str, float] = {}
        root_ids = {r.span_id for r in roots}
        for span in self.spans:
            if span.parent_id in root_ids:
                out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    def dominant_stage(self) -> str | None:
        """Name of the costliest top-level phase (``None`` if untraced)."""
        stages = self.stage_seconds()
        if not stages:
            return None
        return max(stages, key=stages.get)

    def validate_nesting(self, slack: float = 1e-6) -> None:
        """Assert every child interval lies within its parent's.

        The invariant the exporters and analysis helpers rely on; spans
        adopted from workers are clamped on arrival, so a violation
        here means a recording bug, not clock skew.
        """
        by_id = {s.span_id: s for s in self.spans}
        for span in self.spans:
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            assert parent is not None, f"span {span.span_id} has unknown parent"
            assert span.start >= parent.start - slack and span.end <= parent.end + slack, (
                f"span {span.span_id} ({span.name}) "
                f"[{span.start:.6f}, {span.end:.6f}] escapes parent "
                f"{parent.span_id} ({parent.name}) "
                f"[{parent.start:.6f}, {parent.end:.6f}]"
            )


def _records(trace: RunTrace) -> Iterable[dict[str, Any]]:
    yield {
        "type": "meta",
        "format_version": TRACE_FORMAT_VERSION,
        **trace.meta,
    }
    for span in trace.spans:
        yield span.to_json()
    if trace.metrics:
        yield {"type": "metrics", "values": trace.metrics}
    for audit in trace.audits:
        yield audit.to_json()


def write_jsonl(trace: RunTrace, path) -> None:
    """Write a trace as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for record in _records(trace):
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")


def load_trace(path) -> RunTrace:
    """Read a JSONL trace back into a :class:`RunTrace`."""
    trace = RunTrace()
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                trace.spans.append(Span.from_json(record))
            elif kind == "metrics":
                trace.metrics.update(record.get("values", {}))
            elif kind == "cost_audit":
                trace.audits.append(CostAuditRecord.from_json(record))
            elif kind == "meta":
                trace.meta = {
                    k: v
                    for k, v in record.items()
                    if k not in ("type", "format_version")
                }
    return trace


def write_chrome_trace(trace: RunTrace, path) -> None:
    """Export spans in Chrome ``trace_event`` format (complete events).

    Timestamps are microseconds relative to the earliest span, so the
    flame graph starts at t=0 regardless of the perf-counter epoch.
    """
    origin = min((s.start for s in trace.spans), default=0.0)
    events = [
        {
            "name": span.name,
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.seconds * 1e6,
            "pid": 1,
            "tid": 1,
            "args": {k: _jsonable(v) for k, v in span.attributes.items()},
        }
        for span in trace.spans
    ]
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
