"""Live progress and ETA for a run's per-item match loop.

The morphing pipeline already *predicts* how long each measured
alternative pattern will take — Algorithm 1's per-item costs are what
selection ranks — and PR 3's telemetry *measures* each ``match.item``
span. :class:`ProgressReporter` closes the loop between the two: the ETA
starts from the predicted per-item cost distribution (so the first line
can already say "item 1 of 6 is 80% of the predicted work") and is
corrected online as items finish, by calibrating seconds-per-cost-unit
from the measured durations so far.

Design constraints mirror the tracer's:

* **Zero cost when off.** The session guards every notification with a
  plain ``progress is None`` test; nothing here imports or runs
  otherwise, and the engines' kernel hot path is untouched (progress is
  session-level, one notification per measured item).
* **Deterministic math.** ETA arithmetic uses only the predicted costs
  and the measured seconds fed in — the wall clock enters solely through
  an injectable ``clock`` (tests drive a fake one).
* **Stream-agnostic.** Rendering writes ``\\r``-terminated lines to any
  text stream (default ``sys.stderr``, the CLI's ``--progress``);
  pass ``stream=None`` explicitly for a silent reporter whose snapshots
  are still queryable.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence, TextIO

__all__ = ["ProgressReporter", "ProgressSnapshot"]

#: Items predicted to cost nothing still count this much, so fractions
#: and ETAs stay finite.
_MIN_COST = 1e-12


@dataclass(frozen=True)
class ProgressSnapshot:
    """One observable moment of a reporter (all derived values frozen)."""

    done_items: int
    total_items: int
    #: Predicted cost units completed / total (Algorithm 1's units).
    done_cost: float
    total_cost: float
    #: Wall seconds since :meth:`ProgressReporter.start`.
    elapsed_seconds: float
    #: Calibrated remaining-time estimate; ``None`` until a rate is
    #: known (no item finished yet and no prior was given).
    eta_seconds: float | None
    current_item: str | None

    @property
    def fraction_done(self) -> float:
        """Completed fraction of the *predicted* work (0..1)."""
        if self.total_cost <= 0:
            return 1.0 if self.done_items >= self.total_items else 0.0
        return min(1.0, self.done_cost / self.total_cost)


class ProgressReporter:
    """Cost-model-seeded, measurement-corrected progress/ETA reporter.

    Lifecycle: :meth:`start` with the ``(label, predicted_cost)`` items
    the match loop will measure, :meth:`item_started` /
    :meth:`item_finished` around each, :meth:`finish` once. A reporter
    is reusable: ``start`` resets all state, so one instance can serve
    several runs in sequence (e.g. the baseline and morphed sides of a
    comparison).
    """

    def __init__(
        self,
        stream: TextIO | None | str = "stderr",
        min_interval: float = 0.1,
        seconds_per_cost: float | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        """``stream`` is where lines render (the default resolves to
        ``sys.stderr`` lazily; pass ``None`` for a silent reporter).
        ``min_interval`` throttles redraws. ``seconds_per_cost`` is an
        optional prior calibration — with it the very first line already
        shows an absolute ETA; without, ETA appears once the first item
        finishes. ``clock`` injects time for tests."""
        self._stream_spec = stream
        self.min_interval = min_interval
        self.prior_seconds_per_cost = seconds_per_cost
        self.clock = clock
        self._reset()

    def _reset(self) -> None:
        self._costs: dict[str, float] = {}
        self._order: list[str] = []
        self._done: set[str] = set()
        self._done_cost = 0.0
        self._done_seconds = 0.0
        self._current: str | None = None
        self._current_started_at = 0.0
        self._current_fraction = 0.0
        self._started_at = 0.0
        self._last_emit = float("-inf")
        self._active = False
        self._rendered = False
        self.events: list[tuple[str, str]] = []

    @property
    def _stream(self) -> TextIO | None:
        if self._stream_spec == "stderr":
            return sys.stderr
        return self._stream_spec  # a real stream, or None (silent)

    # -- lifecycle ---------------------------------------------------------

    def start(self, items: Sequence[tuple[str, float]]) -> None:
        """Begin a run over ``(label, predicted_cost)`` items."""
        self._reset()
        for label, cost in items:
            self._costs[label] = max(float(cost), _MIN_COST)
            self._order.append(label)
        self._started_at = self.clock()
        self._active = True
        self._emit()

    def item_started(self, label: str) -> None:
        """The match loop is about to measure ``label``."""
        self._current = label
        self._current_started_at = self.clock()
        self._current_fraction = 0.0
        self._emit()

    def item_progress(self, fraction: float) -> None:
        """Partial completion (0..1) of the *current* item.

        The batched frontier kernel reports the completed root fraction
        after every root chunk, so the ETA recalibrates per batch instead
        of only at item boundaries — on a one-item run the estimate moves
        long before ``item_finished``. Monotonic (a late or duplicate
        callback can only advance the fraction) and ignored when no item
        is in flight.
        """
        if self._current is None or self._current not in self._costs:
            return
        fraction = min(1.0, max(0.0, float(fraction)))
        self._current_fraction = max(self._current_fraction, fraction)
        self._emit()

    def item_finished(self, label: str, seconds: float) -> None:
        """``label`` finished after ``seconds``; recalibrates the ETA."""
        if label in self._costs and label not in self._done:
            self._done.add(label)
            self._done_cost += self._costs[label]
            self._done_seconds += max(0.0, seconds)
        if self._current == label:
            self._current = None
            self._current_fraction = 0.0
        self._emit()

    def finish(self) -> None:
        """End the run; renders the final (newline-terminated) line."""
        if not self._active:
            return
        self._emit(final=True)
        self._active = False

    def close(self) -> None:
        """Terminate the current line without a final summary.

        The ``finally`` counterpart to :meth:`finish`: when a run
        raises mid-render, the last ``\\r``-overwritten line would
        otherwise be left dangling and the traceback would print on top
        of it. ``close`` writes a bare newline iff a line was rendered
        and :meth:`finish` has not already terminated it — so the happy
        path (``finish`` then ``close``) emits nothing extra.
        """
        if not self._active:
            return
        self._active = False
        if not self._rendered:
            return
        stream = self._stream
        if stream is not None:
            stream.write("\n")
            stream.flush()
        self._rendered = False

    def event(self, kind: str, detail: str) -> None:
        """Record an out-of-band recovery event (retry/fallback/…).

        The fault-tolerance layer reports shard retries and in-process
        fallbacks here; events accumulate in ``events`` (tests assert
        on them, :meth:`start` clears them with the rest of the state)
        and retry/fallback counts are rendered into the progress line
        so a stalling run visibly says why.
        """
        self.events.append((kind, detail))
        if self._active:
            self._emit()

    # -- the estimate ------------------------------------------------------

    def _partial_cost(self) -> float:
        """Cost units completed *inside* the current in-flight item."""
        if self._current is None or self._current_fraction <= 0.0:
            return 0.0
        if self._current in self._done or self._current not in self._costs:
            return 0.0
        return self._current_fraction * self._costs[self._current]

    @property
    def seconds_per_cost(self) -> float | None:
        """Current calibration: measured seconds per predicted cost unit.

        Online-corrected — the cumulative measured/predicted ratio over
        finished items, plus the in-flight item's reported fraction and
        elapsed time when the batched kernel feeds :meth:`item_progress`
        — falling back to the constructor prior before anything has
        finished.
        """
        partial = self._partial_cost()
        if self._done_cost + partial > 0:
            seconds = self._done_seconds
            if partial > 0:
                seconds += max(0.0, self.clock() - self._current_started_at)
            return seconds / (self._done_cost + partial)
        return self.prior_seconds_per_cost

    def eta_seconds(self) -> float | None:
        """Predicted seconds until the match loop completes."""
        rate = self.seconds_per_cost
        if rate is None:
            return None
        remaining = sum(
            self._costs[label]
            for label in self._order
            if label not in self._done
        ) - self._partial_cost()
        return max(0.0, remaining) * rate

    def snapshot(self) -> ProgressSnapshot:
        """Freeze the current state (tests and embedders read this)."""
        return ProgressSnapshot(
            done_items=len(self._done),
            total_items=len(self._order),
            done_cost=self._done_cost + self._partial_cost(),
            total_cost=sum(self._costs.values()),
            elapsed_seconds=max(0.0, self.clock() - self._started_at),
            eta_seconds=self.eta_seconds(),
            current_item=self._current,
        )

    # -- rendering ---------------------------------------------------------

    def _emit(self, final: bool = False) -> None:
        stream = self._stream
        if stream is None:
            return
        now = self.clock()
        if not final and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        snap = self.snapshot()
        parts = [
            f"# progress {snap.done_items}/{snap.total_items} items",
            f"{100.0 * snap.fraction_done:3.0f}% of predicted cost",
        ]
        if snap.eta_seconds is not None and not final:
            parts.append(f"eta ~{snap.eta_seconds:.1f}s")
        if final:
            parts.append(f"done in {snap.elapsed_seconds:.2f}s")
        elif snap.current_item is not None:
            parts.append(f"({snap.current_item})")
        retries = sum(1 for kind, _ in self.events if kind == "retry")
        fallbacks = sum(1 for kind, _ in self.events if kind == "fallback")
        if retries:
            parts.append(f"{retries} retr{'y' if retries == 1 else 'ies'}")
        if fallbacks:
            parts.append(f"{fallbacks} fallback{'s' if fallbacks != 1 else ''}")
        # Left-pad with \r and right-pad with spaces so a shorter line
        # fully overwrites a longer previous one without ANSI escapes.
        stream.write(("\r" + "  ".join(parts)).ljust(79))
        if final:
            stream.write("\n")
            self._rendered = False
        else:
            self._rendered = True
        stream.flush()
