"""Cost-model audit: Algorithm 1's predictions against measured reality.

The paper's §5.2 accuracy story — the cost model only has to *rank*
alternative sets correctly — is unverifiable from flat end-of-run
counters. A traced run therefore emits one :class:`CostAuditRecord` per
measured item (each selected alternative pattern, or a query measured
directly), pairing the predicted relative cost Algorithm 1 used with
the wall-clock match time actually observed for that item, plus one
``selection`` summary record comparing the chosen set's predicted total
against the unmorphed query set's.

:func:`rank_agreement` condenses the records into the number that
matters for selection quality: the fraction of item pairs the model
ordered the same way the measurements did (a Kendall-style concordance;
1.0 = perfect ranking, 0.5 = coin flip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any

__all__ = ["CostAuditRecord", "rank_agreement"]


@dataclass
class CostAuditRecord:
    """Predicted-vs-measured cost for one measured alternative item."""

    #: Human-readable item, e.g. ``"TT^E"`` (pattern text + variant).
    item: str
    #: Canonical 64-bit pattern id of the item's skeleton.
    pattern_id: int
    #: The S-DAG variant code: ``"E"`` (edge-induced), ``"V"``
    #: (vertex-induced), or ``"*"`` on the selection summary record.
    variant: str
    #: ``"alternative"`` (morphed in), ``"query"`` (measured directly),
    #: or ``"selection"`` (the per-run summary record).
    role: str
    #: Algorithm 1's relative cost units for this item (or set total).
    predicted_cost: float
    #: Wall-clock seconds spent matching this item (or the whole set).
    measured_seconds: float
    #: Model-estimated match count, where available.
    predicted_matches: float | None = None
    #: Actual match count, where the aggregation exposes one.
    measured_matches: int | None = None
    #: True when the value came from a MeasurementCache, not a match run.
    cached: bool = False
    extra: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "cost_audit",
            "item": self.item,
            "pattern_id": self.pattern_id,
            "variant": self.variant,
            "role": self.role,
            "predicted_cost": self.predicted_cost,
            "measured_seconds": self.measured_seconds,
            "predicted_matches": self.predicted_matches,
            "measured_matches": self.measured_matches,
            "cached": self.cached,
            "extra": self.extra,
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "CostAuditRecord":
        return cls(
            item=record["item"],
            pattern_id=int(record["pattern_id"]),
            variant=record["variant"],
            role=record["role"],
            predicted_cost=float(record["predicted_cost"]),
            measured_seconds=float(record["measured_seconds"]),
            predicted_matches=record.get("predicted_matches"),
            measured_matches=record.get("measured_matches"),
            cached=bool(record.get("cached", False)),
            extra=dict(record.get("extra", {})),
        )


#: Below this many comparable pairs the concordance is not a verdict:
#: a single pair collapses to 0.0 or 1.0 on one noisy wall-clock sample.
MIN_COMPARABLE_PAIRS = 2


def rank_agreement(records: list[CostAuditRecord]) -> float | None:
    """Concordance between predicted and measured per-item cost ranking.

    Only per-item records with a real measurement participate (cached
    items and the selection summary are skipped). Returns ``None`` when
    fewer than :data:`MIN_COMPARABLE_PAIRS` comparable pairs exist —
    with one pair (two measured items) the score degenerates to 0.0 or
    1.0 on the strength of a single timing, which is noise, not a
    ranking verdict (the regression gate skips ``None``).
    """
    items = [
        r
        for r in records
        if r.role in ("alternative", "query") and not r.cached
    ]
    pairs = concordant = 0
    for a, b in combinations(items, 2):
        if a.predicted_cost == b.predicted_cost or (
            a.measured_seconds == b.measured_seconds
        ):
            continue
        pairs += 1
        predicted = a.predicted_cost < b.predicted_cost
        measured = a.measured_seconds < b.measured_seconds
        concordant += predicted == measured
    if pairs < MIN_COMPARABLE_PAIRS:
        return None
    return concordant / pairs
