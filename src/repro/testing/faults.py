"""Deterministic shard-level fault injection.

The fault-tolerance layer is only trustworthy if its recovery paths are
*exercised*, not just written; this module injects the four failure
modes the execution layer must survive, keyed by **shard index** so
every run of a test hits exactly the same shards:

* ``crash`` — the worker process dies abruptly (``os._exit`` inside a
  pool worker, so the parent sees a real ``BrokenProcessPool``); in an
  in-process transport the same spec raises
  :class:`InjectedWorkerCrash` instead (``os._exit`` would kill the
  test process).
* ``hang`` — the shard wedges: it spins polling the run's stop signal
  and never produces a result, releasing only when the deadline (or a
  saturation cancel) fires. Pair it with a deadline; a hang with no
  stop signal configured is rejected up front.
* ``slow`` — the shard sleeps ``seconds`` before executing normally
  (deadline-pressure without wedging).
* ``corrupt`` — the shard completes but returns a silently wrong value
  (counts off by ``delta``, booleans inverted, lists truncated). Used
  to prove the differential matrix *would catch* silent corruption and
  that checkpoint integrity checking rejects tampered records.

Faults are scoped by attempt: a spec with ``times=2`` fires on attempts
0 and 1 and lets attempt 2 through — which is exactly how the retry
path is proven to converge. ``times=None`` means every attempt (a
"poisoned" shard). Plans are picklable (they ship to pool workers
through the task payload) and :meth:`FaultPlan.random` derives a plan
from a seed for property-style tests.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedWorkerCrash",
    "QueryFaultPlan",
    "QueryFaultSpec",
]

_KINDS = ("crash", "hang", "slow", "corrupt")

#: Query-scoped kinds: the shard kinds plus two wire-level failures the
#: *service* (not the execution layer) must survive.
_QUERY_KINDS = ("crash", "hang", "slow", "corrupt", "torn-socket")


class InjectedWorkerCrash(RuntimeError):
    """The in-process stand-in for a worker process dying abruptly.

    Raised by :meth:`FaultPlan.apply_before_shard` when a ``crash``
    spec fires in a transport that shares the caller's process; the
    recovery layer treats it exactly like a ``BrokenProcessPool``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One shard's injected failure mode.

    ``times`` bounds how many *attempts* the fault affects (``None`` =
    every attempt — a poisoned shard). ``seconds`` is the ``slow``
    delay; ``delta`` the ``corrupt`` offset applied to integer values.
    """

    kind: str
    times: int | None = 1
    seconds: float = 0.05
    delta: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {_KINDS}"
            )

    def active(self, attempt: int) -> bool:
        """Whether this spec fires on the given (0-based) attempt."""
        return self.times is None or attempt < self.times


class FaultPlan:
    """Shard-index-keyed fault schedule for one run.

    Construct directly from a ``{shard_index: FaultSpec}`` mapping or
    derive one deterministically from a seed with :meth:`random`. The
    plan is consulted by the recovery layer (in-process transports) and
    inside ``_run_shard_task`` (pool workers); both call sites key on
    ``(shard_index, attempt)``, so behavior is identical no matter
    which process evaluates the plan.
    """

    def __init__(self, specs: Mapping[int, FaultSpec] | None = None) -> None:
        self.specs: dict[int, FaultSpec] = dict(specs or {})

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{i}:{s.kind}x{s.times if s.times is not None else 'inf'}"
            for i, s in sorted(self.specs.items())
        )
        return f"FaultPlan({{{inner}}})"

    @classmethod
    def crashes(
        cls, shard_indices: Iterable[int], times: int = 1
    ) -> "FaultPlan":
        """Plan that crashes each listed shard ``times`` attempts."""
        return cls({i: FaultSpec("crash", times=times) for i in shard_indices})

    @classmethod
    def random(
        cls,
        num_shards: int,
        seed: int,
        p_fault: float = 0.2,
        kinds: tuple[str, ...] = ("crash", "slow"),
        max_times: int = 2,
    ) -> "FaultPlan":
        """Seed-derived plan: each shard independently faulty with ``p_fault``.

        The RNG is local and fully determined by ``seed``, so the same
        seed always produces the same plan — the property the
        differential matrix needs to shrink failures.
        """
        rng = random.Random(seed)
        specs: dict[int, FaultSpec] = {}
        for index in range(num_shards):
            if rng.random() < p_fault:
                kind = rng.choice(list(kinds))
                specs[index] = FaultSpec(
                    kind,
                    times=rng.randint(1, max_times),
                    seconds=0.01 * rng.randint(1, 3),
                )
        return cls(specs)

    def spec_for(self, shard_index: int, attempt: int) -> FaultSpec | None:
        """The spec that fires for this (shard, attempt), if any."""
        spec = self.specs.get(shard_index)
        if spec is not None and spec.active(attempt):
            return spec
        return None

    # -- application -------------------------------------------------------

    def apply_before_shard(
        self,
        shard_index: int,
        attempt: int,
        *,
        in_worker: bool,
        stop_check: Callable[[], bool] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> bool:
        """Fire pre-execution faults; returns True when the shard must abort.

        ``crash`` kills the process (``in_worker=True``) or raises
        :class:`InjectedWorkerCrash`; ``slow`` sleeps and proceeds;
        ``hang`` polls ``stop_check`` until it fires, then reports the
        shard as aborted (return ``True`` — the caller produces no
        result for it). ``corrupt`` does nothing here (it rewrites the
        result afterwards, see :meth:`transform_value`).
        """
        spec = self.spec_for(shard_index, attempt)
        if spec is None:
            return False
        if spec.kind == "crash":
            if in_worker:
                import os

                os._exit(13)
            raise InjectedWorkerCrash(
                f"injected crash on shard {shard_index} (attempt {attempt})"
            )
        if spec.kind == "slow":
            sleep(spec.seconds)
            return False
        if spec.kind == "hang":
            if stop_check is None:
                raise ValueError(
                    "a 'hang' fault needs a stop signal (deadline or cancel) "
                    "to release it — configure a deadline for this run"
                )
            while not stop_check():
                sleep(0.005)
            return True
        return False  # corrupt: post-execution only

    def transform_value(self, shard_index: int, attempt: int, value):
        """Apply a ``corrupt`` spec to a completed shard's value."""
        spec = self.spec_for(shard_index, attempt)
        if spec is None or spec.kind != "corrupt":
            return value
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + spec.delta
        if isinstance(value, list):
            return value[:-1] if value else value
        return value


@dataclass(frozen=True)
class QueryFaultSpec:
    """One query's injected failure mode in the resident service.

    Query-scoped kinds split between the execution path and the wire:

    * ``crash`` — the query's run dies as a worker crash (the server
      answers with the typed ``worker-crash`` error and the circuit
      breaker counts a failure).
    * ``hang`` — the query wedges until its sentinel cancels it.
    * ``slow`` — the query sleeps ``seconds`` before running (latency
      pressure for the shed controller).
    * ``corrupt`` — the *response bytes* are garbled on the wire, so the
      client sees an unparsable line and must retry; the daemon's own
      state stays correct.
    * ``torn-socket`` — the connection is dropped before the response is
      written; the client sees EOF mid-request and must retry.

    ``times`` bounds how many *attempts* of the same query index the
    fault affects (``None`` = every attempt), exactly like
    :class:`FaultSpec` — which is how client-side retry convergence is
    proven.
    """

    kind: str
    times: int | None = 1
    seconds: float = 0.05
    delta: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _QUERY_KINDS:
            raise ValueError(
                f"unknown query fault kind {self.kind!r}; "
                f"choose from {_QUERY_KINDS}"
            )

    def active(self, attempt: int) -> bool:
        """Whether this spec fires on the given (0-based) attempt."""
        return self.times is None or attempt < self.times


class QueryFaultPlan:
    """Query-index-keyed fault schedule for the resident service.

    The chaos harness installs one of these on a :class:`MiningServer`;
    each arriving ``run`` request carries a client-chosen ``query
    index`` (its position in the driving workload), and the plan tracks
    per-index *attempt* counters server-side so a retried request of the
    same index advances to the next attempt. ``begin`` is the single
    entry point: it burns one attempt and returns ``(spec, attempt)``
    so wire-level and execution-level fault sites observe the same
    attempt number for one request.
    """

    def __init__(
        self, specs: Mapping[int, QueryFaultSpec] | None = None
    ) -> None:
        self.specs: dict[int, QueryFaultSpec] = dict(specs or {})
        self._attempts: dict[int, int] = {}
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{i}:{s.kind}x{s.times if s.times is not None else 'inf'}"
            for i, s in sorted(self.specs.items())
        )
        return f"QueryFaultPlan({{{inner}}})"

    @classmethod
    def random(
        cls,
        num_queries: int,
        seed: int,
        p_fault: float = 0.3,
        kinds: tuple[str, ...] = _QUERY_KINDS,
        max_times: int = 2,
    ) -> "QueryFaultPlan":
        """Seed-derived plan; same seed, same plan, always."""
        rng = random.Random(seed)
        specs: dict[int, QueryFaultSpec] = {}
        for index in range(num_queries):
            if rng.random() < p_fault:
                kind = rng.choice(list(kinds))
                specs[index] = QueryFaultSpec(
                    kind,
                    times=rng.randint(1, max_times),
                    seconds=0.01 * rng.randint(1, 3),
                )
        return cls(specs)

    def begin(self, query_index: int | None) -> tuple[QueryFaultSpec | None, int]:
        """Burn one attempt of ``query_index``; the spec that fires, if any.

        Returns ``(spec, attempt)`` where ``spec`` is ``None`` when no
        fault is scheduled for this attempt. ``None`` indexes (requests
        outside the chaos workload) never fault.
        """
        if query_index is None:
            return None, 0
        with self._lock:
            attempt = self._attempts.get(query_index, 0)
            self._attempts[query_index] = attempt + 1
        return self.spec_for(query_index, attempt), attempt

    def spec_for(
        self, query_index: int, attempt: int
    ) -> QueryFaultSpec | None:
        """The spec that fires for this (query, attempt), if any."""
        spec = self.specs.get(query_index)
        if spec is not None and spec.active(attempt):
            return spec
        return None
