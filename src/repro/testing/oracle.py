"""Serial-oracle differential comparison, shared across the test suites.

Every differential suite in ``tests/`` pins the same contract — a run
under some variation (sharding, fault injection, tracing, batched
frontiers) must return results *byte-identical* to a plain serial run of
the same workload — and each had grown its own copy of the comparison.
This module is the single implementation:

* :func:`canonical` / :func:`results_equal` — byte-level equality of two
  result mappings with key insertion order canonicalized (engine-native
  batched paths and the per-query fault-tolerant conversion emit the
  same mapping in different orders).
* :func:`assert_matches_oracle` — run a workload twice, once plainly
  (the oracle) and once with the caller's session options, and assert
  the variant's results are byte-identical to the oracle's.

Lives under :mod:`repro.testing` rather than ``tests/`` so downstream
engine subclasses can reuse the same differential harness.
"""

from __future__ import annotations

import pickle
from typing import Any, Mapping

__all__ = ["assert_matches_oracle", "canonical", "results_equal"]


def canonical(results: Mapping[Any, Any]) -> bytes:
    """Canonical byte serialization of a result mapping.

    Keys are sorted by ``repr`` before pickling, so two mappings with
    the same entries in different insertion orders serialize alike;
    values must still match byte-for-byte (MNI tables, ordered match
    lists).
    """
    return pickle.dumps(sorted(results.items(), key=lambda kv: repr(kv[0])))


def results_equal(a: Mapping[Any, Any], b: Mapping[Any, Any]) -> bool:
    """Byte-identical result dictionaries, keyed canonically."""
    return canonical(a) == canonical(b)


def _describe_diff(variant: Mapping[Any, Any], oracle: Mapping[Any, Any]) -> str:
    lines = []
    for key in sorted(set(variant) | set(oracle), key=repr):
        got = variant.get(key, "<missing>")
        want = oracle.get(key, "<missing>")
        if pickle.dumps(got) != pickle.dumps(want):
            lines.append(f"  {key!r}: variant={got!r} oracle={want!r}")
    return "\n".join(lines) or "  (values equal; key objects differ)"


def assert_matches_oracle(
    graph,
    pattern,
    engine="peregrine",
    agg=None,
    *,
    oracle_kwargs: Mapping[str, Any] | None = None,
    **run_kwargs,
):
    """Assert a session variant returns results byte-identical to the oracle.

    Runs ``pattern`` (a single :class:`~repro.core.pattern.Pattern` or a
    sequence) on ``graph`` twice through
    :class:`~repro.morph.session.MorphingSession`: once with only
    ``oracle_kwargs`` (default: a plain serial morphed run — the oracle)
    and once with ``run_kwargs`` (the variant under test: ``workers``,
    ``faults``/``retry``, ``tracer``, ``batch_roots``, ...). The variant
    must complete (no :class:`~repro.morph.session.PartialRunResult`)
    and its results must satisfy :func:`results_equal` against the
    oracle's.

    ``engine`` is anything :func:`repro.resolve_engine` accepts — name,
    class, or instance (classes/names give each run a fresh engine).
    ``agg`` is an aggregation instance or class (instantiated fresh per
    run); ``None`` keeps the session default.

    Returns ``(variant, oracle)`` so callers can assert further on
    either result (trace contents, stats, brute-force cross-checks).
    """
    from repro.api import resolve_engine
    from repro.core.pattern import Pattern
    from repro.morph.session import MorphingSession, PartialRunResult

    patterns = [pattern] if isinstance(pattern, Pattern) else list(pattern)

    def run_once(kwargs: Mapping[str, Any]):
        kwargs = dict(kwargs)
        if agg is not None:
            kwargs["aggregation"] = agg() if isinstance(agg, type) else agg
        session = MorphingSession(resolve_engine(engine), **kwargs)
        return session.run(graph, patterns)

    oracle = run_once(oracle_kwargs or {})
    variant = run_once(run_kwargs)
    assert not isinstance(variant, PartialRunResult), (
        f"variant run degraded to a partial result "
        f"(coverage {variant.coverage:.2f}) instead of completing"
    )
    assert results_equal(variant.results, oracle.results), (
        "variant results differ from the serial oracle:\n"
        + _describe_diff(variant.results, oracle.results)
    )
    return variant, oracle
