"""Deterministic test harnesses for the fault-tolerance layer.

Nothing in here runs in production paths unless explicitly injected;
:mod:`repro.testing.faults` is the shard-level fault injector the
``tests/test_fault_tolerance.py`` differential matrix drives.
"""

from repro.testing.faults import FaultPlan, FaultSpec, InjectedWorkerCrash

__all__ = ["FaultPlan", "FaultSpec", "InjectedWorkerCrash"]
