"""Deterministic test harnesses: fault injection and oracle comparison.

Nothing in here runs in production paths unless explicitly injected;
:mod:`repro.testing.faults` is the shard-level fault injector the
``tests/test_fault_tolerance.py`` differential matrix drives, and
:mod:`repro.testing.oracle` is the shared serial-oracle comparison the
differential suites assert with.
"""

from repro.testing.faults import FaultPlan, FaultSpec, InjectedWorkerCrash
from repro.testing.oracle import assert_matches_oracle, canonical, results_equal

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedWorkerCrash",
    "assert_matches_oracle",
    "canonical",
    "results_equal",
]
