"""GraphPi-style engine [57]."""

from repro.engines.graphpi.engine import GraphPiEngine

__all__ = ["GraphPiEngine"]
