"""Inclusion-Exclusion Principle (IEP) counting, GraphPi-style.

GraphPi accelerates *counting* by never iterating the final pattern
vertices when they are mutually non-adjacent: after matching a prefix,
each remaining vertex's candidate set depends only on the prefix, and
the number of ways to pick *distinct* candidates is a small
inclusion-exclusion formula over candidate-set intersections instead of
nested loops. For the 4-star this collapses three leaf loops into
``C(|N(center)|, 3)``-style arithmetic.

Eligibility for a plan suffix of ``k >= 2`` levels:

* no pattern edges or anti-edges between suffix vertices (their
  candidate sets are then prefix-determined and mutually unconstrained);
* symmetry-breaking order constraints between suffix vertices are
  allowed only when the suffix levels are interchangeable (identical
  constraint signatures), in which case the ordered IEP count divides by
  ``k!`` — matching what the restrictions would have enumerated.

The ordered-distinct arithmetic itself is engine-agnostic and now lives
in :mod:`repro.plan.iep`, where the rewrite planner's ``Decompose`` rule
uses it to recombine sub-pattern measurements on *any* engine;
``ordered_distinct_count`` is re-exported here (it is part of this
module's long-standing surface). What stays engine-side is the
plan-suffix analysis and execution: eligibility over
:class:`~repro.engines.plan.PlanLevel` constraints and the counting loop
over an :class:`~repro.engines.plan.ExplorationPlan`.
"""

from __future__ import annotations

import time
from math import factorial

import numpy as np

from repro.engines.base import (
    EngineStats,
    StopExploration,
    clip_to_window,
    level_candidates,
)
from repro.engines.plan import ExplorationPlan, PlanLevel
from repro.engines.setops import exclude
from repro.plan.iep import ordered_distinct_count, set_partitions

__all__ = ["iep_suffix_length", "ordered_distinct_count", "run_iep_count"]

# Backwards-compatible alias for the pre-planner private name.
_set_partitions = set_partitions


def iep_suffix_length(plan: ExplorationPlan) -> int:
    """Longest eligible suffix (0 or >= 2; a 1-suffix is the fast path)."""
    depth = plan.depth
    best = 0
    for start in range(depth - 1):
        suffix = plan.levels[start:]
        if _eligible(suffix, start):
            best = depth - start
            break
    return best if best >= 2 else 0


def _eligible(suffix: tuple[PlanLevel, ...], start: int) -> bool:
    signatures = set()
    constrained_pairs = 0
    for offset, level in enumerate(suffix):
        index = start + offset
        # No structural references into the suffix itself.
        refs = set(level.backward_neighbors) | set(level.backward_anti)
        if any(j >= start for j in refs):
            return False
        bounds = set(level.upper_bounds) | set(level.lower_bounds)
        suffix_bounds = {j for j in bounds if j >= start}
        constrained_pairs += len(suffix_bounds)
        signatures.add(
            (
                level.backward_neighbors,
                level.backward_anti,
                tuple(j for j in level.upper_bounds if j < start),
                tuple(j for j in level.lower_bounds if j < start),
                level.label,
            )
        )
        _ = index
    if constrained_pairs == 0:
        return len(signatures) >= 1
    # Order constraints inside the suffix: only the fully-interchangeable
    # case (identical signatures, totally ordered) is handled by /k!.
    k = len(suffix)
    return len(signatures) == 1 and constrained_pairs == k * (k - 1) // 2


def _suffix_candidates(
    graph, level: PlanLevel, start: int, stack: list[int], stats: EngineStats
) -> np.ndarray:
    """Candidates for a suffix level using prefix constraints only."""
    trimmed = PlanLevel(
        pattern_vertex=level.pattern_vertex,
        backward_neighbors=level.backward_neighbors,
        backward_anti=level.backward_anti,
        upper_bounds=tuple(j for j in level.upper_bounds if j < start),
        lower_bounds=tuple(j for j in level.lower_bounds if j < start),
        non_adjacent=(),
        label=level.label,
    )
    cand = level_candidates(graph, trimmed, stack, stats)
    # Injectivity against the prefix (suffix-suffix handled by IEP).
    prefix_refs = [
        j
        for j in range(start)
        if j not in level.backward_neighbors
    ]
    if prefix_refs:
        cand = exclude(cand, [stack[j] for j in prefix_refs])
    return cand


def run_iep_count(
    graph,
    plan: ExplorationPlan,
    stats: EngineStats,
    suffix_length: int,
    root_window=None,
    should_stop=None,
) -> int:
    """Count matches with IEP applied to the plan's eligible suffix.

    ``root_window`` clips the level-0 loop to one shard's vertex-id
    window (requires ``suffix_length < depth``, i.e. a real root loop);
    ``should_stop`` is polled per root candidate for cross-shard
    cancellation.
    """
    depth = plan.depth
    start = depth - suffix_length
    if start == 0 and root_window is not None:
        raise ValueError("whole-plan IEP suffix cannot be root-sharded")
    suffix = plan.levels[start:]
    # /k! when symmetry restrictions totally order an interchangeable suffix.
    constrained = sum(
        1
        for level in suffix
        for j in level.upper_bounds + level.lower_bounds
        if j >= start
    )
    divisor = factorial(suffix_length) if constrained else 1

    stack: list[int] = [0] * depth
    total = 0

    def descend(level_index: int) -> int:
        if level_index == start:
            candidate_sets = [
                _suffix_candidates(graph, level, start, stack, stats)
                for level in suffix
            ]
            ordered = ordered_distinct_count(candidate_sets, stats)
            return ordered // divisor
        cand = level_candidates(graph, plan.levels[level_index], stack, stats)
        poll = level_index == 0 and should_stop is not None
        if level_index == 0 and root_window is not None:
            cand = clip_to_window(cand, root_window)
        subtotal = 0
        for v in cand.tolist():
            if poll and should_stop():
                raise StopExploration()
            stack[level_index] = v
            subtotal += descend(level_index + 1)
        return subtotal

    wall = time.perf_counter()
    stopped_early = False
    try:
        total = descend(0)
    except StopExploration:
        stopped_early = True
        total = 0
    stats.total_seconds += time.perf_counter() - wall
    if not stopped_early:
        stats.matches += total
    stats.patterns_matched += 1
    return total
