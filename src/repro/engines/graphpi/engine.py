"""GraphPi-style subgraph matching engine [57].

Reproduced behaviours:

* matching orders are selected by a *performance model*: candidate orders
  are enumerated and scored against the probabilistic cost model, and the
  cheapest is compiled into the plan (GraphPi's core idea of exploring
  the schedule/restriction space with a model);
* symmetry breaking via restrictions (shared plan machinery);
* **no native anti-edge support**: vertex-induced queries match the
  edge-induced skeleton and apply a per-match Filter UDF with
  data-dependent edge-existence branches — the Figure 4d / Figure 14
  bottleneck that morphing eliminates.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.canonical import pattern_id
from repro.core.costmodel import CostModel, GraphModel
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED
from repro.engines.base import MiningEngine
from repro.engines.plan import ExplorationPlan
from repro.graph.datagraph import DataGraph

#: Bound on the orders the performance model scores per pattern.
_MAX_ORDERS = 2000


class GraphPiEngine(MiningEngine):
    """Performance-model-driven edge-induced matcher (GraphPi-style).

    Counting additionally applies GraphPi's IEP optimization: when the
    plan ends in mutually non-adjacent vertices, the final loops are
    replaced by an inclusion-exclusion formula over candidate-set
    intersections (:mod:`repro.engines.graphpi.iep`).
    """

    name = "graphpi"
    native_anti_edges = False
    #: Toggle for the IEP counting optimization (ablation hook).
    use_iep = True

    def __init__(self) -> None:
        super().__init__()
        self._model_cache: dict[int, GraphModel] = {}
        self._order_cache: dict[tuple[int, int], tuple[int, ...]] = {}

    def count(
        self, graph: DataGraph, pattern: Pattern, *, root_window=None, cancel=None
    ) -> int:
        if self.use_iep and not self._needs_filter(pattern):
            from repro.engines.graphpi.iep import iep_suffix_length, run_iep_count

            plan = self.make_plan(pattern, graph)
            suffix = iep_suffix_length(plan)
            # A whole-plan suffix has no root loop to shard, so a
            # windowed request falls through to the plain kernel.
            if suffix and (root_window is None or suffix < plan.depth):
                with self.kernel_span(
                    "kernel.iep",
                    depth=plan.depth,
                    suffix=suffix,
                    window=list(root_window) if root_window else None,
                ):
                    return run_iep_count(
                        graph,
                        plan,
                        self.stats,
                        suffix,
                        root_window=root_window,
                        should_stop=cancel.is_set if cancel is not None else None,
                    )
        return super().count(graph, pattern, root_window=root_window, cancel=cancel)

    def make_plan(self, pattern: Pattern, graph: DataGraph) -> ExplorationPlan:
        order = self._select_order(pattern, graph)
        return ExplorationPlan.build(pattern, order=order)

    def _graph_model(self, graph: DataGraph) -> GraphModel:
        key = id(graph)
        model = self._model_cache.get(key)
        if model is None:
            model = GraphModel.from_graph(graph)
            self._model_cache[key] = model
        return model

    def _select_order(self, pattern: Pattern, graph: DataGraph) -> tuple[int, ...]:
        """Enumerate connected-prefix orders, keep the model's cheapest."""
        cache_key = (pattern_id(pattern), id(graph))
        cached = self._order_cache.get(cache_key)
        if cached is not None:
            return cached
        cost_model = CostModel(self._graph_model(graph))
        skel = pattern.edge_induced()
        best_order: tuple[int, ...] | None = None
        best_cost = float("inf")
        scored = 0
        for order in permutations(range(pattern.n)):
            if not _connected_prefix(skel, order):
                continue
            cost = cost_model.order_cost(skel, EDGE_INDUCED, list(order))
            scored += 1
            if cost < best_cost:
                best_cost = cost
                best_order = order
            if scored >= _MAX_ORDERS:
                break
        assert best_order is not None, "connected patterns always admit an order"
        self._order_cache[cache_key] = best_order
        return best_order


def _connected_prefix(pattern: Pattern, order: tuple[int, ...]) -> bool:
    """Every vertex after the first must touch an earlier one."""
    placed: set[int] = set()
    for i, v in enumerate(order):
        if i > 0 and not (pattern.neighbors(v) & placed):
            return False
        placed.add(v)
    return True
