"""BigJoin-style worst-case-optimal join engine [4].

BigJoin evaluates subgraph queries as a sequence of relational joins in a
dataflow system: bindings are extended one query vertex at a time,
breadth-first, with every intermediate binding batch materialized (its
"low-memory dataflow" batches rounds, but per-level materialization is
the structural signature). Reproduced behaviours:

* **breadth-first batch execution**: each level materializes the full
  prefix-binding table before the next level runs (the ``materialized``
  counter grows at every level, unlike the DFS engines);
* candidate extension through adjacency intersections (the worst-case
  optimal extend step);
* **no native anti-edge support**: vertex-induced queries need a
  per-match Filter UDF, exactly like GraphPi (Figure 4e / Figure 14b).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.aggregation import Match
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine, level_candidates
from repro.engines.plan import ExplorationPlan
from repro.graph.datagraph import DataGraph


class BigJoinEngine(MiningEngine):
    """Breadth-first worst-case-optimal join matcher (BigJoin-style)."""

    name = "bigjoin"
    native_anti_edges = False

    def _run_bfs(
        self,
        graph: DataGraph,
        plan: ExplorationPlan,
        on_match: Callable[[Match], None] | None,
        root_window=None,
        should_stop=None,
    ) -> int:
        """Level-synchronous join: extend all bindings by one vertex.

        ``root_window`` clips the level-0 candidates to one shard's
        vertex-id window; ``should_stop`` is polled per prefix binding
        (the BFS analogue of the DFS kernels' per-root-candidate poll).
        """
        with self.kernel_span(
            "kernel.bfs",
            depth=plan.depth,
            window=list(root_window) if root_window else None,
        ):
            return self._bfs_inner(graph, plan, on_match, root_window, should_stop)

    def _bfs_inner(
        self,
        graph: DataGraph,
        plan: ExplorationPlan,
        on_match: Callable[[Match], None] | None,
        root_window=None,
        should_stop=None,
    ) -> int:
        from repro.engines.base import StopExploration, clip_to_window

        start = time.perf_counter()
        stats = self.stats
        depth = plan.depth
        bindings: list[list[int]] = [[]]
        count = 0
        stopped_early = False
        try:
            for level_index, level in enumerate(plan.levels):
                last = level_index == depth - 1
                next_bindings: list[list[int]] = []
                for binding in bindings:
                    if should_stop is not None and should_stop():
                        raise StopExploration()
                    cand = level_candidates(graph, level, binding, stats)
                    if level_index == 0 and root_window is not None:
                        cand = clip_to_window(cand, root_window)
                    if last and on_match is None:
                        count += int(len(cand))
                        stats.materialized += int(len(cand))
                        continue
                    for v in cand.tolist():
                        extended = binding + [v]
                        stats.materialized += 1
                        if last:
                            count += 1
                            on_match(plan.match_to_pattern_order(extended))
                        else:
                            next_bindings.append(extended)
                bindings = next_bindings
                if not bindings and not last:
                    count = 0
                    break
        except StopExploration:
            stopped_early = True
            count = 0  # partial results were delivered via the callback
        stats.total_seconds += time.perf_counter() - start
        if not stopped_early:
            stats.matches += count
        stats.patterns_matched += 1
        return count

    # -- MiningEngine overrides (BFS instead of the DFS kernel) ------------

    def count(
        self, graph: DataGraph, pattern: Pattern, *, root_window=None, cancel=None
    ) -> int:
        plan, needs_filter = self._plan_pattern(pattern, graph)
        should_stop = cancel.is_set if cancel is not None else None
        if not needs_filter:
            return self._run_bfs(graph, plan, None, root_window, should_stop)
        kept = [0]

        def on_match(match: Match) -> None:
            if self._filter_match(graph, pattern, match):
                kept[0] += 1

        self._run_bfs(graph, plan, on_match, root_window, should_stop)
        return kept[0]

    def explore(
        self,
        graph: DataGraph,
        pattern: Pattern,
        process,
        *,
        root_window=None,
        cancel=None,
    ) -> int:
        plan, needs_filter = self._plan_pattern(pattern, graph)
        should_stop = cancel.is_set if cancel is not None else None
        emitted = [0]

        def on_match(match: Match) -> None:
            if needs_filter and not self._filter_match(graph, pattern, match):
                return
            udf_start = time.perf_counter()
            process(pattern, match)
            self.stats.udf_calls += 1
            self.stats.udf_seconds += time.perf_counter() - udf_start
            emitted[0] += 1

        self._run_bfs(graph, plan, on_match, root_window, should_stop)
        return emitted[0]
