"""BigJoin-style worst-case-optimal join engine [4]."""

from repro.engines.bigjoin.engine import BigJoinEngine

__all__ = ["BigJoinEngine"]
