"""SumPA-style engine: pattern-abstraction matching [19].

SumPA observes that a pattern *set* repeats exploration work whenever the
patterns share substructure, and fixes it by matching one *abstract
pattern* (a common subpattern) and completing each concrete pattern from
the shared partial matches. The paper lists SumPA among the systems
Subgraph Morphing applies to (Section 7); this engine reproduces its
core execution strategy:

1. ``count_set`` computes the maximum common connected subpattern of the
   edge-induced queries (:mod:`repro.engines.sumpa.abstraction`);
2. the abstraction is matched once, **without** symmetry breaking (every
   embedding, not occurrence — see below);
3. each abstract embedding is extended per concrete pattern through a
   *residual plan* over the vertices outside the designated embedding,
   counting extensions;
4. per-pattern embedding totals divide by ``|Aut(pattern)|`` to yield
   occurrence counts.

Correctness rests on the unique-decomposition identity documented in the
abstraction module. Vertex-induced patterns and singleton sets fall back
to the shared kernel (anti-edge constraints differ per pattern, so their
abstract matches cannot be shared).
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.isomorphism import automorphisms
from repro.core.pattern import Pattern
from repro.engines.base import MiningEngine
from repro.engines.plan import ExplorationPlan
from repro.engines.setops import exclude, intersect
from repro.engines.sumpa.abstraction import embedding_of, maximum_common_subpattern
from repro.graph.datagraph import DataGraph


class SumPAEngine(MiningEngine):
    """Pattern-abstraction engine for multi-pattern counting."""

    name = "sumpa"
    native_anti_edges = True

    #: Abstractions smaller than this many edges share too little to pay.
    min_abstract_edges = 1

    def count_set(
        self, graph: DataGraph, patterns: Iterable[Pattern]
    ) -> dict[Pattern, int]:
        patterns = list(patterns)
        shared = [p for p in patterns if p.is_edge_induced and p.n >= 2]
        rest = [p for p in patterns if p not in shared]
        counts: dict[Pattern, int] = {}
        if len(shared) >= 2:
            counts.update(self._count_via_abstraction(graph, shared))
        else:
            rest = patterns
            counts = {}
        for p in rest:
            if p not in counts:
                counts[p] = self.count(graph, p)
        return counts

    # -- the abstraction path ------------------------------------------------

    def _count_via_abstraction(
        self, graph: DataGraph, patterns: list[Pattern]
    ) -> dict[Pattern, int]:
        abstract = maximum_common_subpattern(patterns)
        if abstract.num_edges < self.min_abstract_edges:
            return {p: self.count(graph, p) for p in patterns}
        self.last_abstraction = abstract

        residuals = [
            _ResidualPlan.build(abstract, p, embedding_of(abstract, p))
            for p in patterns
        ]
        totals = [0] * len(patterns)

        # Match the abstraction WITHOUT symmetry breaking: embeddings.
        abstract_plan = ExplorationPlan.build(abstract, symmetry_breaking=False)

        def on_abstract(match: tuple[int, ...]) -> None:
            for i, residual in enumerate(residuals):
                totals[i] += residual.extensions(graph, match, self.stats)

        from repro.engines.base import run_plan

        start = time.perf_counter()
        with self.kernel_span(
            "kernel.abstraction",
            patterns=len(patterns),
            abstract_edges=abstract.num_edges,
        ):
            run_plan(graph, abstract_plan, self.stats, on_abstract)
        _ = start  # run_plan already accounts wall time into stats

        return {
            p: totals[i] // len(automorphisms(p))
            for i, p in enumerate(patterns)
        }


class _ResidualPlan:
    """Extension of an abstract embedding to one concrete pattern."""

    def __init__(
        self,
        pattern: Pattern,
        abstract_slots: tuple[int, ...],
        levels: list[tuple[int, list[int], list[int], object]],
        extra_pairs: list[tuple[int, int]],
    ) -> None:
        self.pattern = pattern
        #: abstract position -> concrete vertex (the designated phi).
        self.abstract_slots = abstract_slots
        #: per residual vertex: (vertex, neighbor slot ids, distinct slot
        #: ids, label) where slot ids index the running assignment list.
        self.levels = levels
        #: concrete edges between abstract slots that the abstraction does
        #: not imply (e.g. a chord across the embedded image) — verified
        #: per abstract embedding before extension.
        self.extra_pairs = extra_pairs

    @classmethod
    def build(
        cls, abstract: Pattern, pattern: Pattern, phi: tuple[int, ...]
    ) -> "_ResidualPlan":
        mapped = list(phi)  # assignment slots 0..k-1 hold phi's images
        slot_of = {v: i for i, v in enumerate(mapped)}

        # Concrete edges inside the embedded image not implied by the
        # abstraction's own edges.
        from repro.core.pattern import normalize_edge

        implied = {
            normalize_edge(phi[a], phi[b]) for a, b in abstract.edges
        }
        image = set(phi)
        extra_pairs = [
            (slot_of[u], slot_of[v])
            for u, v in pattern.edges
            if u in image and v in image and normalize_edge(u, v) not in implied
        ]
        residual = [v for v in range(pattern.n) if v not in slot_of]
        # Order residual vertices by connectivity to what's assigned.
        ordered: list[int] = []
        while residual:
            residual.sort(
                key=lambda v: (
                    -sum(1 for w in pattern.neighbors(v) if w in slot_of),
                    v,
                )
            )
            v = residual.pop(0)
            slot_of[v] = len(mapped)
            mapped.append(v)
            ordered.append(v)

        levels = []
        for v in ordered:
            neighbor_slots = sorted(
                slot_of[w] for w in pattern.neighbors(v) if slot_of[w] < slot_of[v]
            )
            distinct_slots = [
                s for s in range(slot_of[v]) if s not in neighbor_slots
            ]
            levels.append((v, neighbor_slots, distinct_slots, pattern.label(v)))
        return cls(pattern, phi, levels, extra_pairs)

    def extensions(self, graph: DataGraph, abstract_match, stats) -> int:
        """Number of ways to complete one abstract embedding."""
        assignment: list[int] = list(abstract_match)
        for su, sv in self.extra_pairs:
            if not graph.has_edge(assignment[su], assignment[sv]):
                return 0
        levels = self.levels
        if not levels:
            return 1
        depth = len(levels)

        def descend(i: int) -> int:
            _v, neighbor_slots, distinct_slots, label = levels[i]
            if neighbor_slots:
                cand = graph.neighbors(assignment[neighbor_slots[0]])
                for s in neighbor_slots[1:]:
                    cand = intersect(
                        cand, graph.neighbors(assignment[s]), stats.setops
                    )
            else:
                cand = graph.all_vertices
            if label is not None and graph.is_labeled:
                labels = graph.labels
                cand = cand[labels[cand] == label]
            if distinct_slots:
                cand = exclude(cand, [assignment[s] for s in distinct_slots])
            if i == depth - 1:
                return int(len(cand))
            total = 0
            assignment.append(0)
            for candidate in cand.tolist():
                assignment[-1] = candidate
                total += descend(i + 1)
            assignment.pop()
            return total

        return descend(0)
