"""SumPA-style pattern-abstraction engine [19]."""

from repro.engines.sumpa.engine import SumPAEngine

__all__ = ["SumPAEngine"]
