"""Pattern abstraction: maximum common subpatterns (SumPA-style).

SumPA [19] eliminates redundancy across a pattern *set* by combining the
input patterns into an abstract pattern, matching the abstraction once,
and completing each concrete pattern from the shared partial matches.
The abstraction machinery here:

* :func:`connected_subpatterns` — all connected subpatterns of a pattern
  up to a vertex budget;
* :func:`maximum_common_subpattern` — the largest connected pattern that
  embeds into every pattern of a set (ties broken toward more edges,
  then more vertices);
* :func:`embedding_of` — one designated injection of the abstraction
  into a concrete pattern, fixing how shared partial matches extend.

The counting identity the engine builds on: fixing one designated
embedding ``φ: abstract → concrete``, every *embedding* (assignment, not
occurrence) of the concrete pattern restricts through ``φ`` to exactly
one abstract embedding, and conversely decomposes uniquely into (abstract
embedding, residual extension). Occurrences follow by dividing embedding
counts by ``|Aut(concrete)|``.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.core.canonical import canonical_form, canonical_permutation
from repro.core.isomorphism import subgraph_isomorphisms
from repro.core.pattern import Pattern


@lru_cache(maxsize=4096)
def connected_subpatterns(pattern: Pattern, max_vertices: int) -> tuple[Pattern, ...]:
    """Connected subpatterns (canonical, deduplicated) up to a size cap.

    A subpattern is induced by a vertex subset and any subset of the edges
    among it; only connected, spanning-its-vertex-set shapes are kept.
    """
    seen: set[Pattern] = set()
    out: list[Pattern] = []
    vertices = range(pattern.n)
    for k in range(1, min(max_vertices, pattern.n) + 1):
        for subset in combinations(vertices, k):
            inside = [
                (u, v)
                for u, v in pattern.edges
                if u in subset and v in subset
            ]
            index = {v: i for i, v in enumerate(subset)}
            for r in range(len(inside) + 1):
                for edge_subset in combinations(inside, r):
                    labels = (
                        [pattern.label(v) for v in subset]
                        if pattern.labels is not None
                        else None
                    )
                    candidate = Pattern(
                        k,
                        [(index[u], index[v]) for u, v in edge_subset],
                        labels=labels,
                    )
                    if k > 1 and not candidate.is_connected:
                        continue
                    canon = canonical_form(candidate)
                    if canon not in seen:
                        seen.add(canon)
                        out.append(canon)
    return tuple(out)


def maximum_common_subpattern(
    patterns: list[Pattern], max_vertices: int = 5
) -> Pattern:
    """Largest connected pattern embedding into every input pattern."""
    if not patterns:
        raise ValueError("need at least one pattern")
    skeletons = [canonical_form(p.edge_induced()) for p in patterns]
    smallest = min(skeletons, key=lambda p: (p.n, p.num_edges))
    best: Pattern | None = None
    for candidate in connected_subpatterns(smallest, max_vertices):
        if best is not None and (
            (candidate.num_edges, candidate.n)
            <= (best.num_edges, best.n)
        ):
            continue
        if all(subgraph_isomorphisms(candidate, skel) for skel in skeletons):
            best = candidate
    assert best is not None, "the single vertex embeds everywhere"
    return best


def embedding_of(abstract: Pattern, concrete: Pattern) -> tuple[int, ...]:
    """One designated injection ``φ: V(abstract) -> V(concrete)``.

    ``concrete`` is taken as given (any numbering); the embedding is
    computed against its canonical form and mapped back, so the result
    indexes ``concrete``'s own vertices. Deterministic (first in sorted
    order).
    """
    skel = canonical_form(concrete.edge_induced())
    maps = subgraph_isomorphisms(canonical_form(abstract), skel)
    if not maps:
        raise ValueError("abstract pattern does not embed into the concrete one")
    chosen = maps[0]
    # ``chosen`` maps canonical-abstract -> canonical-concrete vertices;
    # compose with both canonicalizing permutations so the result maps the
    # GIVEN abstract's numbering to the GIVEN concrete's numbering.
    abstract_perm = canonical_permutation(abstract.edge_induced())
    concrete_perm = canonical_permutation(concrete.edge_induced())
    inverse = [0] * concrete.n
    for original, canon in enumerate(concrete_perm):
        inverse[canon] = original
    return tuple(inverse[chosen[abstract_perm[u]]] for u in range(abstract.n))
