"""Instrumented sorted-set operations with size-adaptive kernels.

Matching engines spend most of their time intersecting and differencing
sorted adjacency arrays (Observation 2 / Figure 4); these wrappers are the
single place that work happens so the per-op counters and timings that
the paper's profiling figures report come for free.

Each operation dispatches on the input-size ratio:

* **merge path** — ``np.intersect1d(assume_unique=True)`` when the two
  arrays are comparable in length (linear merge over both inputs);
* **galloping path** — when ``len(big) / len(small) >= GALLOP_RATIO``
  the small array is probed into the big one with one vectorized binary
  search (``searchsorted``), ``O(small · log big)``, the classic win on
  skewed hub-versus-candidate intersections;
* **disjoint-range fast path** — two scalar compares detect
  non-overlapping value ranges (common under symmetry-breaking bounds)
  and skip the kernel entirely.

``difference`` and ``exclude`` always use the probe path: numpy's
``setdiff1d``/``isin`` build sort/lookup tables that cost 5–10× a
binary-search probe at adjacency-list sizes.

Every returned array is **read-only** (``flags.writeable = False``),
including aliases of the inputs — callers share buffers with the CSR
graph and with each other, so a writable return would be a latent
corruption hazard.

Setting ``ADAPTIVE = False`` (see :func:`use_adaptive`) routes every
call through the seed's plain ``intersect1d``/``setdiff1d``/``isin``
kernels — the pre-refactor baseline the benchmarks compare against.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

#: Size ratio beyond which intersection gallops instead of merging.
GALLOP_RATIO = 8

#: Module-wide kernel dispatch switch (True = adaptive, False = the
#: seed's numpy set-routine path). Tests and benchmarks flip it through
#: :func:`use_adaptive`; the entry points below read it per call.
ADAPTIVE = True


@contextmanager
def use_adaptive(enabled: bool):
    """Temporarily select the adaptive or legacy kernel path."""
    global ADAPTIVE
    previous = ADAPTIVE
    ADAPTIVE = enabled
    try:
        yield
    finally:
        ADAPTIVE = previous


def _readonly(arr: np.ndarray) -> np.ndarray:
    """A read-only alias of ``arr`` (zero-copy; never flips caller flags)."""
    if not arr.flags.writeable:
        return arr
    view = arr.view()
    view.flags.writeable = False
    return view


@dataclass
class SetOpStats:
    """Counters for the set-operation portion of a matching run."""

    intersections: int = 0
    differences: int = 0
    elements_scanned: int = 0
    seconds: float = 0.0
    #: Ops that took the galloping searchsorted path (adaptive dispatch).
    galloped: int = 0
    #: Whole-frontier vectorized ops (:mod:`repro.engines.frontier`);
    #: one tick covers an entire batch of per-root operations.
    batched: int = 0

    @property
    def total_ops(self) -> int:
        return self.intersections + self.differences

    def merge(self, other: "SetOpStats") -> None:
        self.intersections += other.intersections
        self.differences += other.differences
        self.elements_scanned += other.elements_scanned
        self.seconds += other.seconds
        self.galloped += other.galloped
        self.batched += other.batched


def _gallop_intersect(small: np.ndarray, big: np.ndarray) -> np.ndarray:
    """Members of ``small`` present in ``big`` (both sorted unique)."""
    pos = np.searchsorted(big, small)
    pos[pos == len(big)] = 0  # safe: big[0] != small[i] there unless a hit
    return small[big[pos] == small]


def intersect(a: np.ndarray, b: np.ndarray, stats: SetOpStats) -> np.ndarray:
    """Sorted intersection ``a ∩ b`` (both inputs sorted and unique)."""
    start = time.perf_counter()
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        out = _EMPTY
    elif not ADAPTIVE:
        out = np.intersect1d(a, b, assume_unique=True)
        out.flags.writeable = False
    elif a[-1] < b[0] or b[-1] < a[0]:
        out = _EMPTY  # value ranges do not overlap
    elif len_a * GALLOP_RATIO <= len_b:
        out = _gallop_intersect(a, b)
        out.flags.writeable = False
        stats.galloped += 1
    elif len_b * GALLOP_RATIO <= len_a:
        out = _gallop_intersect(b, a)
        out.flags.writeable = False
        stats.galloped += 1
    else:
        out = np.intersect1d(a, b, assume_unique=True)
        out.flags.writeable = False
    stats.intersections += 1
    stats.elements_scanned += len_a + len_b
    stats.seconds += time.perf_counter() - start
    return out


def difference(a: np.ndarray, b: np.ndarray, stats: SetOpStats) -> np.ndarray:
    """Sorted difference ``a \\ b`` (both inputs sorted and unique)."""
    start = time.perf_counter()
    len_a, len_b = len(a), len(b)
    if len_a == 0:
        out = _EMPTY
    elif len_b == 0:
        out = _readonly(a)
    elif not ADAPTIVE:
        out = np.setdiff1d(a, b, assume_unique=True)
        out.flags.writeable = False
    elif a[-1] < b[0] or b[-1] < a[0]:
        out = _readonly(a)  # nothing to remove: ranges disjoint
    else:
        # Probe a into b: one vectorized binary search beats setdiff1d's
        # table machinery at every adjacency-list size we see.
        pos = np.searchsorted(b, a)
        pos[pos == len_b] = 0
        out = a[b[pos] != a]
        out.flags.writeable = False
        stats.galloped += 1
    stats.differences += 1
    stats.elements_scanned += len_a + len_b
    stats.seconds += time.perf_counter() - start
    return out


def bound_below(arr: np.ndarray, strict_lower: int) -> np.ndarray:
    """Entries of a sorted array strictly greater than ``strict_lower``."""
    return _readonly(arr[np.searchsorted(arr, strict_lower, side="right"):])


def bound_above(arr: np.ndarray, strict_upper: int) -> np.ndarray:
    """Entries of a sorted array strictly less than ``strict_upper``."""
    return _readonly(arr[: np.searchsorted(arr, strict_upper, side="left")])


def exclude(arr: np.ndarray, values: list[int]) -> np.ndarray:
    """Remove a handful of specific values (injectivity filtering)."""
    if not values or len(arr) == 0:
        return _readonly(arr)
    if not ADAPTIVE:
        mask = ~np.isin(arr, values, assume_unique=False)
        out = arr[mask] if not mask.all() else _readonly(arr)
        if out.flags.writeable:
            out.flags.writeable = False
        return out
    # ``values`` is a few stack vertices: binary-search each into the
    # sorted array and delete the hits — no isin lookup table.
    vals = np.array(sorted(set(values)), dtype=np.int64)
    pos = np.searchsorted(arr, vals)
    inside = pos < len(arr)
    pos = pos[inside]
    hits = pos[arr[pos] == vals[inside]]
    if hits.size == 0:
        return _readonly(arr)
    out = np.delete(arr, hits)
    out.flags.writeable = False
    return out


_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False


@dataclass
class BranchPredictor:
    """Deterministic 2-bit saturating branch predictor.

    Stands in for the hardware branch-miss counters of Figure 14c/d: each
    Filter-UDF edge-existence check is one branch; a miss is recorded when
    the 2-bit counter's prediction disagrees with the outcome.
    """

    counters: dict[int, int] = field(default_factory=dict)
    branches: int = 0
    misses: int = 0

    def record(self, site: int, taken: bool) -> None:
        state = self.counters.get(site, 2)  # weakly taken
        predicted_taken = state >= 2
        self.branches += 1
        if predicted_taken != taken:
            self.misses += 1
        if taken:
            state = min(state + 1, 3)
        else:
            state = max(state - 1, 0)
        self.counters[site] = state
