"""Instrumented sorted-set operations.

Matching engines spend most of their time intersecting and differencing
sorted adjacency arrays (Observation 2 / Figure 4); these wrappers are the
single place that work happens so the per-op counters and timings that
the paper's profiling figures report come for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np


@dataclass
class SetOpStats:
    """Counters for the set-operation portion of a matching run."""

    intersections: int = 0
    differences: int = 0
    elements_scanned: int = 0
    seconds: float = 0.0

    @property
    def total_ops(self) -> int:
        return self.intersections + self.differences

    def merge(self, other: "SetOpStats") -> None:
        self.intersections += other.intersections
        self.differences += other.differences
        self.elements_scanned += other.elements_scanned
        self.seconds += other.seconds


def intersect(a: np.ndarray, b: np.ndarray, stats: SetOpStats) -> np.ndarray:
    """Sorted intersection ``a ∩ b`` (both inputs sorted and unique)."""
    start = time.perf_counter()
    if len(a) == 0 or len(b) == 0:
        out = _EMPTY
    else:
        out = np.intersect1d(a, b, assume_unique=True)
    stats.intersections += 1
    stats.elements_scanned += len(a) + len(b)
    stats.seconds += time.perf_counter() - start
    return out


def difference(a: np.ndarray, b: np.ndarray, stats: SetOpStats) -> np.ndarray:
    """Sorted difference ``a \\ b`` (both inputs sorted and unique)."""
    start = time.perf_counter()
    if len(a) == 0:
        out = _EMPTY
    elif len(b) == 0:
        out = a
    else:
        out = np.setdiff1d(a, b, assume_unique=True)
    stats.differences += 1
    stats.elements_scanned += len(a) + len(b)
    stats.seconds += time.perf_counter() - start
    return out


def bound_below(arr: np.ndarray, strict_lower: int) -> np.ndarray:
    """Entries of a sorted array strictly greater than ``strict_lower``."""
    return arr[np.searchsorted(arr, strict_lower, side="right"):]


def bound_above(arr: np.ndarray, strict_upper: int) -> np.ndarray:
    """Entries of a sorted array strictly less than ``strict_upper``."""
    return arr[: np.searchsorted(arr, strict_upper, side="left")]


def exclude(arr: np.ndarray, values: list[int]) -> np.ndarray:
    """Remove a handful of specific values (injectivity filtering)."""
    if not values or len(arr) == 0:
        return arr
    mask = ~np.isin(arr, values, assume_unique=False)
    return arr[mask] if not mask.all() else arr


_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class BranchPredictor:
    """Deterministic 2-bit saturating branch predictor.

    Stands in for the hardware branch-miss counters of Figure 14c/d: each
    Filter-UDF edge-existence check is one branch; a miss is recorded when
    the 2-bit counter's prediction disagrees with the outcome.
    """

    counters: dict[int, int] = field(default_factory=dict)
    branches: int = 0
    misses: int = 0

    def record(self, site: int, taken: bool) -> None:
        state = self.counters.get(site, 2)  # weakly taken
        predicted_taken = state >= 2
        self.branches += 1
        if predicted_taken != taken:
            self.misses += 1
        if taken:
            state = min(state + 1, 3)
        else:
            state = max(state - 1, 0)
        self.counters[site] = state
