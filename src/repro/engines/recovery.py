"""Fault-tolerant shard mapping: retry, deadlines, checkpoint, fallback.

This module wraps the transports in :mod:`repro.engines.execution` with
the recovery policy the ISSUE calls for, without changing what a shard
*is*: a crashed shard is re-executed (exponential backoff + jitter, up
to :attr:`RetryPolicy.max_retries`), a shard that keeps killing pool
workers is recovered **in-process** before the run gives up with
:class:`repro.errors.WorkerCrashError`, an expired
:class:`Deadline` cancels outstanding shards through the pool's shared
event and reports the pattern as interrupted (the session turns that
into a :class:`repro.PartialRunResult`), and completed shards are
journaled to a :class:`repro.checkpoint.ShardCheckpoint` so a resumed
run skips them (visible as ``shard.checkpoint`` tracer spans).

Everything stays deterministic: results are merged in ascending shard
index exactly like the non-recovering path, a shard's value is the same
no matter how many retries it took to produce, and backoff jitter is
seeded per ``(shard, attempt)``. The differential matrix in
``tests/test_fault_tolerance.py`` pins retried/resumed/degraded runs to
the serial oracle byte-for-byte.
"""

from __future__ import annotations

import random
import time
import warnings
from concurrent.futures.process import BrokenProcessPool as BrokenProcessPoolError
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.aggregation import Aggregation
from repro.core.canonical import pattern_id
from repro.core.pattern import Pattern
from repro.engines.base import EngineStats, MiningEngine
from repro.errors import WorkerCrashError
from repro.graph.datagraph import DataGraph
from repro.observe.tracer import timed_span
from repro.testing.faults import FaultPlan, InjectedWorkerCrash

__all__ = [
    "Deadline",
    "PatternReport",
    "RetryPolicy",
    "RunControl",
    "checkpoint_key",
    "map_shards_recovering",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How crashed shards are re-executed before the run gives up.

    ``max_retries`` bounds re-executions per shard (0 disables retry);
    after the budget is spent a pool-backed run tries the shard once
    more **in-process** (a worker-poisoning input shouldn't kill the
    run if the parent can still compute it), then raises
    :class:`repro.errors.WorkerCrashError`. Backoff between attempts is
    ``backoff_seconds * backoff_factor**(attempt-1)`` stretched by up to
    ``jitter`` fraction of itself; the jitter RNG is seeded per
    ``(seed, shard, attempt)`` so runs are reproducible. ``sleep`` is
    injectable so tests retry instantly.
    """

    max_retries: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def delay(self, shard_index: int, attempt: int) -> float:
        """Backoff before re-running ``shard_index``'s ``attempt``-th retry."""
        base = self.backoff_seconds * self.backoff_factor ** max(0, attempt - 1)
        rng = random.Random(f"{self.seed}:{shard_index}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())

    @classmethod
    def resolve(cls, spec: "RetryPolicy | int | None") -> "RetryPolicy":
        """Normalize a policy spec: ``None`` → defaults, int → max_retries."""
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, int) and not isinstance(spec, bool):
            return cls(max_retries=spec)
        raise TypeError(
            f"retry must be a RetryPolicy or an int (max_retries), got {spec!r}"
        )


class Deadline:
    """A wall-clock budget for a run, started at construction.

    The clock is injectable (tests drive a fake monotonic clock), and
    ``remaining()`` feeds directly into ``concurrent.futures.wait``
    timeouts so a pool-backed run stops *waiting* the moment the budget
    expires even if a worker is wedged.
    """

    __slots__ = ("seconds", "clock", "_expires_at", "expiry_reason")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self.seconds = float(seconds)
        self.clock = clock
        self._expires_at = clock() + self.seconds
        #: Why the deadline was force-expired (``None`` for natural expiry).
        self.expiry_reason: str | None = None

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self._expires_at - self.clock()

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining() <= 0.0

    def expire(self, reason: str | None = None) -> None:
        """Force immediate expiry (idempotent).

        The cancellation lever for everything already wired to this
        deadline: the next ``expired()`` / ``remaining()`` check — in the
        shard loop, the pool ``futures.wait`` timeout, a streaming
        callback — observes the budget as spent and unwinds through the
        established cancel path (``PartialRunResult`` / typed errors).
        ``reason`` is retained on :attr:`expiry_reason` for reporting
        (e.g. a service sentinel's ``"rss"`` or ``"wall-clock"`` trip).
        """
        if self.expiry_reason is None and reason is not None:
            self.expiry_reason = reason
        self._expires_at = min(self._expires_at, self.clock())

    @classmethod
    def resolve(
        cls,
        spec: "Deadline | float | int | None",
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline | None":
        """Normalize a deadline spec: ``None`` passes through, numbers start now."""
        if spec is None or isinstance(spec, cls):
            return spec
        return cls(float(spec), clock)


@dataclass
class PatternReport:
    """Per-pattern recovery bookkeeping (one per ``map_shards_recovering``)."""

    label: str = ""
    total_shards: int = 0
    completed_shards: int = 0
    checkpointed_shards: int = 0
    retries: int = 0
    fallbacks: int = 0
    interrupted: bool = False

    @property
    def complete(self) -> bool:
        """Every shard of this pattern produced a (possibly cached) result."""
        return not self.interrupted and self.completed_shards >= self.total_shards


class RunControl:
    """The recovery configuration + bookkeeping threaded through a run.

    One instance lives for one ``session.run`` / ``repro.run`` call and
    is consulted by :func:`map_shards_recovering` for every pattern.
    ``reports`` accumulates one :class:`PatternReport` per executed
    pattern; the coverage fraction of a deadline-degraded run is
    ``completed_shards / total_shards`` over those reports plus one
    pattern's worth of shards for each item the run never started.
    """

    def __init__(
        self,
        *,
        retry: RetryPolicy | int | None = None,
        deadline: "Deadline | float | None" = None,
        checkpoint: Any | None = None,
        faults: FaultPlan | None = None,
        progress: Any | None = None,
    ) -> None:
        self.retry = RetryPolicy.resolve(retry)
        self.deadline = Deadline.resolve(deadline)
        self.checkpoint = checkpoint
        self.faults = faults if faults else None
        self.progress = progress
        self.reports: list[PatternReport] = []

    @property
    def interrupted(self) -> bool:
        """Whether any pattern was cut short by the deadline."""
        return any(r.interrupted for r in self.reports)

    def expired(self) -> bool:
        """Whether the run's deadline (if any) has passed."""
        return self.deadline is not None and self.deadline.expired()

    @property
    def completed_shards(self) -> int:
        return sum(r.completed_shards for r in self.reports)

    @property
    def total_shards(self) -> int:
        return sum(r.total_shards for r in self.reports)

    def charged_total(self, unstarted_items: int = 0) -> int:
        """Shard denominator for coverage: executed patterns' shards plus
        one pattern's worth (the last report's count — shard splits are
        identical across a run's patterns) for each item the deadline
        preempted entirely."""
        per_pattern = self.reports[-1].total_shards if self.reports else 1
        return self.total_shards + per_pattern * max(0, unstarted_items)

    def coverage(self, unstarted_items: int = 0) -> float:
        """Fraction of the run's shards that completed."""
        total = self.charged_total(unstarted_items)
        if total <= 0:
            return 1.0
        return self.completed_shards / total

    def event(self, kind: str, detail: str) -> None:
        """Forward a recovery event to the progress reporter, if any."""
        if self.progress is not None:
            emit = getattr(self.progress, "event", None)
            if emit is not None:
                emit(kind, detail)


def checkpoint_key(pattern: Pattern, aggregation: Aggregation) -> str:
    """Stable journal key for one (pattern, aggregation) pair.

    Built on :func:`repro.core.canonical.pattern_id` (isomorphism-class
    stable, anti-edge aware) so a resumed run matches records no matter
    how the pattern object was constructed.
    """
    agg = getattr(aggregation, "name", type(aggregation).__name__)
    return f"{pattern_id(pattern):016x}/{agg}"


def _run_shard_inprocess(
    engine: MiningEngine,
    graph: DataGraph,
    pattern: Pattern,
    aggregation: Aggregation,
    shard: tuple[int, int],
) -> tuple[Any, EngineStats]:
    """One shard through the live engine, stats isolated like a worker's."""
    saved = engine.stats
    engine.stats = EngineStats()
    try:
        value, _terminal = engine.aggregate_partial(
            graph, pattern, aggregation, root_window=shard, cancel=None
        )
        return value, engine.stats
    finally:
        engine.stats = saved


def map_shards_recovering(
    executor,
    engine: MiningEngine,
    graph: DataGraph,
    pattern: Pattern,
    aggregation: Aggregation,
    shards,
    *,
    tracer=None,
    control: RunControl,
    collect_spans: bool = False,
) -> tuple[dict[int, tuple], PatternReport]:
    """Run one pattern's shards under the recovery policy.

    Returns ``(results, report)`` where ``results`` maps shard index →
    shard result for every shard that completed (checkpoint hits
    included) and ``report`` records retries/fallbacks/interruption.
    Completed shards are journaled to the control's checkpoint even
    when the pattern is interrupted or a poisoned shard ultimately
    raises — that is what makes resume work.
    """
    from repro.engines.execution import ProcessShardExecutor

    report = PatternReport(total_shards=len(shards))
    control.reports.append(report)
    key = checkpoint_key(pattern, aggregation)
    results: dict[int, tuple] = {}
    pending: list[int] = []
    for index, shard in enumerate(shards):
        hit = (
            control.checkpoint.get(key, shard)
            if control.checkpoint is not None
            else None
        )
        if hit is not None:
            with timed_span(
                tracer, "shard.checkpoint", shard=index, window=list(shard)
            ):
                pass
            results[index] = hit
            report.completed_shards += 1
            report.checkpointed_shards += 1
        else:
            pending.append(index)
    try:
        if pending:
            use_pool = (
                isinstance(executor, ProcessShardExecutor)
                and executor._fallback is None
            )
            recover = _recover_pool if use_pool else _recover_serial
            recover(
                executor,
                engine,
                graph,
                pattern,
                aggregation,
                shards,
                pending,
                results,
                report,
                tracer=tracer,
                control=control,
                collect_spans=collect_spans,
            )
    finally:
        # Journal every completed shard — including on interruption or a
        # terminal WorkerCrashError — so the next run resumes from here.
        if control.checkpoint is not None:
            for index in sorted(results):
                part = results[index]
                control.checkpoint.put(key, shards[index], index, part[0], part[1])
    return results, report


def _recover_serial(
    executor,
    engine,
    graph,
    pattern,
    aggregation,
    shards,
    pending,
    results,
    report,
    *,
    tracer,
    control,
    collect_spans,
):
    """In-process transports: shard-at-a-time with a per-shard retry loop."""
    retry = control.retry
    deadline = control.deadline
    faults = control.faults
    stop_check = (lambda: deadline.expired()) if deadline is not None else None
    for index in pending:
        if deadline is not None and deadline.expired():
            report.interrupted = True
            return
        shard = shards[index]
        attempt = 0
        while True:
            try:
                if faults is not None and faults.apply_before_shard(
                    index, attempt, in_worker=False, stop_check=stop_check
                ):
                    # A hang released by the deadline: no result for this
                    # shard, and no point starting the ones after it.
                    report.interrupted = True
                    return
                part = list(
                    executor.map_shards(
                        engine, graph, pattern, aggregation, [shard], collect_spans
                    )[0]
                )
                if faults is not None:
                    part[0] = faults.transform_value(index, attempt, part[0])
                results[index] = tuple(part)
                report.completed_shards += 1
                break
            except (InjectedWorkerCrash, BrokenProcessPoolError) as exc:
                attempt += 1
                report.retries += 1
                if attempt > retry.max_retries:
                    raise WorkerCrashError(
                        f"shard {index} {tuple(shard)} of pattern "
                        f"{pattern_id(pattern):016x} still failing after "
                        f"{attempt} attempts",
                        shard=tuple(shard),
                        shard_index=index,
                        attempts=attempt,
                        cause=exc,
                    ) from exc
                seconds = retry.delay(index, attempt)
                with timed_span(
                    tracer,
                    "shard.retry",
                    shard=index,
                    attempt=attempt,
                    error=type(exc).__name__,
                    backoff_seconds=seconds,
                ):
                    retry.sleep(seconds)
                control.event(
                    "retry",
                    f"shard {index} attempt {attempt} after {type(exc).__name__}",
                )


def _recover_pool(
    executor,
    engine,
    graph,
    pattern,
    aggregation,
    shards,
    pending,
    results,
    report,
    *,
    tracer,
    control,
    collect_spans,
):
    """Pool transport: submit, harvest survivors of a crash, rebuild, retry.

    ``BrokenProcessPool`` semantics drive the shape: one worker dying
    abruptly breaks the *whole* pool — futures that already finished
    keep their results, everything else raises. So each round submits
    all outstanding shards, harvests completed ones, charges an attempt
    to the casualties (including innocent shards collateral to the same
    collapse — their retry budget is sized for that), rebuilds the pool
    and goes again. Shards that exhaust the budget are recovered
    in-process before :class:`WorkerCrashError` ends the run.
    """
    from concurrent.futures import wait as wait_futures

    from repro.engines.execution import (
        SerialShardExecutor,
        _run_shard_task,
    )

    retry = control.retry
    deadline = control.deadline
    faults = control.faults
    attempts = {i: 0 for i in pending}
    remaining = sorted(pending)
    first_round = True
    while remaining:
        if deadline is not None and deadline.expired():
            if executor._event is not None:
                executor._event.set()  # release polite hangs / polling kernels
            report.interrupted = True
            return
        # Shards past the pool retry budget leave the pool entirely.
        for index in [i for i in remaining if attempts[i] > retry.max_retries]:
            remaining.remove(index)
            if not _fallback_shard(
                engine,
                graph,
                pattern,
                aggregation,
                shards,
                index,
                attempts,
                results,
                report,
                tracer=tracer,
                control=control,
            ):
                return
        if not remaining:
            return
        try:
            executor._ensure_pool(engine, graph)
            if first_round:
                executor._event.clear()
                first_round = False
            futures = {
                executor._pool.submit(
                    _run_shard_task,
                    pattern,
                    aggregation,
                    shards[i],
                    collect_spans,
                    i,
                    attempts[i],
                    faults,
                ): i
                for i in remaining
            }
        except (OSError, BrokenProcessPoolError, ImportError) as exc:
            # The pool cannot be (re)built at all: degrade this and every
            # later pattern to in-process sharded execution.
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                "recovering in-process with sharded execution",
                RuntimeWarning,
                stacklevel=3,
            )
            executor.close()
            executor._fallback = SerialShardExecutor(executor.workers)
            _recover_serial(
                executor._fallback,
                engine,
                graph,
                pattern,
                aggregation,
                shards,
                remaining,
                results,
                report,
                tracer=tracer,
                control=control,
                collect_spans=collect_spans,
            )
            return
        timeout = max(0.0, deadline.remaining()) if deadline is not None else None
        done, not_done = wait_futures(set(futures), timeout=timeout)
        crashed: list[int] = []
        for future in done:
            index = futures[future]
            exc = future.exception()
            if exc is None:
                results[index] = tuple(future.result())
                report.completed_shards += 1
                remaining.remove(index)
            elif isinstance(exc, BrokenProcessPoolError):
                crashed.append(index)
            else:
                raise exc  # a genuine kernel error: not recoverable noise
        if not_done:
            # Deadline expired mid-flight. Completed futures were already
            # harvested above; cancel the queue, release wedged workers.
            for future in not_done:
                future.cancel()
            if executor._event is not None:
                executor._event.set()
            report.interrupted = True
            return
        if remaining:
            # Everything still outstanding was a casualty of the same pool
            # collapse; one backoff for the round, one attempt charged each.
            executor.close()  # tear the broken pool down; next round rebuilds
            seconds = 0.0
            for index in remaining:
                attempts[index] += 1
                report.retries += 1
                seconds = max(seconds, retry.delay(index, attempts[index]))
                control.event(
                    "retry",
                    f"shard {index} attempt {attempts[index]} after worker crash",
                )
            with timed_span(
                tracer,
                "shard.retry",
                shards=list(remaining),
                backoff_seconds=seconds,
            ):
                retry.sleep(seconds)


def _fallback_shard(
    engine,
    graph,
    pattern,
    aggregation,
    shards,
    index,
    attempts,
    results,
    report,
    *,
    tracer,
    control,
) -> bool:
    """Last resort for a worker-poisoning shard: run it in the parent.

    Returns ``False`` when an injected hang was released by the
    deadline (the caller stops the pattern); raises
    :class:`WorkerCrashError` when even the in-process attempt crashes.
    """
    shard = shards[index]
    faults = control.faults
    deadline = control.deadline
    stop_check = (lambda: deadline.expired()) if deadline is not None else None
    with timed_span(tracer, "shard.fallback", shard=index, window=list(shard)):
        try:
            if faults is not None and faults.apply_before_shard(
                index, attempts[index], in_worker=False, stop_check=stop_check
            ):
                report.interrupted = True
                return False
            value, stats = _run_shard_inprocess(
                engine, graph, pattern, aggregation, shard
            )
            if faults is not None:
                value = faults.transform_value(index, attempts[index], value)
        except InjectedWorkerCrash as exc:
            raise WorkerCrashError(
                f"shard {index} {tuple(shard)} crashed in {attempts[index]} "
                "worker attempts and again in the in-process fallback",
                shard=tuple(shard),
                shard_index=index,
                attempts=attempts[index] + 1,
                cause=exc,
            ) from exc
    results[index] = (value, stats)
    report.completed_shards += 1
    report.fallbacks += 1
    control.event(
        "fallback",
        f"shard {index} recovered in-process after "
        f"{attempts[index]} pool attempts",
    )
    return True
