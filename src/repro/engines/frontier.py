"""Batched frontier matching: whole-batch numpy kernels over CSR slices.

The per-root kernel (:func:`repro.engines.base.run_plan`) expands one
root vertex at a time through a Python DFS loop — BENCH_0001 shows that
loop is ~99% of wall time on the standing suite. This module replaces
it, opt-in, with a *frontier* formulation: thousands of root candidates
expand level-by-level at once, every constraint applied as one
vectorized numpy operation over the whole batch.

Data layout (see docs/architecture.md, "Batched frontier matching"):

* the **frontier matrix** ``emb`` — an ``int64`` array of shape
  ``(R, k)``: R partial embeddings, column ``i`` holding the data
  vertex matched at plan level ``i``;
* **per-row CSR slicing** — expanding level ``k`` gathers each row's
  candidate neighbors directly out of the graph's flat ``indices``
  array (``np.repeat`` of row starts + a cumulative-sum offset trick),
  producing a ``rows``/``cand`` pair: candidate values and the frontier
  row each came from;
* **mask propagation** — symmetry-breaking bounds are folded directly
  into the gather (a packed-key ``searchsorted`` computes each row's
  bound cut-points before any candidate is materialized, the batch
  analogue of the per-root ``bound_above``/``bound_below`` slicing);
  the remaining constraints (label tests and injectivity as
  comparisons against the partial-embedding columns, then backward
  intersections and anti-edge differences as packed-key membership
  probes) each filter the surviving ``(row, cand)`` pairs, cheapest
  first, compacting between passes so every probe runs over an
  already-shrunk frontier.

The expansion preserves the per-root DFS enumeration order exactly:
CSR rows are sorted ascending, ``np.repeat`` keeps frontier rows in
order, and masking is order-stable — so the final embeddings appear in
the same lexicographic order the recursive kernel emits, and batched
results are **byte-identical** to per-root results (the
``tests/test_frontier.py`` differential matrix pins this).

Set-operation accounting: each vectorized membership pass counts as one
intersection/difference in :class:`~repro.engines.setops.SetOpStats`
plus one tick of the ``batched`` counter, with ``elements_scanned``
charged per candidate — so Figure 4-style breakdowns stay meaningful
for batched runs and ``kernel_span()`` reports the batched-op deltas.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.engines.base import (
    EngineStats,
    RootWindow,
    StopExploration,
    clip_to_window,
)
from repro.engines.plan import ExplorationPlan, PlanLevel
from repro.engines.setops import SetOpStats
from repro.graph.datagraph import DataGraph

__all__ = [
    "DEFAULT_BATCH_ROOTS",
    "gather_frontier",
    "member_mask",
    "run_plan_batched",
]

#: Root-chunk size when ``batch_roots`` is requested without a number.
DEFAULT_BATCH_ROOTS = 2048

#: Frontier-row budget: a frontier wider than this is split into
#: segments (processed in order, so results are unaffected) to bound
#: the memory of one expansion. Overridable for tests.
MAX_FRONTIER_ROWS = 1 << 18

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False


def _ragged_take(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-row slices ``values[starts[i] : starts[i]+counts[i]]``.

    Returns ``(rows, cand)``: the row index each gathered element belongs
    to, and the element itself, rows in order and each row's slice kept
    contiguous — the layout every frontier kernel builds on.
    """
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    # Within-row offsets: a flat arange minus each row's exclusive
    # cumulative start, then added to the repeated slice starts.
    exclusive = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(exclusive, counts)
    cand = values[np.repeat(starts, counts) + offsets].astype(np.int64, copy=False)
    return rows, cand


def gather_frontier(
    graph: DataGraph,
    owners: np.ndarray,
    stats: SetOpStats,
    *,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated CSR neighbor slices for a column of frontier vertices.

    ``owners[i]`` is the data vertex whose adjacency row seeds row ``i``'s
    candidates. Returns ``(rows, cand)``: for every gathered candidate,
    the frontier row it belongs to and its vertex id, with candidates of
    one row contiguous and ascending (CSR rows are sorted) — the order
    the per-root DFS kernel would visit them in.

    ``lower`` / ``upper`` are optional per-row strict bounds: row ``i``
    only gathers neighbors ``> lower[i]`` / ``< upper[i]``. Because the
    packed key array shares the CSR layout (row ``u``'s keys occupy the
    same flat positions as its ``indices`` slice), one ``searchsorted``
    of ``owner * n + bound`` yields every row's cut-point at once — the
    bounds are applied *before* any candidate is materialized, which is
    what keeps star-shaped patterns from gathering the full hub row for
    every frontier entry.
    """
    start = time.perf_counter()
    indptr = graph.indptr
    starts = indptr[owners]
    ends = indptr[owners + 1]
    if (lower is not None or upper is not None) and len(owners):
        keys = graph.adjacency_keys
        scale = np.int64(graph.num_vertices)
        if lower is not None:
            starts = np.searchsorted(keys, owners * scale + lower, side="right")
        if upper is not None:
            ends = np.searchsorted(keys, owners * scale + upper, side="left")
    counts = np.maximum(ends - starts, 0)
    rows, cand = _ragged_take(graph.indices, starts, counts)
    stats.batched += 1
    stats.elements_scanned += len(cand)
    stats.seconds += time.perf_counter() - start
    return rows, cand


def member_mask(
    graph: DataGraph,
    owners: np.ndarray,
    cand: np.ndarray,
    stats: SetOpStats,
    *,
    difference: bool = False,
) -> np.ndarray:
    """Vectorized membership: is ``cand[i]`` adjacent to ``owners[i]``?

    On graphs small enough for a :attr:`DataGraph.dense_adjacency`
    matrix this is one 2-D fancy index. Otherwise: one
    ``np.searchsorted`` of the packed ``owner * n + cand`` probe keys
    into the graph's sorted directed-edge key array — the batch
    analogue of the per-row ``searchsorted`` probe the galloping set
    kernels use, with the per-row slicing folded into the key packing
    (a probe can only land inside its own owner's CSR row, because the
    keys of row ``u`` occupy ``[u*n, (u+1)*n)``). ``difference=True``
    only flips the stats attribution (a batched anti-edge difference);
    the returned mask is always *membership* — callers negate it
    themselves.
    """
    start = time.perf_counter()
    n = len(cand)
    dense = graph.dense_adjacency
    if n == 0:
        found = np.zeros(0, dtype=bool)
    elif dense is not None:
        found = dense[owners, cand]
    elif len(graph.adjacency_keys) == 0:
        found = np.zeros(n, dtype=bool)
    else:
        keys = graph.adjacency_keys
        probes = owners * np.int64(graph.num_vertices) + cand
        pos = np.searchsorted(keys, probes)
        np.minimum(pos, len(keys) - 1, out=pos)
        found = keys[pos] == probes
    if difference:
        stats.differences += 1
    else:
        stats.intersections += 1
    stats.batched += 1
    stats.elements_scanned += n
    stats.seconds += time.perf_counter() - start
    return found


def _level_bounds(
    level: PlanLevel, emb: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Per-row strict (lower, upper) symmetry-breaking bounds, or None."""
    upper = lower = None
    if level.upper_bounds:
        upper = emb[:, level.upper_bounds[0]]
        for j in level.upper_bounds[1:]:
            upper = np.minimum(upper, emb[:, j])
    if level.lower_bounds:
        lower = emb[:, level.lower_bounds[0]]
        for j in level.lower_bounds[1:]:
            lower = np.maximum(lower, emb[:, j])
    return lower, upper


def count_only_level(graph: DataGraph, level: PlanLevel) -> bool:
    """True when a level's candidate *count* equals its gather width.

    Holds when nothing filters candidates after the bound-folded gather:
    at most one backward neighbor (the gather source), no anti-edge
    masks, no label mask, and no injectivity masks beyond those the
    strict symmetry-breaking bounds already subsume (``cand > emb[j]``
    or ``cand < emb[j]`` implies ``cand != emb[j]``). For such a level
    the final count is just the sum of the per-row cut-point widths — no
    candidate needs to be materialized at all (the batched analogue of
    the per-root kernel's ``len(cand)`` counting fast path, one level
    earlier).
    """
    if level.backward_anti:
        return False
    bounded = set(level.lower_bounds) | set(level.upper_bounds)
    if any(j not in bounded for j in level.non_adjacent):
        return False
    if len(level.backward_neighbors) > 1:
        return False
    if level.label is not None and graph.is_labeled and level.backward_neighbors:
        return False
    return True


def level_count(
    graph: DataGraph,
    level: PlanLevel,
    emb: np.ndarray,
    stats: SetOpStats,
) -> int:
    """Count a :func:`count_only_level`'s candidates without gathering.

    Computes the same per-row cut-points the gather would use and sums
    their widths — the whole last level collapses to two
    ``searchsorted`` calls and one reduction.
    """
    start = time.perf_counter()
    lower, upper = _level_bounds(level, emb)
    if level.backward_neighbors:
        owners = emb[:, level.backward_neighbors[0]]
        indptr = graph.indptr
        starts = indptr[owners]
        ends = indptr[owners + 1]
        if (lower is not None or upper is not None) and len(owners):
            keys = graph.adjacency_keys
            scale = np.int64(graph.num_vertices)
            if lower is not None:
                starts = np.searchsorted(keys, owners * scale + lower, side="right")
            if upper is not None:
                ends = np.searchsorted(keys, owners * scale + upper, side="left")
    else:
        if level.label is not None and graph.is_labeled:
            base = graph.vertices_by_label.get(level.label, _EMPTY)
        else:
            base = graph.all_vertices
        n_rows = emb.shape[0]
        if lower is not None:
            starts = np.searchsorted(base, lower, side="right")
        else:
            starts = np.zeros(n_rows, dtype=np.int64)
        if upper is not None:
            ends = np.searchsorted(base, upper, side="left")
        else:
            ends = np.full(n_rows, len(base), dtype=np.int64)
    total = int(np.maximum(ends - starts, 0).sum())
    stats.batched += 1
    stats.seconds += time.perf_counter() - start
    return total


def level_batch(
    graph: DataGraph,
    level: PlanLevel,
    emb: np.ndarray,
    stats: SetOpStats,
) -> tuple[np.ndarray, np.ndarray]:
    """One level's batched candidate generation: compacted ``(rows, cand)``.

    Applies the same constraint set as
    :func:`repro.engines.base.level_candidates`, but over a whole
    frontier and in cost order rather than plan order (every constraint
    is a filter, so application order cannot change the surviving set,
    and compaction is order-stable, so it cannot change the sequence
    either): symmetry-breaking bounds fold into the gather itself, cheap
    columnwise comparisons (labels, injectivity) go next, and the
    packed-key membership probes — the expensive passes — run last over
    an already-compacted frontier, shrinking it again after each probe.
    """
    lower, upper = _level_bounds(level, emb)

    if level.backward_neighbors:
        j0 = level.backward_neighbors[0]
        rows, cand = gather_frontier(
            graph, emb[:, j0], stats, lower=lower, upper=upper
        )
    else:
        # No backward edge to gather from: every row fans out over the
        # label set / vertex range, per-row bound cut-points found by one
        # searchsorted into the shared sorted base.
        if level.label is not None and graph.is_labeled:
            base = graph.vertices_by_label.get(level.label, _EMPTY)
        else:
            base = graph.all_vertices
        n_rows = emb.shape[0]
        if lower is not None:
            starts = np.searchsorted(base, lower, side="right")
        else:
            starts = np.zeros(n_rows, dtype=np.int64)
        if upper is not None:
            ends = np.searchsorted(base, upper, side="left")
        else:
            ends = np.full(n_rows, len(base), dtype=np.int64)
        rows, cand = _ragged_take(base, starts, np.maximum(ends - starts, 0))
        stats.batched += 1
        stats.elements_scanned += len(cand)

    mask = None
    if level.label is not None and graph.is_labeled and level.backward_neighbors:
        labels = graph.labels
        assert labels is not None
        mask = labels[cand] == level.label
    for j in level.non_adjacent:
        cheap = cand != emb[rows, j]
        mask = cheap if mask is None else (mask & cheap)
    if mask is not None:
        rows = rows[mask]
        cand = cand[mask]

    for j in level.backward_neighbors[1:]:
        keep = member_mask(graph, emb[rows, j], cand, stats)
        rows = rows[keep]
        cand = cand[keep]
    for j in level.backward_anti:
        keep = ~member_mask(graph, emb[rows, j], cand, stats, difference=True)
        rows = rows[keep]
        cand = cand[keep]
    return rows, cand


def _segment_limit(graph: DataGraph, level: PlanLevel) -> int:
    """Frontier rows one expansion of ``level`` may take at once."""
    if level.backward_neighbors:
        return MAX_FRONTIER_ROWS
    # Tiled levels fan out |base| candidates per row: keep the product
    # under the row budget so disconnected plans cannot blow memory.
    if level.label is not None and graph.is_labeled:
        base_len = len(graph.vertices_by_label.get(level.label, _EMPTY))
    else:
        base_len = graph.num_vertices
    return max(1, MAX_FRONTIER_ROWS // max(1, base_len))


def _pattern_order(plan: ExplorationPlan) -> list[int]:
    """Column permutation turning level order into pattern-vertex order."""
    by_vertex = {lv.pattern_vertex: i for i, lv in enumerate(plan.levels)}
    return [by_vertex[u] for u in range(plan.pattern.n)]


def _descend_batched(
    graph: DataGraph,
    plan: ExplorationPlan,
    emb: np.ndarray,
    level_index: int,
    stats: EngineStats,
    on_match,
    perm: list[int],
) -> int:
    """Expand a frontier through levels ``level_index..depth-1``."""
    depth = plan.depth
    if emb.shape[0] == 0:
        return 0
    level = plan.levels[level_index]
    if (
        level_index == depth - 1
        and on_match is None
        and count_only_level(graph, level)
    ):
        # Counting fast path: no candidate materialization, so no
        # segment split is needed either.
        return level_count(graph, level, emb, stats.setops)
    limit = _segment_limit(graph, level)
    if emb.shape[0] > limit:
        total = 0
        for s in range(0, emb.shape[0], limit):
            total += _descend_batched(
                graph, plan, emb[s : s + limit], level_index, stats, on_match, perm
            )
        return total
    rows, cand = level_batch(graph, level, emb, stats.setops)
    if level_index == depth - 1:
        if on_match is None:
            return len(cand)
        full = np.empty((len(rows), depth), dtype=np.int64)
        full[:, : depth - 1] = emb[rows]
        full[:, depth - 1] = cand
        emitted = 0
        for match_row in full[:, perm].tolist():
            stats.materialized += 1
            on_match(tuple(match_row))
            emitted += 1
        return emitted
    next_emb = np.empty((len(rows), level_index + 1), dtype=np.int64)
    next_emb[:, :level_index] = emb[rows]
    next_emb[:, level_index] = cand
    return _descend_batched(
        graph, plan, next_emb, level_index + 1, stats, on_match, perm
    )


def _root_candidates(
    graph: DataGraph, plan: ExplorationPlan, root_window: RootWindow | None
) -> np.ndarray:
    """Level-0 candidates (no earlier levels exist, so only label/window)."""
    level = plan.levels[0]
    if level.label is not None and graph.is_labeled:
        roots = graph.vertices_by_label.get(level.label, _EMPTY)
    else:
        roots = graph.all_vertices
    if root_window is not None:
        roots = clip_to_window(roots, root_window)
    return roots


def run_plan_batched(
    graph: DataGraph,
    plan: ExplorationPlan,
    stats: EngineStats,
    on_match: Callable | None = None,
    root_window: RootWindow | None = None,
    should_stop: Callable[[], bool] | None = None,
    batch_roots: int = DEFAULT_BATCH_ROOTS,
    on_batch: Callable[[float], None] | None = None,
) -> int:
    """Batched drop-in for :func:`repro.engines.base.run_plan`.

    Roots are processed in chunks of ``batch_roots``; within a chunk the
    whole frontier expands level-by-level through vectorized numpy
    kernels. Results — counts, and the order and content of every
    ``on_match`` stream — are byte-identical to the per-root kernel.

    ``should_stop`` is polled once per root chunk (the per-root kernel
    polls per root; both grains only change how much *extra* work a
    cancelled shard performs, never the results of completed shards).
    ``on_batch`` receives the completed root fraction after each chunk —
    the progress reporter's per-batch ETA recalibration hook.
    """
    if batch_roots < 1:
        raise ValueError(f"batch_roots must be >= 1, got {batch_roots!r}")
    depth = plan.depth
    perm = _pattern_order(plan)
    start = time.perf_counter()
    stopped_early = False
    count = 0
    try:
        roots = _root_candidates(graph, plan, root_window)
        n_roots = len(roots)
        for s in range(0, n_roots, batch_roots):
            if should_stop is not None and should_stop():
                raise StopExploration()
            chunk = roots[s : s + batch_roots].astype(np.int64, copy=False)
            if depth == 1:
                if on_match is None:
                    count += len(chunk)
                else:
                    for v in chunk.tolist():
                        stats.materialized += 1
                        on_match(plan.match_to_pattern_order([v]))
                        count += 1
            else:
                count += _descend_batched(
                    graph, plan, chunk[:, None], 1, stats, on_match, perm
                )
            if on_batch is not None:
                on_batch(min(1.0, (s + len(chunk)) / max(1, n_roots)))
    except StopExploration:
        stopped_early = True
        count = 0  # partial counts were delivered through the callback
    stats.total_seconds += time.perf_counter() - start
    if not stopped_early:
        stats.matches += count
    stats.patterns_matched += 1
    return count
