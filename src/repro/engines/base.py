"""Shared engine machinery: stats, the matching kernel, the engine API.

All four system substrates (Peregrine-, AutoZero-, GraphPi- and
BigJoin-style) interpret :class:`~repro.engines.plan.ExplorationPlan`
programs through kernels in this module, differing in how plans are
constructed, ordered, merged and materialized. The shared
:class:`EngineStats` exposes exactly the quantities the paper profiles:
set-operation counts/time (Figure 4b/c, 12c/d, 13b), UDF calls/time
(Figure 4a/d/e, 15b), materialization volume, and Filter-UDF branches and
branch misses (Figure 14c/d).
"""

from __future__ import annotations

import os
import time
from abc import ABC
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.aggregation import Aggregation, CountAggregation, Match
from repro.core.canonical import pattern_id
from repro.core.pattern import Pattern
from repro.engines.plan import ExplorationPlan
from repro.engines.setops import (
    BranchPredictor,
    SetOpStats,
    bound_above,
    bound_below,
    difference,
    exclude,
    intersect,
)
from repro.graph.datagraph import DataGraph

MatchCallback = Callable[[Pattern, Match], None]


class StopExploration(Exception):
    """Raised by a match callback to end exploration early.

    Peregrine supports early termination for applications that only need
    a prefix of the match stream (existence probes, top-k); the kernels
    treat this exception as a clean stop, with all counters intact.
    """


#: Debug mode for stats merging: when true, merging shard/run stats
#: asserts that section timers never exceed wall time instead of letting
#: ``other_seconds`` silently clamp the negative residual to zero (which
#: would hide double-counted section timers). Enable with the
#: ``REPRO_STRICT_STATS`` environment variable or by setting the module
#: attribute directly in tests.
STRICT_STATS = os.environ.get("REPRO_STRICT_STATS", "0") not in ("", "0")

#: perf_counter noise allowance when comparing summed section timers
#: against the enclosing wall-time window.
_TIMER_SLACK = 1e-6


@dataclass
class EngineStats:
    """Instrumentation for one or more matching runs."""

    setops: SetOpStats = field(default_factory=SetOpStats)
    matches: int = 0
    materialized: int = 0
    udf_calls: int = 0
    udf_seconds: float = 0.0
    filter_calls: int = 0
    filter_seconds: float = 0.0
    predictor: BranchPredictor = field(default_factory=BranchPredictor)
    total_seconds: float = 0.0
    patterns_matched: int = 0

    @property
    def branches(self) -> int:
        return self.predictor.branches

    @property
    def branch_misses(self) -> int:
        return self.predictor.misses

    @property
    def section_seconds(self) -> float:
        """Sum of the instrumented sections (setops + UDF + filter)."""
        return self.setops.seconds + self.udf_seconds + self.filter_seconds

    @property
    def other_seconds(self) -> float:
        """Residual engine time (exploration machinery / "system time")."""
        return max(0.0, self.total_seconds - self.section_seconds)

    def validate(self) -> None:
        """Assert internal consistency: sections fit inside wall time.

        Section timers are measured as disjoint sub-intervals of the
        kernel's wall-time window, so their sum exceeding the total (by
        more than timer noise) means a section was double-counted — the
        exact bug the ``other_seconds`` clamp would otherwise hide.
        """
        residual = self.total_seconds - self.section_seconds
        if residual < -_TIMER_SLACK:
            raise AssertionError(
                f"section timers exceed total wall time: "
                f"sections={self.section_seconds:.6f}s "
                f"total={self.total_seconds:.6f}s"
            )

    def merge(self, other: "EngineStats", strict: bool | None = None) -> None:
        """Fold another run's counters in (used for shard merges).

        ``strict`` (default: the module's ``STRICT_STATS`` debug flag)
        validates both inputs and the merged result.
        """
        strict = STRICT_STATS if strict is None else strict
        if strict:
            other.validate()
        self.setops.merge(other.setops)
        self.matches += other.matches
        self.materialized += other.materialized
        self.udf_calls += other.udf_calls
        self.udf_seconds += other.udf_seconds
        self.filter_calls += other.filter_calls
        self.filter_seconds += other.filter_seconds
        self.predictor.branches += other.predictor.branches
        self.predictor.misses += other.predictor.misses
        self.total_seconds += other.total_seconds
        self.patterns_matched += other.patterns_matched
        if strict:
            self.validate()

    def breakdown(self) -> dict[str, float]:
        """Figure 4-style time split."""
        return {
            "setops": self.setops.seconds,
            "udf": self.udf_seconds,
            "filter": self.filter_seconds,
            "system": self.other_seconds,
            "total": self.total_seconds,
        }


def level_candidates(
    graph: DataGraph,
    level,
    stack: list[int],
    stats: EngineStats,
) -> np.ndarray:
    """Candidate data vertices for one plan level given the partial match.

    ``level`` is a :class:`~repro.engines.plan.PlanLevel`; all positional
    references index into ``stack`` (the data vertices matched at earlier
    levels).
    """
    if level.backward_neighbors:
        arrays = [graph.neighbors(stack[j]) for j in level.backward_neighbors]
        cand = arrays[0]
        for other in arrays[1:]:
            cand = intersect(cand, other, stats.setops)
    elif level.label is not None and graph.is_labeled:
        cand = graph.vertices_by_label.get(level.label, _EMPTY)
    else:
        cand = graph.all_vertices

    for j in level.backward_anti:
        cand = difference(cand, graph.neighbors(stack[j]), stats.setops)

    if level.upper_bounds:
        cand = bound_above(cand, min(stack[j] for j in level.upper_bounds))
    if level.lower_bounds:
        cand = bound_below(cand, max(stack[j] for j in level.lower_bounds))

    if level.label is not None and graph.is_labeled and level.backward_neighbors:
        labels = graph.labels
        assert labels is not None
        cand = cand[labels[cand] == level.label]

    if level.non_adjacent:
        cand = exclude(cand, [stack[j] for j in level.non_adjacent])
    return cand


_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False

#: A shard's top-level candidate restriction: a half-open vertex-id
#: window ``(lo, hi)``. Windows partition the root candidate range, and
#: every match is rooted at exactly one level-0 vertex, so disjoint
#: covering windows partition the match set — the invariant the
#: shard-parallel execution layer rests on.
RootWindow = tuple[int, int]


def clip_to_window(cand: np.ndarray, window: RootWindow) -> np.ndarray:
    """Restrict a sorted candidate array to vertex ids in ``[lo, hi)``."""
    lo, hi = window
    return cand[np.searchsorted(cand, lo) : np.searchsorted(cand, hi)]


def run_plan(
    graph: DataGraph,
    plan: ExplorationPlan,
    stats: EngineStats,
    on_match: Callable[[Match], None] | None = None,
    root_window: RootWindow | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> int:
    """Depth-first interpretation of a plan; returns the match count.

    Without ``on_match`` the innermost loop is the counting fast path:
    the candidate array's length is added without materializing matches
    (the set-optimization Peregrine uses for counting, §3.1). With a
    callback every match is materialized in pattern-vertex order.

    ``root_window`` restricts the level-0 candidates to a vertex-id
    window (one shard of a parallel run); ``should_stop`` is polled once
    per root candidate and ends exploration cleanly (the cross-shard
    cancellation hook for early-terminating aggregations).
    """
    depth = plan.depth
    stack: list[int] = [0] * depth
    count = 0

    def descend(level_index: int) -> int:
        cand = level_candidates(graph, plan.levels[level_index], stack, stats)
        poll = level_index == 0 and should_stop is not None
        if level_index == 0 and root_window is not None:
            cand = clip_to_window(cand, root_window)
        if level_index == depth - 1:
            if on_match is None:
                if poll and should_stop():
                    raise StopExploration()
                return int(len(cand))
            emitted = 0
            for v in cand.tolist():
                if poll and should_stop():
                    raise StopExploration()
                stack[level_index] = v
                match = plan.match_to_pattern_order(stack)
                stats.materialized += 1
                on_match(match)
                emitted += 1
            return emitted
        total = 0
        for v in cand.tolist():
            if poll and should_stop():
                raise StopExploration()
            stack[level_index] = v
            total += descend(level_index + 1)
        return total

    start = time.perf_counter()
    stopped_early = False
    try:
        count = descend(0)
    except StopExploration:
        stopped_early = True
        count = 0  # partial counts were delivered through the callback
    stats.total_seconds += time.perf_counter() - start
    if not stopped_early:
        stats.matches += count
    stats.patterns_matched += 1
    return count


class MiningEngine(ABC):
    """Common engine API: counting, aggregation and match streaming.

    Subclasses set ``native_anti_edges``; engines without native support
    (GraphPi, BigJoin) transparently match the edge-induced skeleton of an
    anti-edge pattern and apply a Filter UDF per match — the exact
    behaviour whose cost Figure 14 quantifies and morphing eliminates.
    """

    name = "engine"
    native_anti_edges = True

    def __init__(self) -> None:
        self.stats = EngineStats()
        #: Live :class:`repro.observe.Tracer` during a traced run, else
        #: ``None``. Attached by the session (or by ``repro.run``); the
        #: kernels check it with one ``is None`` test, so the untraced
        #: hot path stays allocation-free.
        self.tracer = None
        #: Batched frontier matching (:mod:`repro.engines.frontier`):
        #: ``None`` keeps the per-root kernels; an int expands roots in
        #: chunks of that size through the vectorized frontier kernel.
        #: Set by the session's ``batch_roots`` knob; pickles to pool
        #: workers, so shards batch exactly like the parent would.
        self.batch_roots: int | None = None
        #: Live :class:`repro.observe.ProgressReporter` during a run
        #: with both progress and batching enabled — the batched kernel
        #: reports per-chunk completion through it so the ETA
        #: recalibrates per batch instead of per item.
        self.progress = None
        #: True while a session run is executing on this instance. The
        #: sharing contract (see :func:`repro.resolve_engine`): stats,
        #: tracer and progress are per-run mutable state, so an instance
        #: must never serve two concurrent runs — ``resolve_engine``
        #: rejects a busy instance instead of silently corrupting both
        #: runs' telemetry.
        self.busy = False

    def __getstate__(self):
        # Engines ship to pool workers by pickle; the tracer and the
        # progress reporter stay home (workers record into their own
        # tracer when span collection is requested — see
        # ``execution._run_shard_task`` — and cannot render to the
        # parent's stream).
        state = self.__dict__.copy()
        state["tracer"] = None
        state["progress"] = None
        state["busy"] = False  # the worker's copy is its own engine
        return state

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    @contextmanager
    def kernel_span(self, name: str = "kernel", **attributes):
        """Span one kernel invocation, sampling the engine's counters.

        Individual set operations are far too hot to trace; instead the
        existing :class:`~repro.engines.setops.SetOpStats` hooks keep
        counting as always and this wrapper attaches the *deltas* (set
        ops, galloped ops, set-op/UDF/filter seconds, materialized
        matches) to one span per kernel run. With no tracer attached it
        yields ``None`` without touching the clock.
        """
        tracer = self.tracer
        if tracer is None:
            yield None
            return
        stats = self.stats
        setops = stats.setops
        before = (
            setops.intersections,
            setops.differences,
            setops.galloped,
            setops.seconds,
            stats.udf_calls,
            stats.udf_seconds,
            stats.filter_seconds,
            stats.materialized,
            setops.batched,
        )
        with tracer.span(name, **attributes) as span:
            try:
                yield span
            finally:
                span.attributes.update(
                    intersections=setops.intersections - before[0],
                    differences=setops.differences - before[1],
                    galloped=setops.galloped - before[2],
                    setop_seconds=setops.seconds - before[3],
                    udf_calls=stats.udf_calls - before[4],
                    udf_seconds=stats.udf_seconds - before[5],
                    filter_seconds=stats.filter_seconds - before[6],
                    materialized=stats.materialized - before[7],
                    batched=setops.batched - before[8],
                )

    # -- plan construction (engines override) ------------------------------

    def make_plan(self, pattern: Pattern, graph: DataGraph) -> ExplorationPlan:
        return ExplorationPlan.build(pattern)

    def _batch_hook(self):
        """Per-chunk progress callback for the batched kernels (or None)."""
        progress = self.progress
        if progress is None:
            return None
        return progress.item_progress

    def _execute(
        self,
        graph: DataGraph,
        plan: ExplorationPlan,
        on_match: Callable[[Match], None] | None = None,
        root_window: RootWindow | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> int:
        """Run one plan; engines may swap the kernel (AutoZero compiles)."""
        if self.batch_roots is not None:
            from repro.engines.frontier import run_plan_batched

            with self.kernel_span(
                "kernel.batched",
                depth=plan.depth,
                batch_roots=self.batch_roots,
                window=list(root_window) if root_window else None,
            ):
                return run_plan_batched(
                    graph,
                    plan,
                    self.stats,
                    on_match,
                    root_window=root_window,
                    should_stop=should_stop,
                    batch_roots=self.batch_roots,
                    on_batch=self._batch_hook(),
                )
        with self.kernel_span(
            "kernel", depth=plan.depth, window=list(root_window) if root_window else None
        ):
            return run_plan(
                graph,
                plan,
                self.stats,
                on_match,
                root_window=root_window,
                should_stop=should_stop,
            )

    # -- filter UDF for non-native anti-edges ------------------------------

    def _filter_match(self, graph: DataGraph, pattern: Pattern, match: Match) -> bool:
        """Filter UDF: reject matches violating the pattern's anti-edges.

        Each anti-edge costs one data-dependent branch (an edge-existence
        probe); the 2-bit predictor in the stats records misses.
        """
        start = time.perf_counter()
        self.stats.filter_calls += 1
        base_site = pattern_id(pattern) & 0xFFFF
        ok = True
        for idx, (u, v) in enumerate(sorted(pattern.anti_edges)):
            # Probe the adjacency array (binary search), as the real
            # systems do — a data-dependent branch per anti-edge.
            adj = graph.neighbors(match[u])
            pos = int(np.searchsorted(adj, match[v]))
            present = pos < len(adj) and int(adj[pos]) == match[v]
            self.stats.predictor.record(base_site + idx, present)
            if present:
                ok = False
                break
        self.stats.filter_seconds += time.perf_counter() - start
        return ok

    def _needs_filter(self, pattern: Pattern) -> bool:
        return bool(pattern.anti_edges) and not self.native_anti_edges

    def _plan_pattern(self, pattern: Pattern, graph: DataGraph) -> tuple[ExplorationPlan, bool]:
        """Plan for a pattern, with a flag for post-filtering anti-edges."""
        if self._needs_filter(pattern):
            return self.make_plan(pattern.edge_induced(), graph), True
        return self.make_plan(pattern, graph), False

    # -- public mining operations ------------------------------------------

    def count(
        self,
        graph: DataGraph,
        pattern: Pattern,
        *,
        root_window: RootWindow | None = None,
        cancel=None,
    ) -> int:
        """Number of unique matches of ``pattern`` in ``graph``.

        ``root_window`` restricts counting to matches rooted in one
        vertex-id shard; ``cancel`` is a cancellation token (``set()`` /
        ``is_set()``) shared across shards of a parallel run.
        """
        plan, needs_filter = self._plan_pattern(pattern, graph)
        should_stop = cancel.is_set if cancel is not None else None
        if not needs_filter:
            return self._execute(
                graph, plan, root_window=root_window, should_stop=should_stop
            )
        holder = [0]

        def on_match(match: Match) -> None:
            if self._filter_match(graph, pattern, match):
                holder[0] += 1

        self._execute(
            graph, plan, on_match, root_window=root_window, should_stop=should_stop
        )
        return holder[0]

    def count_set(
        self, graph: DataGraph, patterns: Iterable[Pattern]
    ) -> dict[Pattern, int]:
        """Counts for several patterns (engines may batch/merge plans)."""
        return {p: self.count(graph, p) for p in patterns}

    def explore(
        self,
        graph: DataGraph,
        pattern: Pattern,
        process: MatchCallback,
        *,
        root_window: RootWindow | None = None,
        cancel=None,
    ) -> int:
        """Stream every match through ``process``; returns the match count.

        ``process`` is the application UDF: each call is timed and counted
        (the Figure 4a/b bottleneck). ``root_window``/``cancel`` scope the
        stream to one shard of a parallel run.
        """
        plan, needs_filter = self._plan_pattern(pattern, graph)
        should_stop = cancel.is_set if cancel is not None else None
        emitted = [0]

        def on_match(match: Match) -> None:
            if needs_filter and not self._filter_match(graph, pattern, match):
                return
            start = time.perf_counter()
            process(pattern, match)
            self.stats.udf_calls += 1
            self.stats.udf_seconds += time.perf_counter() - start
            emitted[0] += 1

        self._execute(
            graph, plan, on_match, root_window=root_window, should_stop=should_stop
        )
        return emitted[0]

    def aggregate_partial(
        self,
        graph: DataGraph,
        pattern: Pattern,
        aggregation: Aggregation,
        *,
        root_window: RootWindow | None = None,
        cancel=None,
    ) -> tuple:
        """One shard's un-finalized aggregation value.

        Returns ``(value, terminal)`` where ``value`` is the raw fold of
        this shard's matches (no :meth:`Aggregation.finalize`, which must
        run once after all shards merge) and ``terminal`` flags early
        saturation. When the value saturates, ``cancel`` (if given) is
        set so sibling shards short-circuit.
        """
        if isinstance(aggregation, CountAggregation):
            # Native or filtered counting: no per-match fold needed.
            return (
                self.count(graph, pattern, root_window=root_window, cancel=cancel),
                False,
            )

        box = [aggregation.zero()]
        terminal = [False]

        def process(p: Pattern, match: Match) -> None:
            box[0] = aggregation.combine(box[0], aggregation.from_match(p, match))
            if aggregation.is_terminal(box[0]):
                terminal[0] = True
                if cancel is not None:
                    cancel.set()
                raise StopExploration()

        self.explore(
            graph, pattern, process, root_window=root_window, cancel=cancel
        )
        return box[0], terminal[0]

    def aggregate(
        self, graph: DataGraph, pattern: Pattern, aggregation: Aggregation
    ):
        """Fold every match into an aggregation value.

        Counting takes the native fast path (no per-match UDF); any other
        aggregation pays one UDF invocation per match.
        """
        value, _terminal = self.aggregate_partial(graph, pattern, aggregation)
        return aggregation.finalize(pattern, value)

    def run(
        self,
        graph: DataGraph,
        pattern: Pattern,
        aggregation: Aggregation | None = None,
        *,
        workers: int = 1,
        num_shards: int | None = None,
        executor=None,
    ):
        """Mine one pattern end-to-end, optionally shard-parallel.

        The default (``workers=1``, no executor) is the unchanged serial
        path. With ``workers > 1`` the top-level candidate range is split
        into degree-balanced shards, each shard runs through this
        engine's kernels, and per-shard results merge deterministically
        in shard order (:meth:`Aggregation.merge` for values,
        :meth:`EngineStats.merge` for counters), so parallel runs return
        byte-identical results to serial ones.

        ``executor`` selects the transport: ``"process"`` (default for
        ``workers > 1``; worker processes via ``ProcessPoolExecutor``),
        ``"serial"`` (in-process sharding — same split/merge, no
        processes), or a :class:`repro.engines.execution.ShardExecutor`
        instance to reuse a warm worker pool across calls.
        """
        aggregation = aggregation if aggregation is not None else CountAggregation()
        if workers <= 1 and executor is None:
            return self.aggregate(graph, pattern, aggregation)
        from repro.engines.execution import execute_sharded

        return execute_sharded(
            self,
            graph,
            pattern,
            aggregation,
            workers=workers,
            num_shards=num_shards,
            executor=executor,
        )
