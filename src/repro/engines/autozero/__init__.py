"""AutoZero: AutoMine [40] + GraphZero [39] hybrid with schedule merging."""

from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.autozero.schedule import MergedSchedule, merge_schedules

__all__ = ["AutoZeroEngine", "MergedSchedule", "merge_schedules"]
