"""Plan compilation: generate specialized matching code per pattern.

AutoMine's defining trait is *compilation*: each pattern's schedule is
emitted as source code (C++ in the paper, specialized Python here) so the
matching loops carry no interpretive overhead — no per-level constraint
objects, no generic dispatch, constraints inlined as literals.

``compile_plan`` turns an :class:`~repro.engines.plan.ExplorationPlan`
into a Python function ``(graph, stats, on_match=None) -> int`` that is
behaviorally identical to :func:`repro.engines.base.run_plan` (same
counts, same set-operation accounting) but runs the unrolled loops.
``compiled_source`` exposes the generated code for inspection/debugging,
mirroring AutoMine's emitted kernels.

``compile_plan_batched`` / ``run_compiled_batched`` are the batched
analogues: instead of per-root loops the emitted kernel expands a whole
frontier of roots per level through the vectorized primitives of
:mod:`repro.engines.frontier`, with every constraint's column indices,
bounds, and labels inlined as literals — a *batched schedule*. Output
is byte-identical to both the per-root kernels and the interpreted
batched kernel (:func:`repro.engines.frontier.run_plan_batched`).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.engines.base import EngineStats, StopExploration
from repro.engines.plan import ExplorationPlan, PlanLevel

_COMPILED_CACHE: dict[tuple, Callable] = {}


def compiled_source(plan: ExplorationPlan) -> str:
    """The generated Python source for a plan's matching kernel."""
    lines: list[str] = [
        "def _kernel(graph, stats, on_match, root_window=None, should_stop=None):",
        "    setops = stats.setops",
        "    count = 0",
    ]
    depth = plan.depth
    indent = "    "

    def emit(line: str, level: int) -> None:
        lines.append(indent * (level + 1) + line)

    for i, level in enumerate(plan.levels):
        pad = i  # loop nesting depth before this level's loop opens
        cand = f"cand{i}"
        emit(f"# level {i}: pattern vertex {level.pattern_vertex}", pad)
        emit(_candidate_expr(level, i, cand), pad)
        for j in level.backward_anti:
            emit(
                f"{cand} = difference({cand}, graph.neighbors(v{j}), setops)",
                pad,
            )
        if level.upper_bounds:
            bound = _min_expr([f"v{j}" for j in level.upper_bounds])
            emit(f"{cand} = bound_above({cand}, {bound})", pad)
        if level.lower_bounds:
            bound = _max_expr([f"v{j}" for j in level.lower_bounds])
            emit(f"{cand} = bound_below({cand}, {bound})", pad)
        if level.label is not None and level.backward_neighbors:
            emit("if graph.is_labeled:", pad)
            emit(
                f"    {cand} = {cand}[graph.labels[{cand}] == {level.label!r}]",
                pad,
            )
        if level.non_adjacent:
            exclusions = ", ".join(f"v{j}" for j in level.non_adjacent)
            emit(f"{cand} = exclude({cand}, [{exclusions}])", pad)
        if i == 0:
            # Shard restriction: clip the root loop to the task's window.
            emit("if root_window is not None:", pad)
            emit(f"    {cand} = clip_to_window({cand}, root_window)", pad)

        poll = "if should_stop is not None and should_stop(): raise StopExploration()"
        if i == depth - 1:
            # Innermost level: fast-path count or per-match emission.
            emit("if on_match is None:", pad)
            if i == 0:
                emit(f"    {poll}", pad)
            emit(f"    count += len({cand})", pad)
            emit("else:", pad)
            emit(f"    for v{i} in {cand}.tolist():", pad)
            if i == 0:
                emit(f"        {poll}", pad)
            emit("        stats.materialized += 1", pad)
            match_tuple = _match_tuple(plan)
            emit(f"        on_match({match_tuple})", pad)
            emit("        count += 1", pad)
        else:
            emit(f"for v{i} in {cand}.tolist():", pad)
            if i == 0:
                emit(f"    {poll}", pad)
    lines.append("    return count")
    return "\n".join(lines)


def _candidate_expr(level: PlanLevel, index: int, cand: str) -> str:
    if level.backward_neighbors:
        first, *rest = level.backward_neighbors
        expr = f"graph.neighbors(v{first})"
        for j in rest:
            expr = f"intersect({expr}, graph.neighbors(v{j}), setops)"
        return f"{cand} = {expr}"
    if level.label is not None:
        return (
            f"{cand} = graph.vertices_by_label.get({level.label!r}, EMPTY) "
            "if graph.is_labeled else graph.all_vertices"
        )
    return f"{cand} = graph.all_vertices"


def _min_expr(names: list[str]) -> str:
    return names[0] if len(names) == 1 else "min(" + ", ".join(names) + ")"


def _max_expr(names: list[str]) -> str:
    return names[0] if len(names) == 1 else "max(" + ", ".join(names) + ")"


def _match_tuple(plan: ExplorationPlan) -> str:
    """Tuple literal arranging loop variables in pattern-vertex order."""
    by_vertex = {lv.pattern_vertex: i for i, lv in enumerate(plan.levels)}
    parts = ", ".join(f"v{by_vertex[u]}" for u in range(plan.pattern.n))
    return f"({parts},)" if plan.pattern.n == 1 else f"({parts})"


def compile_plan(plan: ExplorationPlan) -> Callable:
    """Compile a plan into a kernel ``(graph, stats, on_match) -> count``.

    Kernels are cached by the plan's structural signature, so recompiling
    the same shape is free (the analogue of AutoMine reusing compiled
    schedules).
    """
    key = tuple(level.signature + (level.non_adjacent,) for level in plan.levels) + (
        plan.pattern.n,
        tuple(lv.pattern_vertex for lv in plan.levels),
    )
    kernel = _COMPILED_CACHE.get(key)
    if kernel is None:
        source = compiled_source(plan)
        namespace: dict = {}
        from repro.engines.base import _EMPTY, clip_to_window
        from repro.engines.setops import (
            bound_above,
            bound_below,
            difference,
            exclude,
            intersect,
        )

        exec(  # noqa: S102 - the source is generated locally, not user input
            compile(source, f"<compiled-plan-{key[-1]}>", "exec"),
            {
                "intersect": intersect,
                "difference": difference,
                "bound_above": bound_above,
                "bound_below": bound_below,
                "exclude": exclude,
                "clip_to_window": clip_to_window,
                "StopExploration": StopExploration,
                "EMPTY": _EMPTY,
            },
            namespace,
        )
        kernel = namespace["_kernel"]
        _COMPILED_CACHE[key] = kernel
    return kernel


def run_compiled(
    graph,
    plan: ExplorationPlan,
    stats: EngineStats,
    on_match=None,
    root_window=None,
    should_stop=None,
) -> int:
    """Drop-in replacement for :func:`repro.engines.base.run_plan`."""
    kernel = compile_plan(plan)
    start = time.perf_counter()
    stopped_early = False
    try:
        count = kernel(graph, stats, on_match, root_window, should_stop)
    except StopExploration:
        stopped_early = True
        count = 0
    stats.total_seconds += time.perf_counter() - start
    if not stopped_early:
        stats.matches += count
    stats.patterns_matched += 1
    return count


# -- batched schedules -----------------------------------------------------

_BATCHED_CACHE: dict[tuple, Callable] = {}


def _bound_expr(names: list[str], fn: str) -> str:
    """``np.minimum``/``np.maximum`` chain over embedding columns."""
    expr = names[0]
    for name in names[1:]:
        expr = f"np.{fn}({expr}, {name})"
    return expr


def _root_expr(plan: ExplorationPlan) -> str:
    level = plan.levels[0]
    if level.label is not None:
        return (
            f"graph.vertices_by_label.get({level.label!r}, EMPTY) "
            "if graph.is_labeled else graph.all_vertices"
        )
    return "graph.all_vertices"


def compiled_batched_source(plan: ExplorationPlan) -> str:
    """Generated source for a plan's *batched* frontier kernel.

    One ``descend{i}`` closure per level, deepest first, each a
    straight-line block of vectorized primitives with the level's
    constraints inlined as literals — the batched analogue of
    :func:`compiled_source`'s unrolled loops. Frontier segmentation
    (``frontier.MAX_FRONTIER_ROWS``) is emitted as a self-recursive
    guard at the top of each closure, so memory stays bounded exactly
    like the interpreted kernel.
    """
    depth = plan.depth
    lines: list[str] = [
        "def _batched_kernel(graph, stats, on_match, root_window=None,",
        "                    should_stop=None, batch_roots=2048, on_batch=None):",
        "    setops = stats.setops",
        "    count = 0",
        f"    roots = {_root_expr(plan)}",
        "    if root_window is not None:",
        "        roots = clip_to_window(roots, root_window)",
        "    n_roots = len(roots)",
    ]

    def emit(line: str, pad: int) -> None:
        lines.append("    " * pad + line)

    # Tiled levels fan out over a base set that does not depend on the
    # frontier: compute it (and its segment limit) once per kernel call.
    for i in range(1, depth):
        level = plan.levels[i]
        if level.backward_neighbors:
            continue
        if level.label is not None:
            base = (
                f"graph.vertices_by_label.get({level.label!r}, EMPTY) "
                "if graph.is_labeled else graph.all_vertices"
            )
        else:
            base = "graph.all_vertices"
        emit(f"base{i} = {base}", 1)
        emit(
            f"limit{i} = max(1, frontier.MAX_FRONTIER_ROWS // max(1, len(base{i})))",
            1,
        )

    perm = [0] * plan.pattern.n
    for i, lv in enumerate(plan.levels):
        perm[lv.pattern_vertex] = i

    for i in range(depth - 1, 0, -1):
        level = plan.levels[i]
        limit = (
            "frontier.MAX_FRONTIER_ROWS" if level.backward_neighbors else f"limit{i}"
        )
        emit(f"def descend{i}(emb):", 1)
        emit("if emb.shape[0] == 0:", 2)
        emit("    return 0", 2)
        emit(f"if emb.shape[0] > {limit}:", 2)
        emit("    total = 0", 2)
        emit(f"    for s in range(0, emb.shape[0], {limit}):", 2)
        emit(f"        total += descend{i}(emb[s : s + {limit}])", 2)
        emit("    return total", 2)
        emit(f"# level {i}: pattern vertex {level.pattern_vertex}", 2)

        bound_kwargs = []
        if level.upper_bounds:
            expr = _bound_expr([f"emb[:, {j}]" for j in level.upper_bounds], "minimum")
            emit(f"upper = {expr}", 2)
            bound_kwargs.append("upper=upper")
        if level.lower_bounds:
            expr = _bound_expr([f"emb[:, {j}]" for j in level.lower_bounds], "maximum")
            emit(f"lower = {expr}", 2)
            bound_kwargs.append("lower=lower")

        if level.backward_neighbors:
            j0 = level.backward_neighbors[0]
            kwargs = (", " + ", ".join(bound_kwargs)) if bound_kwargs else ""
            emit(
                f"rows, cand = gather_frontier(graph, emb[:, {j0}], setops{kwargs})",
                2,
            )
        else:
            if level.lower_bounds:
                emit(f'starts = np.searchsorted(base{i}, lower, side="right")', 2)
            else:
                emit("starts = np.zeros(emb.shape[0], dtype=np.int64)", 2)
            if level.upper_bounds:
                emit(f'ends = np.searchsorted(base{i}, upper, side="left")', 2)
            else:
                emit(f"ends = np.full(emb.shape[0], len(base{i}), dtype=np.int64)", 2)
            emit(
                f"rows, cand = ragged_take(base{i}, starts, "
                "np.maximum(ends - starts, 0))",
                2,
            )
            emit("setops.batched += 1", 2)
            emit("setops.elements_scanned += len(cand)", 2)

        if level.label is not None and level.backward_neighbors:
            emit("if graph.is_labeled:", 2)
            emit(f"    keep = graph.labels[cand] == {level.label!r}", 2)
            emit("    rows = rows[keep]", 2)
            emit("    cand = cand[keep]", 2)
        for j in level.non_adjacent:
            emit(f"keep = cand != emb[rows, {j}]", 2)
            emit("rows = rows[keep]", 2)
            emit("cand = cand[keep]", 2)
        for j in level.backward_neighbors[1:]:
            emit(f"keep = member_mask(graph, emb[rows, {j}], cand, setops)", 2)
            emit("rows = rows[keep]", 2)
            emit("cand = cand[keep]", 2)
        for j in level.backward_anti:
            emit(
                f"keep = ~member_mask(graph, emb[rows, {j}], cand, setops, "
                "difference=True)",
                2,
            )
            emit("rows = rows[keep]", 2)
            emit("cand = cand[keep]", 2)

        if i == depth - 1:
            emit("if on_match is None:", 2)
            emit("    return len(cand)", 2)
            emit(f"full = np.empty((len(rows), {depth}), dtype=np.int64)", 2)
            emit(f"full[:, : {depth - 1}] = emb[rows]", 2)
            emit(f"full[:, {depth - 1}] = cand", 2)
            emit("emitted = 0", 2)
            emit(f"for match_row in full[:, {perm!r}].tolist():", 2)
            emit("    stats.materialized += 1", 2)
            emit("    on_match(tuple(match_row))", 2)
            emit("    emitted += 1", 2)
            emit("return emitted", 2)
        else:
            emit(f"next_emb = np.empty((len(rows), {i + 1}), dtype=np.int64)", 2)
            emit(f"next_emb[:, : {i}] = emb[rows]", 2)
            emit(f"next_emb[:, {i}] = cand", 2)
            emit(f"return descend{i + 1}(next_emb)", 2)

    emit("for s in range(0, n_roots, batch_roots):", 1)
    emit("if should_stop is not None and should_stop():", 2)
    emit("    raise StopExploration()", 2)
    emit("chunk = roots[s : s + batch_roots].astype(np.int64, copy=False)", 2)
    if depth == 1:
        emit("if on_match is None:", 2)
        emit("    count += len(chunk)", 2)
        emit("else:", 2)
        emit("    for v in chunk.tolist():", 2)
        emit("        stats.materialized += 1", 2)
        emit("        on_match((v,))", 2)
        emit("        count += 1", 2)
    else:
        emit("count += descend1(chunk.reshape(-1, 1))", 2)
    emit("if on_batch is not None:", 2)
    emit("    on_batch(min(1.0, (s + len(chunk)) / max(1, n_roots)))", 2)
    emit("return count", 1)
    return "\n".join(lines)


def compile_plan_batched(plan: ExplorationPlan) -> Callable:
    """Compile a plan into a batched frontier kernel (cached by shape)."""
    key = tuple(level.signature + (level.non_adjacent,) for level in plan.levels) + (
        plan.pattern.n,
        tuple(lv.pattern_vertex for lv in plan.levels),
    )
    kernel = _BATCHED_CACHE.get(key)
    if kernel is None:
        import numpy as np

        from repro.engines import frontier
        from repro.engines.base import clip_to_window
        from repro.engines.frontier import (
            _EMPTY,
            _ragged_take,
            gather_frontier,
            member_mask,
        )

        source = compiled_batched_source(plan)
        namespace: dict = {}
        exec(  # noqa: S102 - the source is generated locally, not user input
            compile(source, f"<compiled-batched-plan-{key[-1]}>", "exec"),
            {
                "np": np,
                "frontier": frontier,
                "gather_frontier": gather_frontier,
                "member_mask": member_mask,
                "ragged_take": _ragged_take,
                "clip_to_window": clip_to_window,
                "StopExploration": StopExploration,
                "EMPTY": _EMPTY,
            },
            namespace,
        )
        kernel = namespace["_batched_kernel"]
        _BATCHED_CACHE[key] = kernel
    return kernel


def run_compiled_batched(
    graph,
    plan: ExplorationPlan,
    stats: EngineStats,
    on_match=None,
    root_window=None,
    should_stop=None,
    batch_roots: int = 2048,
    on_batch=None,
) -> int:
    """Drop-in for :func:`repro.engines.frontier.run_plan_batched`."""
    if batch_roots < 1:
        raise ValueError(f"batch_roots must be >= 1, got {batch_roots!r}")
    kernel = compile_plan_batched(plan)
    start = time.perf_counter()
    stopped_early = False
    try:
        count = kernel(
            graph,
            stats,
            on_match,
            root_window,
            should_stop,
            batch_roots,
            on_batch,
        )
    except StopExploration:
        stopped_early = True
        count = 0
    stats.total_seconds += time.perf_counter() - start
    if not stopped_early:
        stats.matches += count
    stats.patterns_matched += 1
    return count
