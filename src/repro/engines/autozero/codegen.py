"""Plan compilation: generate specialized matching code per pattern.

AutoMine's defining trait is *compilation*: each pattern's schedule is
emitted as source code (C++ in the paper, specialized Python here) so the
matching loops carry no interpretive overhead — no per-level constraint
objects, no generic dispatch, constraints inlined as literals.

``compile_plan`` turns an :class:`~repro.engines.plan.ExplorationPlan`
into a Python function ``(graph, stats, on_match=None) -> int`` that is
behaviorally identical to :func:`repro.engines.base.run_plan` (same
counts, same set-operation accounting) but runs the unrolled loops.
``compiled_source`` exposes the generated code for inspection/debugging,
mirroring AutoMine's emitted kernels.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.engines.base import EngineStats, StopExploration
from repro.engines.plan import ExplorationPlan, PlanLevel

_COMPILED_CACHE: dict[tuple, Callable] = {}


def compiled_source(plan: ExplorationPlan) -> str:
    """The generated Python source for a plan's matching kernel."""
    lines: list[str] = [
        "def _kernel(graph, stats, on_match, root_window=None, should_stop=None):",
        "    setops = stats.setops",
        "    count = 0",
    ]
    depth = plan.depth
    indent = "    "

    def emit(line: str, level: int) -> None:
        lines.append(indent * (level + 1) + line)

    for i, level in enumerate(plan.levels):
        pad = i  # loop nesting depth before this level's loop opens
        cand = f"cand{i}"
        emit(f"# level {i}: pattern vertex {level.pattern_vertex}", pad)
        emit(_candidate_expr(level, i, cand), pad)
        for j in level.backward_anti:
            emit(
                f"{cand} = difference({cand}, graph.neighbors(v{j}), setops)",
                pad,
            )
        if level.upper_bounds:
            bound = _min_expr([f"v{j}" for j in level.upper_bounds])
            emit(f"{cand} = bound_above({cand}, {bound})", pad)
        if level.lower_bounds:
            bound = _max_expr([f"v{j}" for j in level.lower_bounds])
            emit(f"{cand} = bound_below({cand}, {bound})", pad)
        if level.label is not None and level.backward_neighbors:
            emit("if graph.is_labeled:", pad)
            emit(
                f"    {cand} = {cand}[graph.labels[{cand}] == {level.label!r}]",
                pad,
            )
        if level.non_adjacent:
            exclusions = ", ".join(f"v{j}" for j in level.non_adjacent)
            emit(f"{cand} = exclude({cand}, [{exclusions}])", pad)
        if i == 0:
            # Shard restriction: clip the root loop to the task's window.
            emit("if root_window is not None:", pad)
            emit(f"    {cand} = clip_to_window({cand}, root_window)", pad)

        poll = "if should_stop is not None and should_stop(): raise StopExploration()"
        if i == depth - 1:
            # Innermost level: fast-path count or per-match emission.
            emit("if on_match is None:", pad)
            if i == 0:
                emit(f"    {poll}", pad)
            emit(f"    count += len({cand})", pad)
            emit("else:", pad)
            emit(f"    for v{i} in {cand}.tolist():", pad)
            if i == 0:
                emit(f"        {poll}", pad)
            emit("        stats.materialized += 1", pad)
            match_tuple = _match_tuple(plan)
            emit(f"        on_match({match_tuple})", pad)
            emit("        count += 1", pad)
        else:
            emit(f"for v{i} in {cand}.tolist():", pad)
            if i == 0:
                emit(f"    {poll}", pad)
    lines.append("    return count")
    return "\n".join(lines)


def _candidate_expr(level: PlanLevel, index: int, cand: str) -> str:
    if level.backward_neighbors:
        first, *rest = level.backward_neighbors
        expr = f"graph.neighbors(v{first})"
        for j in rest:
            expr = f"intersect({expr}, graph.neighbors(v{j}), setops)"
        return f"{cand} = {expr}"
    if level.label is not None:
        return (
            f"{cand} = graph.vertices_by_label.get({level.label!r}, EMPTY) "
            "if graph.is_labeled else graph.all_vertices"
        )
    return f"{cand} = graph.all_vertices"


def _min_expr(names: list[str]) -> str:
    return names[0] if len(names) == 1 else "min(" + ", ".join(names) + ")"


def _max_expr(names: list[str]) -> str:
    return names[0] if len(names) == 1 else "max(" + ", ".join(names) + ")"


def _match_tuple(plan: ExplorationPlan) -> str:
    """Tuple literal arranging loop variables in pattern-vertex order."""
    by_vertex = {lv.pattern_vertex: i for i, lv in enumerate(plan.levels)}
    parts = ", ".join(f"v{by_vertex[u]}" for u in range(plan.pattern.n))
    return f"({parts},)" if plan.pattern.n == 1 else f"({parts})"


def compile_plan(plan: ExplorationPlan) -> Callable:
    """Compile a plan into a kernel ``(graph, stats, on_match) -> count``.

    Kernels are cached by the plan's structural signature, so recompiling
    the same shape is free (the analogue of AutoMine reusing compiled
    schedules).
    """
    key = tuple(level.signature + (level.non_adjacent,) for level in plan.levels) + (
        plan.pattern.n,
        tuple(lv.pattern_vertex for lv in plan.levels),
    )
    kernel = _COMPILED_CACHE.get(key)
    if kernel is None:
        source = compiled_source(plan)
        namespace: dict = {}
        from repro.engines.base import _EMPTY, clip_to_window
        from repro.engines.setops import (
            bound_above,
            bound_below,
            difference,
            exclude,
            intersect,
        )

        exec(  # noqa: S102 - the source is generated locally, not user input
            compile(source, f"<compiled-plan-{key[-1]}>", "exec"),
            {
                "intersect": intersect,
                "difference": difference,
                "bound_above": bound_above,
                "bound_below": bound_below,
                "exclude": exclude,
                "clip_to_window": clip_to_window,
                "StopExploration": StopExploration,
                "EMPTY": _EMPTY,
            },
            namespace,
        )
        kernel = namespace["_kernel"]
        _COMPILED_CACHE[key] = kernel
    return kernel


def run_compiled(
    graph,
    plan: ExplorationPlan,
    stats: EngineStats,
    on_match=None,
    root_window=None,
    should_stop=None,
) -> int:
    """Drop-in replacement for :func:`repro.engines.base.run_plan`."""
    kernel = compile_plan(plan)
    start = time.perf_counter()
    stopped_early = False
    try:
        count = kernel(graph, stats, on_match, root_window, should_stop)
    except StopExploration:
        stopped_early = True
        count = 0
    stats.total_seconds += time.perf_counter() - start
    if not stopped_early:
        stats.matches += count
    stats.patterns_matched += 1
    return count
