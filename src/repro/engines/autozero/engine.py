"""AutoZero: the paper's in-house AutoMine [40] + GraphZero [39] hybrid.

Differences from the Peregrine-style engine:

* ``count_set`` merges the schedules of all input patterns
  (:mod:`repro.engines.autozero.schedule`), so overlapping loop prefixes
  across patterns execute once — the reason Section 7.1 calls AutoZero
  "the best case for Subgraph Morphing": extra superpatterns in an
  alternative set are nearly free when their schedules share loops.
* Anti-edges are supported natively (GraphZero-style set differences), so
  motif counting runs without filter UDFs.

The real AutoZero emits C++ and compiles it with g++; this substrate
interprets the same schedule structure directly (DESIGN.md §3 records the
substitution — the schedule/merging structure, not codegen, is what the
reported set-operation reductions come from).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.pattern import Pattern
from repro.engines.autozero.codegen import run_compiled, run_compiled_batched
from repro.engines.autozero.schedule import execute_merged_counts, merge_schedules
from repro.engines.base import MiningEngine
from repro.graph.datagraph import DataGraph


class AutoZeroEngine(MiningEngine):
    """Compilation-style engine with merged multi-pattern schedules."""

    name = "autozero"
    native_anti_edges = True

    def _execute(self, graph, plan, on_match=None, root_window=None, should_stop=None):
        """Single-pattern paths run *compiled* kernels (AutoMine-style).

        With ``batch_roots`` set the compiled kernel is the *batched
        schedule* (:func:`~repro.engines.autozero.codegen.compile_plan_batched`):
        same inlined constants, but expanding a whole root frontier per
        level through the vectorized frontier primitives.
        """
        if self.batch_roots is not None:
            with self.kernel_span(
                "kernel.compiled_batched",
                depth=plan.depth,
                batch_roots=self.batch_roots,
                window=list(root_window) if root_window else None,
            ):
                return run_compiled_batched(
                    graph,
                    plan,
                    self.stats,
                    on_match,
                    root_window=root_window,
                    should_stop=should_stop,
                    batch_roots=self.batch_roots,
                    on_batch=self._batch_hook(),
                )
        with self.kernel_span(
            "kernel.compiled",
            depth=plan.depth,
            window=list(root_window) if root_window else None,
        ):
            return run_compiled(
                graph,
                plan,
                self.stats,
                on_match,
                root_window=root_window,
                should_stop=should_stop,
            )

    def count_set(
        self, graph: DataGraph, patterns: Iterable[Pattern]
    ) -> dict[Pattern, int]:
        """Count all patterns in one merged-schedule pass."""
        patterns = list(patterns)
        if not patterns:
            return {}
        if self.batch_roots is not None:
            # The merged-schedule interpreter is a per-root DFS by
            # construction; under batching each pattern runs its own
            # batched schedule instead (no loop sharing to report).
            self.last_sharing_ratio = 1.0
            return super().count_set(graph, patterns)
        plans = [self.make_plan(p, graph) for p in patterns]
        schedule = merge_schedules(plans)
        self.last_sharing_ratio = schedule.sharing_ratio
        with self.kernel_span(
            "kernel.merged",
            patterns=len(patterns),
            sharing_ratio=schedule.sharing_ratio,
        ):
            counts = execute_merged_counts(graph, schedule, self.stats)
        return {p: counts.get(p, 0) for p in patterns}

    #: Sharing ratio of the most recent merged execution (1.0 = no sharing).
    last_sharing_ratio: float = 1.0
