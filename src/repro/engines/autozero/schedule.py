"""AutoZero schedules and schedule merging.

AutoMine [40] compiles patterns into nested-loop set-operation schedules
and batches the schedules of multiple patterns; GraphZero [39] adds
symmetry breaking. The paper's in-house "AutoZero" combines both:
symmetry-broken schedules whose overlapping loop prefixes are merged so
shared set operations execute once (Section 7's description).

Here a *schedule* is an :class:`~repro.engines.plan.ExplorationPlan` and
merging builds a trie keyed by each level's full constraint signature:
two patterns share a trie node exactly when the candidate computation at
that level is identical, in which case the intersection/difference work
is performed once for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pattern import Pattern
from repro.engines.base import EngineStats, level_candidates
from repro.engines.plan import ExplorationPlan, PlanLevel
from repro.graph.datagraph import DataGraph


def _merge_key(level: PlanLevel) -> tuple:
    """Levels with equal keys compute identical candidate sets."""
    return (
        level.backward_neighbors,
        level.backward_anti,
        level.upper_bounds,
        level.lower_bounds,
        level.non_adjacent,
        level.label,
    )


@dataclass
class ScheduleTrieNode:
    """One merged loop level shared by several pattern schedules."""

    level: PlanLevel
    children: dict[tuple, "ScheduleTrieNode"] = field(default_factory=dict)
    #: Patterns whose schedule ends at this level (counted via fast path).
    completes: list[Pattern] = field(default_factory=list)

    @property
    def loop_count(self) -> int:
        """Merged loop levels in this subtree (for merge-quality metrics)."""
        return 1 + sum(c.loop_count for c in self.children.values())


@dataclass
class MergedSchedule:
    """A forest of merged schedules covering a pattern set."""

    roots: dict[tuple, ScheduleTrieNode]
    num_patterns: int
    total_levels: int

    @property
    def merged_levels(self) -> int:
        return sum(r.loop_count for r in self.roots.values())

    @property
    def sharing_ratio(self) -> float:
        """< 1.0 when merging saved loop levels (1.0 = nothing shared)."""
        if self.total_levels == 0:
            return 1.0
        return self.merged_levels / self.total_levels


def merge_schedules(plans: list[ExplorationPlan]) -> MergedSchedule:
    """Merge pattern schedules into a trie of shared loop prefixes."""
    roots: dict[tuple, ScheduleTrieNode] = {}
    total_levels = 0
    for plan in plans:
        total_levels += plan.depth
        cursor: dict[tuple, ScheduleTrieNode] = roots
        node: ScheduleTrieNode | None = None
        for level in plan.levels:
            key = _merge_key(level)
            node = cursor.get(key)
            if node is None:
                node = ScheduleTrieNode(level=level)
                cursor[key] = node
            cursor = node.children
        assert node is not None
        node.completes.append(plan.pattern)
    return MergedSchedule(
        roots=roots, num_patterns=len(plans), total_levels=total_levels
    )


def execute_merged_counts(
    graph: DataGraph,
    schedule: MergedSchedule,
    stats: EngineStats,
) -> dict[Pattern, int]:
    """Count matches for every pattern in one merged pass.

    Depth-first over the trie: each node computes its candidate set once;
    patterns completing at the node add the candidate count (fast path),
    while deeper children iterate the candidates.
    """
    counts: dict[Pattern, int] = {}
    stack: list[int] = []

    def walk(node: ScheduleTrieNode) -> None:
        cand = level_candidates(graph, node.level, stack, stats)
        size = int(len(cand))
        for pattern in node.completes:
            counts[pattern] = counts.get(pattern, 0) + size
            stats.matches += size
        if not node.children or size == 0:
            return
        children = list(node.children.values())
        stack.append(0)
        for v in cand.tolist():
            stack[-1] = v
            for child in children:
                walk(child)
        stack.pop()

    import time

    start = time.perf_counter()
    for root in schedule.roots.values():
        walk(root)
    stats.total_seconds += time.perf_counter() - start
    stats.patterns_matched += schedule.num_patterns
    return counts
