"""Peregrine-style engine [26]."""

from repro.engines.peregrine.engine import PeregrineEngine

__all__ = ["PeregrineEngine"]
