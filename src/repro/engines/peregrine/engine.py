"""Peregrine-style pattern-aware matching engine [26].

Reproduced behaviours:

* pattern-aware exploration plans with symmetry-breaking partial orders
  (each unique subgraph explored once);
* *native* anti-edge support — vertex-induced patterns compile anti-edges
  into set differences rather than post-hoc filtering;
* the counting fast path: the innermost loop's candidate set is counted,
  never materialized (why SC shows no UDF/materialization time in
  Figure 4c);
* patterns are matched one at a time — no schedule merging — which is why
  Section 7.1 calls single-pattern SC the stress case for morphing's
  extra superpatterns.
"""

from __future__ import annotations

from repro.engines.base import MiningEngine


class PeregrineEngine(MiningEngine):
    """Pattern-aware engine with native anti-edges (Peregrine-style)."""

    name = "peregrine"
    native_anti_edges = True
