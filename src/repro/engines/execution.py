"""Shard-parallel execution layer: vertex-range sharding over any engine.

Both Peregrine (arXiv:2004.02369) and GraphPi treat the data graph's
top-level candidate vertices as an embarrassingly parallel task range;
this module reproduces that execution model on top of the unmodified
plan-interpretation kernels. A run splits the root candidate range into
degree-balanced vertex-id windows (:func:`shard_by_degree_prefix`), runs
every shard through the engine's own kernels, and merges per-shard
results **deterministically in shard order**:

* values through :meth:`repro.core.aggregation.Aggregation.merge`
  (counts add, MNI tables union per column, match lists concatenate in
  shard order — which, because shards are ascending id windows, is
  exactly the serial enumeration order);
* counters through :meth:`repro.engines.base.EngineStats.merge`.

Two executors implement the transport:

* :class:`SerialShardExecutor` — in-process, shard-at-a-time. The
  default/fallback: the same split/merge code path with zero new
  failure modes, used by the differential tests to pin the parallel
  semantics to the serial kernel.
* :class:`ProcessShardExecutor` — ``concurrent.futures``
  ``ProcessPoolExecutor`` workers. The engine ships to each worker once
  (pool initializer); the graph's flat CSR arrays are published to one
  ``multiprocessing.shared_memory`` segment that every worker attaches
  to **zero-copy** (:class:`SharedGraphPayload`), with a transparent
  fallback to pickling the graph when shared memory is unavailable.
  Per-shard tasks carry only the pattern, aggregation and window.

Early termination (``StopExploration`` / saturating aggregations such as
existence probes) propagates across shards through a shared cancellation
token: the shard that saturates sets the flag, kernels poll it once per
root candidate, and unstarted shards return their aggregation's zero.
"""

from __future__ import annotations

import atexit
import itertools
import os
import warnings
import weakref
from abc import ABC, abstractmethod
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from repro.core.aggregation import Aggregation
from repro.core.pattern import Pattern
from repro.engines.base import EngineStats, MiningEngine
from repro.errors import SharedMemoryLeakError
from repro.graph.datagraph import DataGraph
from repro.graph.partition import shard_by_degree_prefix
from repro.observe.tracer import timed_span

Shard = tuple[int, int]
#: One shard's outcome: (un-finalized aggregation value, shard stats),
#: extended to (value, stats, spans) when span collection is requested
#: (``map_shards(collect_spans=True)``) and the transport crosses a
#: process boundary — in-process executors record into the live tracer
#: directly and keep the two-tuple shape.
ShardResult = tuple[Any, EngineStats]


class CancelFlag:
    """In-process cancellation token (the serial analogue of ``mp.Event``)."""

    __slots__ = ("_flag",)

    def __init__(self) -> None:
        self._flag = False

    def set(self) -> None:
        self._flag = True

    def is_set(self) -> bool:
        return self._flag


def default_shard_count(workers: int, graph: DataGraph) -> int:
    """Shards per run: oversubscribe ~4 per worker for balance slack."""
    return max(1, min(graph.num_vertices, max(1, workers) * 4))


class ShardExecutor(ABC):
    """Transport for running shard tasks and collecting ordered results."""

    workers: int = 1
    #: Wall seconds spent standing the transport up (pool fork, graph
    #: export) and tearing it down. In-process executors have none;
    #: sessions add both to ``MorphRunResult.executor_seconds`` so
    #: parallel totals include the fixed cost serial runs never pay.
    setup_seconds: float = 0.0
    teardown_seconds: float = 0.0

    @abstractmethod
    def map_shards(
        self,
        engine: MiningEngine,
        graph: DataGraph,
        pattern: Pattern,
        aggregation: Aggregation,
        shards: Sequence[Shard],
        collect_spans: bool = False,
    ) -> list[ShardResult]:
        """Run every shard; results are returned in shard order.

        ``collect_spans`` asks cross-process transports to trace each
        shard into a fresh worker-side tracer and return the spans as a
        third tuple element for the caller to adopt; in-process
        transports ignore it (their kernels already record into the
        live tracer through ``engine.tracer``).
        """

    def prepare(self, engine: MiningEngine, graph: DataGraph) -> None:
        """Eagerly stand up worker resources for an (engine, graph) run.

        Optional: transports that bind lazily inside ``map_shards``
        would otherwise hide their spin-up cost inside the first
        pattern's match time. Errors degrade with a warning instead of
        raising — ``map_shards`` owns the degradation path.
        """

    def close(self) -> None:
        """Release worker resources (no-op for in-process executors)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """In-process sharded execution: identical split/merge, no processes."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)

    def map_shards(
        self, engine, graph, pattern, aggregation, shards, collect_spans=False
    ):
        # In-process execution records spans straight into the live
        # tracer (engine.tracer), so collect_spans needs no special
        # handling here beyond the per-shard grouping span.
        tracer = getattr(engine, "tracer", None)
        cancel = CancelFlag()
        results: list[ShardResult] = []
        saved_stats = engine.stats
        try:
            for shard in shards:
                engine.stats = EngineStats()
                if not cancel.is_set():
                    with timed_span(tracer, "shard", window=list(shard)):
                        value, _terminal = engine.aggregate_partial(
                            graph,
                            pattern,
                            aggregation,
                            root_window=shard,
                            cancel=cancel,
                        )
                else:
                    value = aggregation.zero()
                results.append((value, engine.stats))
        finally:
            engine.stats = saved_stats
        return results


# -- zero-copy graph transport ------------------------------------------------

#: Owner-side registry of live shared-memory segments: name -> graph name.
#: Every exported segment registers here and leaves on dispose; the leak
#: probe (:func:`assert_no_leaked_segments`) and the atexit sweep read it.
_LIVE_SEGMENTS: dict[str, str] = {}

#: Segment-name prefix: ``repro-shm-<owner pid>-<seq>-<suffix>``. The pid
#: in the name is what lets a *fresh* daemon incarnation recognize (and
#: reclaim) segments a SIGKILLed predecessor never got to unlink — the
#: atexit/finalizer sweeps only run when the owner dies politely.
_SEGMENT_PREFIX = "repro-shm"
_SEGMENT_SEQ = itertools.count()


def _create_named_segment(size: int):
    """A fresh shared-memory segment named so its owner pid is recoverable."""
    from multiprocessing import shared_memory

    for _ in range(16):
        name = (
            f"{_SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_SEQ)}"
            f"-{os.urandom(3).hex()}"
        )
        try:
            return shared_memory.SharedMemory(create=True, size=size, name=name)
        except FileExistsError:  # pragma: no cover - 24 random bits collided
            continue
    # Give up on naming; an anonymous segment still works (it just cannot
    # be swept by a successor process).
    return shared_memory.SharedMemory(create=True, size=size)  # pragma: no cover


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for another process's pid."""
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, OverflowError, ValueError):
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown: err on the safe side, do not reclaim
    return True


def sweep_stale_segments() -> tuple[str, ...]:
    """Unlink ``repro-shm`` segments whose owning process is dead.

    A SIGKILLed daemon leaves its exported CSR segments behind (no
    atexit, no finalizers); a successor daemon calls this at start-up to
    reclaim them. Only segments following the
    ``repro-shm-<pid>-...`` naming convention whose pid no longer exists
    are touched — live owners (including this process) are never raced.
    Returns the swept segment names; POSIX-only (``/dev/shm``), a no-op
    elsewhere.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return ()
    from multiprocessing import shared_memory

    swept: list[str] = []
    try:
        entries = sorted(os.listdir(shm_dir))
    except OSError:
        return ()
    for name in entries:
        if not name.startswith(_SEGMENT_PREFIX + "-"):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue
        try:
            # Attaching registered the segment with our resource tracker;
            # unregister so the tracker does not warn about the segment we
            # are about to unlink on purpose (same dance as attach()).
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except (ImportError, AttributeError, KeyError, ValueError, OSError):
            pass
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            continue
        swept.append(name)
    if swept:
        warnings.warn(
            f"reclaimed {len(swept)} stale shared-memory segment(s) from "
            f"dead process(es): {', '.join(swept)}",
            RuntimeWarning,
            stacklevel=2,
        )
    return tuple(swept)


def _cleanup_segment(name: str) -> None:
    """Best-effort unlink of one registered segment (finalizer/atexit path)."""
    if _LIVE_SEGMENTS.pop(name, None) is None:
        return
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


@atexit.register
def _cleanup_all_segments() -> None:
    """Interpreter-exit sweep: no segment survives the owning process."""
    for name in list(_LIVE_SEGMENTS):
        _cleanup_segment(name)


def live_shared_segments() -> tuple[str, ...]:
    """Names of shared-memory segments this process currently owns."""
    return tuple(sorted(_LIVE_SEGMENTS))


def assert_no_leaked_segments() -> None:
    """Fail loudly if any exported segment outlived its executor.

    Raises :class:`repro.errors.SharedMemoryLeakError` naming the leaked
    segments — and reclaims them, so one offender does not cascade into
    every later check. The test suite runs this after every test.
    """
    leaked = live_shared_segments()
    if not leaked:
        return
    owners = [f"{name} (graph {_LIVE_SEGMENTS.get(name, '?')!r})" for name in leaked]
    for name in leaked:
        _cleanup_segment(name)
    raise SharedMemoryLeakError(
        "shared-memory segment(s) outlived their executor: " + ", ".join(owners),
        segments=leaked,
    )


class SharedGraphPayload:
    """Picklable handle that rebuilds a :class:`DataGraph` from shared memory.

    :meth:`export` copies the graph's flat CSR arrays (``indptr``,
    ``indices``, optional ``labels``) into one
    ``multiprocessing.shared_memory`` segment — once, in the parent.
    The payload itself carries only the segment name plus array
    metadata, so shipping it to a worker costs a few hundred bytes;
    :meth:`attach` maps the segment and wraps the arrays **zero-copy**
    (``DataGraph.from_csr`` adopts the buffers without touching the
    edge data). The parent owns the segment and must call
    :meth:`dispose` when the pool shuts down.
    """

    def __init__(
        self,
        shm_name: str,
        num_vertices: int,
        graph_name: str,
        blocks: dict[str, tuple[int, tuple[int, ...], str]],
        num_dropped_self_loops: int = 0,
        num_duplicate_edges: int = 0,
        tracker_pid: int | None = None,
    ) -> None:
        self.shm_name = shm_name
        self.num_vertices = num_vertices
        self.graph_name = graph_name
        #: field -> (byte offset, shape, dtype string) inside the segment.
        self.blocks = blocks
        self.num_dropped_self_loops = num_dropped_self_loops
        self.num_duplicate_edges = num_duplicate_edges
        #: pid of the owner's resource-tracker daemon (see ``attach``).
        self.tracker_pid = tracker_pid
        self._shm = None  # owner-side handle; never pickled
        self._finalizer = None  # owner-side GC safety net; never pickled

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        state["_finalizer"] = None
        return state

    @classmethod
    def export(cls, graph: DataGraph) -> "SharedGraphPayload":
        """Copy a graph's CSR arrays into one shared-memory segment."""
        from multiprocessing import shared_memory

        import numpy as np

        arrays = {"indptr": graph.indptr, "indices": graph.indices}
        if graph.labels is not None:
            arrays["labels"] = graph.labels
        total = sum(a.nbytes for a in arrays.values())
        shm = _create_named_segment(max(total, 1))
        blocks: dict[str, tuple[int, tuple[int, ...], str]] = {}
        offset = 0
        for name, arr in arrays.items():
            target = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
            target[...] = arr
            blocks[name] = (offset, arr.shape, arr.dtype.str)
            offset += arr.nbytes
        payload = cls(
            shm.name,
            graph.num_vertices,
            graph.name,
            blocks,
            num_dropped_self_loops=graph.num_dropped_self_loops,
            num_duplicate_edges=graph.num_duplicate_edges,
            tracker_pid=_resource_tracker_pid(),
        )
        payload._shm = shm
        # Three nested safety nets guarantee the segment dies with its
        # owner: explicit dispose() (normal path), a GC finalizer (payload
        # dropped without dispose), and the atexit sweep (process exits
        # with payloads still alive).
        _LIVE_SEGMENTS[shm.name] = graph.name
        payload._finalizer = weakref.finalize(payload, _cleanup_segment, shm.name)
        return payload

    def attach(self) -> DataGraph:
        """Map the segment and wrap it as a graph without copying."""
        from multiprocessing import shared_memory

        import numpy as np

        shm = shared_memory.SharedMemory(name=self.shm_name)
        try:
            # Attaching registers the segment with a resource tracker,
            # which would unlink it when the tracked process set exits;
            # the parent owns the lifetime, so undo it — but only when
            # this process runs its *own* tracker (spawn). Fork workers
            # share the owner's tracker daemon, where the register was a
            # set-add no-op; unregistering there would strip the owner's
            # own registration and make its later unlink double-free.
            from multiprocessing import resource_tracker

            pid = _resource_tracker_pid()
            if pid is not None and pid != self.tracker_pid:
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except (ImportError, AttributeError, KeyError, ValueError, OSError) as exc:
            # Tracker internals vary by Python version; failing to
            # unregister only risks an early unlink warning at worker
            # exit, never corruption — but it is worth knowing about.
            warnings.warn(
                f"could not adjust resource tracker for segment "
                f"{self.shm_name}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )

        def view(field: str) -> np.ndarray:
            offset, shape, dtype = self.blocks[field]
            arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            arr.flags.writeable = False
            return arr

        graph = DataGraph.from_csr(
            self.num_vertices,
            view("indptr"),
            view("indices"),
            labels=view("labels") if "labels" in self.blocks else None,
            name=self.graph_name,
            num_dropped_self_loops=self.num_dropped_self_loops,
            num_duplicate_edges=self.num_duplicate_edges,
            validate=False,
        )
        # Keep the mapping alive for as long as the graph is, and make
        # the transport introspectable (tests assert zero-copy attach).
        graph._shm = shm  # type: ignore[attr-defined]
        graph.csr_transport = "shared_memory"  # type: ignore[attr-defined]
        return graph

    def dispose(self) -> None:
        """Owner-side cleanup: close and unlink the segment (idempotent)."""
        from multiprocessing import shared_memory

        _LIVE_SEGMENTS.pop(self.shm_name, None)
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        shm = self._shm
        if shm is None:  # disposed from a non-owner copy: open by name
            try:
                shm = shared_memory.SharedMemory(name=self.shm_name)
            except FileNotFoundError:
                return
        self._shm = None
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedGraphPayload":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()


def _resource_tracker_pid() -> int | None:
    """Pid of this process's resource-tracker daemon, if one is running."""
    try:
        from multiprocessing import resource_tracker

        return getattr(resource_tracker._resource_tracker, "_pid", None)
    except (ImportError, AttributeError, OSError):
        # No tracker daemon on this platform/build: a normal condition
        # (attach() then skips the unregister dance), not a failure.
        return None


def export_graph(graph: DataGraph):
    """Best-effort shared-memory export; ``None`` when unavailable.

    Restricted sandboxes can lack ``/dev/shm`` or forbid segment
    creation — then the pool falls back to pickling the graph into each
    worker (the pre-shared-memory transport), which is slower but
    identical in behavior.
    """
    try:
        return SharedGraphPayload.export(graph)
    except (OSError, PermissionError, ImportError, MemoryError, ValueError) as exc:
        warnings.warn(
            f"shared-memory export unavailable ({exc!r}); workers will "
            "receive a pickled copy of the graph instead",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


# -- process-pool transport --------------------------------------------------

#: Per-worker state installed by the pool initializer: (engine, graph,
#: shared cancellation event). Worker processes handle one task at a
#: time, so reusing one engine instance per worker is race-free and lets
#: plan/order caches warm across shards.
_WORKER_STATE: tuple | None = None


def _init_shard_worker(engine, graph, cancel) -> None:
    global _WORKER_STATE
    if isinstance(graph, SharedGraphPayload):
        graph = graph.attach()
    _WORKER_STATE = (engine, graph, cancel)


def _probe_worker_graph() -> dict:
    """Introspection task: how did this worker receive the graph?

    Used by the transport tests to assert that pool workers *attached*
    to the parent's CSR buffers instead of unpickling a copy.
    """
    assert _WORKER_STATE is not None, "worker pool not initialized"
    _engine, graph, _cancel = _WORKER_STATE
    return {
        "transport": getattr(graph, "csr_transport", "pickle"),
        "indices_writeable": bool(graph.indices.flags.writeable),
        "num_edges": graph.num_edges,
    }


def _run_shard_task(
    pattern,
    aggregation,
    shard,
    collect_spans=False,
    shard_index=None,
    attempt=0,
    faults=None,
):
    assert _WORKER_STATE is not None, "worker pool not initialized"
    engine, graph, cancel = _WORKER_STATE
    engine.reset_stats()
    if cancel is not None and cancel.is_set():
        if collect_spans:
            return aggregation.zero(), engine.stats, []
        return aggregation.zero(), engine.stats
    if faults is not None and shard_index is not None:
        # Injected faults (tests only): a crash os._exit()s right here, a
        # hang polls the shared cancel event and, once released, reports
        # zero exactly like a saturation-cancelled shard.
        stop_check = cancel.is_set if cancel is not None else None
        if faults.apply_before_shard(
            shard_index, attempt, in_worker=True, stop_check=stop_check
        ):
            if collect_spans:
                return aggregation.zero(), engine.stats, []
            return aggregation.zero(), engine.stats
    if not collect_spans:
        value, _terminal = engine.aggregate_partial(
            graph, pattern, aggregation, root_window=shard, cancel=cancel
        )
        if faults is not None and shard_index is not None:
            value = faults.transform_value(shard_index, attempt, value)
        return value, engine.stats
    # Trace this shard into a private tracer and ship the spans home;
    # the parent adopts them under its per-item span (clamped into the
    # parent window, so nesting survives any cross-process clock skew).
    from repro.observe.tracer import Tracer

    tracer = Tracer()
    engine.tracer = tracer
    try:
        with tracer.span("shard", window=list(shard)):
            value, _terminal = engine.aggregate_partial(
                graph, pattern, aggregation, root_window=shard, cancel=cancel
            )
    finally:
        engine.tracer = None
    if faults is not None and shard_index is not None:
        value = faults.transform_value(shard_index, attempt, value)
    return value, engine.stats, tracer.spans


def _warm_worker() -> bool:
    """No-op task: forces worker spawn + initializer before timing starts."""
    return _WORKER_STATE is not None


class ProcessShardExecutor(ShardExecutor):
    """Worker-process transport over ``ProcessPoolExecutor``.

    The pool binds to one (engine, graph) pair at first use and is
    rebuilt if either changes; a :class:`MorphingSession` therefore
    reuses one warm pool across every pattern of a run. The graph ships
    to workers through a :class:`SharedGraphPayload` — one shared-memory
    copy of the CSR arrays that every worker attaches to zero-copy —
    falling back to pickling the whole graph where shared memory is
    unavailable. If the platform refuses to start worker processes
    (restricted sandboxes), execution degrades to
    :class:`SerialShardExecutor` transparently.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("process execution needs at least 2 workers")
        self.workers = workers
        self.setup_seconds = 0.0
        self.teardown_seconds = 0.0
        self._pool = None
        self._event = None
        self._payload: SharedGraphPayload | None = None
        self._bound_to: tuple[int, int] | None = None
        self._fallback: SerialShardExecutor | None = None

    def prepare(self, engine: MiningEngine, graph: DataGraph) -> None:
        """Stand the pool up eagerly and account its spin-up time.

        ``ProcessPoolExecutor`` forks workers lazily on first submit, so
        without this the pool's fixed cost lands inside the first
        pattern's match window — the undercount that made morphed
        parallel totals look better than they were. A throwaway warm-up
        task forces worker spawn and the graph's shared-memory attach
        here instead. Failures degrade, not raise — ``map_shards`` owns
        the serial-fallback path — but they are warned about, never
        silently swallowed.
        """
        import time

        start = time.perf_counter()
        try:
            self._ensure_pool(engine, graph)
            self._pool.submit(_warm_worker).result()
        except (OSError, BrokenProcessPool, ImportError, RuntimeError) as exc:
            warnings.warn(
                f"process pool warm-up failed ({exc!r}); execution will "
                "fall back to in-process sharding",
                RuntimeWarning,
                stacklevel=2,
            )
        self.setup_seconds += time.perf_counter() - start

    def _ensure_pool(self, engine: MiningEngine, graph: DataGraph) -> None:
        key = (id(engine), id(graph))
        if self._pool is not None and self._bound_to == key:
            return
        self.close()
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = mp.get_context()
        self._event = ctx.Event()
        self._payload = export_graph(graph)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_shard_worker,
            initargs=(engine, self._payload if self._payload is not None else graph, self._event),
        )
        self._bound_to = key

    def map_shards(
        self, engine, graph, pattern, aggregation, shards, collect_spans=False
    ):
        if self._fallback is not None:
            return self._fallback.map_shards(
                engine, graph, pattern, aggregation, shards, collect_spans
            )
        try:
            self._ensure_pool(engine, graph)
            self._event.clear()
            futures = [
                self._pool.submit(
                    _run_shard_task, pattern, aggregation, shard, collect_spans
                )
                for shard in shards
            ]
            return [f.result() for f in futures]
        except (OSError, BrokenProcessPool, ImportError) as exc:
            # Restricted environments (no /dev/shm, no fork permission):
            # degrade to in-process sharding — identical results, no pool.
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                "falling back to in-process sharded execution",
                RuntimeWarning,
                stacklevel=2,
            )
            self.close()
            self._fallback = SerialShardExecutor(self.workers)
            return self._fallback.map_shards(
                engine, graph, pattern, aggregation, shards, collect_spans
            )

    def close(self) -> None:
        import time

        start = time.perf_counter()
        had_resources = self._pool is not None or self._payload is not None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._payload is not None:
            self._payload.dispose()
            self._payload = None
        self._event = None
        self._bound_to = None
        if had_resources:
            self.teardown_seconds += time.perf_counter() - start


def make_executor(workers: int, executor=None) -> ShardExecutor:
    """Resolve an executor spec: instance, ``"serial"``, or ``"process"``."""
    if isinstance(executor, ShardExecutor):
        return executor
    if executor == "serial":
        return SerialShardExecutor(workers)
    if executor in (None, "process"):
        if workers <= 1:
            return SerialShardExecutor(workers)
        return ProcessShardExecutor(workers)
    raise ValueError(
        f"unknown executor {executor!r}: use 'serial', 'process', "
        "or a ShardExecutor instance"
    )


def run_sharded(
    engine: MiningEngine,
    graph: DataGraph,
    pattern: Pattern,
    aggregation: Aggregation,
    executor: ShardExecutor,
    num_shards: int | None = None,
    tracer=None,
    control=None,
):
    """One pattern, sharded: split, fan out, merge in shard order.

    Per-shard stats merge into ``engine.stats`` (so the engine's counters
    reflect the whole run, exactly like the serial path) and the merged
    value is finalized once — :meth:`Aggregation.finalize` must see the
    complete value, e.g. MNI's automorphism closure over the full table.

    With a ``tracer``, cross-process transports return each shard's
    worker-side spans, which are adopted (re-parented and clamped)
    under the tracer's current span; in-process transports trace live.

    ``control`` (a :class:`repro.engines.recovery.RunControl`) routes
    the shards through the fault-tolerant mapping instead: retries,
    deadline cancellation, checkpoint skip/journal. With a deadline the
    merge covers only completed shards (still in ascending shard order,
    so the partial value is deterministic); the caller reads
    ``control.reports[-1]`` to learn whether the pattern completed.
    """
    shards = shard_by_degree_prefix(
        graph, num_shards or default_shard_count(executor.workers, graph)
    )
    if control is not None:
        from repro.engines.recovery import map_shards_recovering

        indexed, _report = map_shards_recovering(
            executor,
            engine,
            graph,
            pattern,
            aggregation,
            shards,
            tracer=tracer,
            control=control,
            collect_spans=tracer is not None,
        )
        parts = [indexed[index] for index in sorted(indexed)]
    else:
        parts = executor.map_shards(
            engine, graph, pattern, aggregation, shards, tracer is not None
        )
    value = aggregation.zero()
    for part in parts:
        part_value, part_stats = part[0], part[1]
        if len(part) > 2 and tracer is not None:
            tracer.adopt(part[2])
        engine.stats.merge(part_stats)
        value = aggregation.merge(value, part_value)
    return aggregation.finalize(pattern, value)


def execute_sharded(
    engine: MiningEngine,
    graph: DataGraph,
    pattern: Pattern,
    aggregation: Aggregation,
    *,
    workers: int = 1,
    num_shards: int | None = None,
    executor=None,
):
    """Entry point behind :meth:`MiningEngine.run`'s parallel path.

    Owns the executor's lifetime unless the caller passed an instance in
    (then the caller keeps the warm pool).
    """
    owned = not isinstance(executor, ShardExecutor)
    resolved = make_executor(workers, executor)
    try:
        return run_sharded(
            engine,
            graph,
            pattern,
            aggregation,
            resolved,
            num_shards=num_shards,
            tracer=getattr(engine, "tracer", None),
        )
    finally:
        if owned:
            resolved.close()
