"""Shard-parallel execution layer: vertex-range sharding over any engine.

Both Peregrine (arXiv:2004.02369) and GraphPi treat the data graph's
top-level candidate vertices as an embarrassingly parallel task range;
this module reproduces that execution model on top of the unmodified
plan-interpretation kernels. A run splits the root candidate range into
degree-balanced vertex-id windows (:func:`shard_by_degree_prefix`), runs
every shard through the engine's own kernels, and merges per-shard
results **deterministically in shard order**:

* values through :meth:`repro.core.aggregation.Aggregation.merge`
  (counts add, MNI tables union per column, match lists concatenate in
  shard order — which, because shards are ascending id windows, is
  exactly the serial enumeration order);
* counters through :meth:`repro.engines.base.EngineStats.merge`.

Two executors implement the transport:

* :class:`SerialShardExecutor` — in-process, shard-at-a-time. The
  default/fallback: the same split/merge code path with zero new
  failure modes, used by the differential tests to pin the parallel
  semantics to the serial kernel.
* :class:`ProcessShardExecutor` — ``concurrent.futures``
  ``ProcessPoolExecutor`` workers. The engine and graph ship to each
  worker once (pool initializer); per-shard tasks carry only the
  pattern, aggregation and window.

Early termination (``StopExploration`` / saturating aggregations such as
existence probes) propagates across shards through a shared cancellation
token: the shard that saturates sets the flag, kernels poll it once per
root candidate, and unstarted shards return their aggregation's zero.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from repro.core.aggregation import Aggregation
from repro.core.pattern import Pattern
from repro.engines.base import EngineStats, MiningEngine
from repro.graph.datagraph import DataGraph
from repro.graph.partition import shard_by_degree_prefix

Shard = tuple[int, int]
#: One shard's outcome: (un-finalized aggregation value, shard stats).
ShardResult = tuple[Any, EngineStats]


class CancelFlag:
    """In-process cancellation token (the serial analogue of ``mp.Event``)."""

    __slots__ = ("_flag",)

    def __init__(self) -> None:
        self._flag = False

    def set(self) -> None:
        self._flag = True

    def is_set(self) -> bool:
        return self._flag


def default_shard_count(workers: int, graph: DataGraph) -> int:
    """Shards per run: oversubscribe ~4 per worker for balance slack."""
    return max(1, min(graph.num_vertices, max(1, workers) * 4))


class ShardExecutor(ABC):
    """Transport for running shard tasks and collecting ordered results."""

    workers: int = 1

    @abstractmethod
    def map_shards(
        self,
        engine: MiningEngine,
        graph: DataGraph,
        pattern: Pattern,
        aggregation: Aggregation,
        shards: Sequence[Shard],
    ) -> list[ShardResult]:
        """Run every shard; results are returned in shard order."""

    def close(self) -> None:
        """Release worker resources (no-op for in-process executors)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """In-process sharded execution: identical split/merge, no processes."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)

    def map_shards(self, engine, graph, pattern, aggregation, shards):
        cancel = CancelFlag()
        results: list[ShardResult] = []
        saved_stats = engine.stats
        try:
            for shard in shards:
                engine.stats = EngineStats()
                if not cancel.is_set():
                    value, _terminal = engine.aggregate_partial(
                        graph,
                        pattern,
                        aggregation,
                        root_window=shard,
                        cancel=cancel,
                    )
                else:
                    value = aggregation.zero()
                results.append((value, engine.stats))
        finally:
            engine.stats = saved_stats
        return results


# -- process-pool transport --------------------------------------------------

#: Per-worker state installed by the pool initializer: (engine, graph,
#: shared cancellation event). Worker processes handle one task at a
#: time, so reusing one engine instance per worker is race-free and lets
#: plan/order caches warm across shards.
_WORKER_STATE: tuple | None = None


def _init_shard_worker(engine, graph, cancel) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (engine, graph, cancel)


def _run_shard_task(pattern, aggregation, shard) -> ShardResult:
    assert _WORKER_STATE is not None, "worker pool not initialized"
    engine, graph, cancel = _WORKER_STATE
    engine.reset_stats()
    if cancel is not None and cancel.is_set():
        return aggregation.zero(), engine.stats
    value, _terminal = engine.aggregate_partial(
        graph, pattern, aggregation, root_window=shard, cancel=cancel
    )
    return value, engine.stats


class ProcessShardExecutor(ShardExecutor):
    """Worker-process transport over ``ProcessPoolExecutor``.

    The pool binds to one (engine, graph) pair at first use and is
    rebuilt if either changes; a :class:`MorphingSession` therefore
    reuses one warm pool across every pattern of a run. If the platform
    refuses to start worker processes (restricted sandboxes), execution
    degrades to :class:`SerialShardExecutor` transparently.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("process execution needs at least 2 workers")
        self.workers = workers
        self._pool = None
        self._event = None
        self._bound_to: tuple[int, int] | None = None
        self._fallback: SerialShardExecutor | None = None

    def _ensure_pool(self, engine: MiningEngine, graph: DataGraph) -> None:
        key = (id(engine), id(graph))
        if self._pool is not None and self._bound_to == key:
            return
        self.close()
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = mp.get_context()
        self._event = ctx.Event()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_shard_worker,
            initargs=(engine, graph, self._event),
        )
        self._bound_to = key

    def map_shards(self, engine, graph, pattern, aggregation, shards):
        if self._fallback is not None:
            return self._fallback.map_shards(
                engine, graph, pattern, aggregation, shards
            )
        try:
            self._ensure_pool(engine, graph)
            self._event.clear()
            futures = [
                self._pool.submit(_run_shard_task, pattern, aggregation, shard)
                for shard in shards
            ]
            return [f.result() for f in futures]
        except (OSError, BrokenProcessPool, ImportError) as exc:
            # Restricted environments (no /dev/shm, no fork permission):
            # degrade to in-process sharding — identical results, no pool.
            import warnings

            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                "falling back to in-process sharded execution",
                RuntimeWarning,
                stacklevel=2,
            )
            self.close()
            self._fallback = SerialShardExecutor(self.workers)
            return self._fallback.map_shards(
                engine, graph, pattern, aggregation, shards
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._event = None
        self._bound_to = None


def make_executor(workers: int, executor=None) -> ShardExecutor:
    """Resolve an executor spec: instance, ``"serial"``, or ``"process"``."""
    if isinstance(executor, ShardExecutor):
        return executor
    if executor == "serial":
        return SerialShardExecutor(workers)
    if executor in (None, "process"):
        if workers <= 1:
            return SerialShardExecutor(workers)
        return ProcessShardExecutor(workers)
    raise ValueError(
        f"unknown executor {executor!r}: use 'serial', 'process', "
        "or a ShardExecutor instance"
    )


def run_sharded(
    engine: MiningEngine,
    graph: DataGraph,
    pattern: Pattern,
    aggregation: Aggregation,
    executor: ShardExecutor,
    num_shards: int | None = None,
):
    """One pattern, sharded: split, fan out, merge in shard order.

    Per-shard stats merge into ``engine.stats`` (so the engine's counters
    reflect the whole run, exactly like the serial path) and the merged
    value is finalized once — :meth:`Aggregation.finalize` must see the
    complete value, e.g. MNI's automorphism closure over the full table.
    """
    shards = shard_by_degree_prefix(
        graph, num_shards or default_shard_count(executor.workers, graph)
    )
    parts = executor.map_shards(engine, graph, pattern, aggregation, shards)
    value = aggregation.zero()
    for part_value, part_stats in parts:
        engine.stats.merge(part_stats)
        value = aggregation.merge(value, part_value)
    return aggregation.finalize(pattern, value)


def execute_sharded(
    engine: MiningEngine,
    graph: DataGraph,
    pattern: Pattern,
    aggregation: Aggregation,
    *,
    workers: int = 1,
    num_shards: int | None = None,
    executor=None,
):
    """Entry point behind :meth:`MiningEngine.run`'s parallel path.

    Owns the executor's lifetime unless the caller passed an instance in
    (then the caller keeps the warm pool).
    """
    owned = not isinstance(executor, ShardExecutor)
    resolved = make_executor(workers, executor)
    try:
        return run_sharded(
            engine, graph, pattern, aggregation, resolved, num_shards=num_shards
        )
    finally:
        if owned:
            resolved.close()
