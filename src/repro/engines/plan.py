"""Exploration plans: pattern-specific matching programs (Section 2).

A plan fixes a matching order over the pattern's vertices and precomputes,
for every position, which earlier positions constrain the candidate set:
backward regular edges (intersections), backward anti-edges (set
differences), symmetry-breaking id bounds, and the required vertex label.
The shared kernel in :mod:`repro.engines.base` interprets plans; engines
differ in how they choose orders and group plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.isomorphism import symmetry_breaking_conditions
from repro.core.costmodel import matching_order
from repro.core.pattern import Pattern


@dataclass(frozen=True)
class PlanLevel:
    """Constraints for one nested-loop level of the plan."""

    pattern_vertex: int
    #: Positions (not vertex ids) of earlier loop levels joined by an edge.
    backward_neighbors: tuple[int, ...]
    #: Positions of earlier levels joined by an anti-edge.
    backward_anti: tuple[int, ...]
    #: Positions whose matched vertex must have a LARGER id than ours.
    upper_bounds: tuple[int, ...]
    #: Positions whose matched vertex must have a SMALLER id than ours.
    lower_bounds: tuple[int, ...]
    #: Positions of earlier levels not joined by a regular edge; the
    #: candidates must be explicitly checked distinct from these matches
    #: (regular-edge joins guarantee distinctness on their own).
    non_adjacent: tuple[int, ...]
    label: int | None

    @property
    def signature(self) -> tuple:
        """Structure key used for schedule merging (AutoZero)."""
        return (
            self.backward_neighbors,
            self.backward_anti,
            self.upper_bounds,
            self.lower_bounds,
            self.label,
        )


@dataclass(frozen=True)
class ExplorationPlan:
    """A full matching program for one pattern."""

    pattern: Pattern
    levels: tuple[PlanLevel, ...]

    @property
    def depth(self) -> int:
        return len(self.levels)

    @classmethod
    def build(
        cls,
        pattern: Pattern,
        order: Sequence[int] | None = None,
        symmetry_breaking: bool = True,
    ) -> "ExplorationPlan":
        """Compile a pattern into a plan.

        ``order`` overrides the default core-first matching order (GraphPi
        supplies performance-model-selected orders). With
        ``symmetry_breaking`` off the plan enumerates one match per
        automorphic image (used by tests to validate the conditions).
        """
        if order is None:
            order = matching_order(pattern.edge_induced())
        order = list(order)
        if sorted(order) != list(range(pattern.n)):
            raise ValueError("order must be a permutation of the pattern vertices")
        position = {v: i for i, v in enumerate(order)}

        conditions: tuple[tuple[int, int], ...] = ()
        if symmetry_breaking:
            conditions = symmetry_breaking_conditions(pattern)

        levels = []
        for i, v in enumerate(order):
            backward = tuple(
                sorted(position[w] for w in pattern.neighbors(v) if position[w] < i)
            )
            anti = tuple(
                sorted(
                    position[w] for w in pattern.anti_neighbors(v) if position[w] < i
                )
            )
            upper, lower = [], []
            for u, w in conditions:
                # condition (u, w): match(u) < match(w)
                if v == u and position[w] < i:
                    upper.append(position[w])
                elif v == w and position[u] < i:
                    lower.append(position[u])
            # Backward regular edges force distinctness (no self-loops), but
            # anti-edge differences do NOT remove the earlier vertex itself,
            # so anti positions still need the explicit injectivity check.
            non_adjacent = tuple(j for j in range(i) if j not in set(backward))
            levels.append(
                PlanLevel(
                    pattern_vertex=v,
                    backward_neighbors=backward,
                    backward_anti=anti,
                    upper_bounds=tuple(sorted(upper)),
                    lower_bounds=tuple(sorted(lower)),
                    non_adjacent=non_adjacent,
                    label=pattern.label(v),
                )
            )
        return cls(pattern=pattern, levels=tuple(levels))

    def match_to_pattern_order(self, stack: Sequence[int]) -> tuple[int, ...]:
        """Convert a per-level match stack into pattern-vertex indexing."""
        out = [0] * self.pattern.n
        for level, v in zip(self.levels, stack):
            out[level.pattern_vertex] = v
        return tuple(out)

    def describe(self) -> str:
        """Human-readable exploration plan (the paper's plan listings).

        One line per loop level showing where candidates come from and
        which constraints apply — the same information AutoMine prints in
        its generated schedules.
        """
        lines = []
        for i, level in enumerate(self.levels):
            parts = []
            if level.backward_neighbors:
                inter = " ∩ ".join(f"N(v{j})" for j in level.backward_neighbors)
                parts.append(inter)
            elif level.label is not None:
                parts.append(f"V[label={level.label}]")
            else:
                parts.append("V")
            for j in level.backward_anti:
                parts.append(f"∖ N(v{j})")
            constraints = []
            constraints += [f"< v{j}" for j in level.upper_bounds]
            constraints += [f"> v{j}" for j in level.lower_bounds]
            if level.label is not None and level.backward_neighbors:
                constraints.append(f"label={level.label}")
            suffix = f"  [{', '.join(constraints)}]" if constraints else ""
            lines.append(
                f"v{i} (pattern vertex {level.pattern_vertex}) ← "
                f"{' '.join(parts)}{suffix}"
            )
        return "\n".join(lines)
