"""The four graph-mining system substrates the paper integrates with.

``peregrine`` (pattern-aware, native anti-edges), ``autozero``
(AutoMine/GraphZero-style compiled + merged schedules), ``graphpi``
(performance-model order selection + IEP, edge-induced only), ``bigjoin``
(worst-case-optimal joins, breadth-first), plus ``sumpa``
(pattern-abstraction matching for pattern sets). All share the
instrumented kernel in ``base``.
"""

from repro.engines.base import EngineStats, MiningEngine

__all__ = ["EngineStats", "MiningEngine"]
