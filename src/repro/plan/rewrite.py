"""Typed rewrite plans: the DAG of measure/combine steps a search emits.

A :class:`RewritePlan` is the contract between the planner search and
the session executor: *what* to measure (one :class:`MeasureStep` or
:class:`DecomposeStep` per selected item, each carrying the rule that
placed it and its predicted cost) and *how* to recombine measurements
into query answers (one :class:`CombineStep` per query). The session
executes the plan uniformly — measure steps through the engine, combine
steps through the morphing-equation converters — so strategies differ
only in which steps the search emits, never in executor code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pattern import Pattern
from repro.core.equations import Item
from repro.plan.rules import Decomposition

__all__ = [
    "CombineStep",
    "DecomposeStep",
    "MeasureStep",
    "RewritePlan",
]


def item_label(item: Item) -> str:
    """Human-readable ``name^variant`` label for spans and describe()."""
    from repro.core.atlas import pattern_name

    skel, variant = item
    return f"{pattern_name(skel)}^{variant}"


@dataclass(frozen=True)
class MeasureStep:
    """Measure one item directly on the engine (the DirectMatch rule)."""

    item: Item
    predicted_cost: float
    rule: str = "direct"


@dataclass(frozen=True)
class DecomposeStep:
    """Measure one counting item via prefix streaming + IEP arithmetic."""

    item: Item
    decomposition: Decomposition
    predicted_cost: float
    #: Predicted cost of measuring the item directly instead (the
    #: alternative the search rejected; kept for audits and describe()).
    direct_cost: float = 0.0
    rule: str = "decompose"


@dataclass(frozen=True)
class CombineStep:
    """Recombine measured items into one query's answer.

    ``mode`` is ``"identity"`` (the query's own item was measured),
    ``"solve"`` (counting: signed integer combination from
    :func:`repro.core.equations.solve_query`) or ``"union"`` (Eq. 1's
    V-union direction for non-invertible aggregations).
    """

    query: Pattern
    mode: str
    sources: tuple[Item, ...]
    predicted_cost: float = 0.0


@dataclass(frozen=True)
class RewritePlan:
    """The search's output: measure steps + combine steps + bookkeeping.

    ``selection`` keeps the Algorithm 1 bookkeeping (query items,
    morphed flags, cost estimates) that the session's result object and
    audits report; the step tuples are the executable view of the same
    decision plus the per-item execution rule the search picked.
    """

    strategy: str
    selection: "SelectionResult"  # noqa: F821 - imported for typing below
    measure_steps: tuple[MeasureStep, ...] = ()
    decompose_steps: tuple[DecomposeStep, ...] = ()
    combine_steps: tuple[CombineStep, ...] = ()
    predicted_cost: float = 0.0

    #: item -> its measure-or-decompose step, for executor lookup.
    _step_by_item: dict = field(
        default=None, repr=False, compare=False, hash=False
    )

    def step_for(self, item: Item):
        """The measure/decompose step that produces ``item``'s value."""
        index = self._step_by_item
        if index is None:
            index = {s.item: s for s in self.measure_steps}
            index.update({s.item: s for s in self.decompose_steps})
            object.__setattr__(self, "_step_by_item", index)
        return index[item]

    @property
    def measured(self) -> frozenset[Item]:
        """All items the plan measures (mirrors ``selection.measured``)."""
        return self.selection.measured

    def describe(self) -> str:
        """Render the plan DAG as indented text (CLI ``--explain``)."""
        lines = [
            f"RewritePlan(strategy={self.strategy}, "
            f"predicted_cost={self.predicted_cost:.1f})"
        ]
        steps = sorted(
            list(self.measure_steps) + list(self.decompose_steps),
            key=lambda s: repr(s.item),
        )
        for step in steps:
            lines.append(
                f"  measure {item_label(step.item)}"
                f" [{step.rule}] cost≈{step.predicted_cost:.1f}"
            )
            if isinstance(step, DecomposeStep):
                dec = step.decomposition
                lines.append(
                    f"    prefix n={dec.prefix.n}"
                    f" suffix={dec.suffix_size}"
                    f" (direct≈{step.direct_cost:.1f})"
                )
        from repro.core.atlas import pattern_name

        for step in self.combine_steps:
            sources = ", ".join(item_label(i) for i in step.sources)
            lines.append(
                f"  combine {pattern_name(step.query)}"
                f" via {step.mode}: {sources}"
            )
        return "\n".join(lines)
