"""The rewrite planner: a cost-driven search over composable rules.

This package recasts alternative-pattern selection (Algorithm 1) as one
move — :class:`~repro.plan.rules.SuperpatternMorph` — inside an explicit
rewrite-rule space that also contains :class:`~repro.plan.rules
.DirectMatch` and the DwarvesGraph-style
:class:`~repro.plan.rules.Decompose` rule (prefix matching plus
inclusion–exclusion arithmetic, engine-agnostic). The search
(:func:`~repro.plan.search.search_plan`) prices every applicable rule
under the shared cost model and emits a typed
:class:`~repro.plan.rewrite.RewritePlan` the morphing session executes
uniformly.
"""

from repro.plan.iep import ordered_distinct_count, set_partitions
from repro.plan.rewrite import CombineStep, DecomposeStep, MeasureStep, RewritePlan
from repro.plan.rules import (
    Decompose,
    Decomposition,
    DirectMatch,
    RewriteRule,
    SuperpatternMorph,
    decompose_count,
    find_decompositions,
)
from repro.plan.search import (
    MAX_ROUNDS,
    MAX_SUBSET_CHILDREN,
    PlanTruncationWarning,
    STRATEGIES,
    SelectionResult,
    legal_variants,
    morph_greedy,
    search_plan,
)

__all__ = [
    "CombineStep",
    "Decompose",
    "DecomposeStep",
    "Decomposition",
    "DirectMatch",
    "MAX_ROUNDS",
    "MAX_SUBSET_CHILDREN",
    "MeasureStep",
    "PlanTruncationWarning",
    "RewritePlan",
    "RewriteRule",
    "STRATEGIES",
    "SelectionResult",
    "SuperpatternMorph",
    "decompose_count",
    "find_decompositions",
    "legal_variants",
    "morph_greedy",
    "ordered_distinct_count",
    "search_plan",
    "set_partitions",
]
