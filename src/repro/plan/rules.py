"""The rewrite-rule space the planner searches over.

Three composable ways to answer a query, each priced by the shared cost
model (the DwarvesGraph/Geo observation that rewriting should be a
cost-driven search over an explicit rule space, not one hard-coded
greedy):

* :class:`DirectMatch` — hand the item to the engine as-is;
* :class:`SuperpatternMorph` — the paper's Algorithm 1 move: replace a
  pattern by the cheapest variants of its superpattern closure and
  recombine through the morphing equations (Eq. 1);
* :class:`Decompose` — split a *counting* item into a smaller prefix
  sub-pattern the engine enumerates plus independent suffix vertices
  recombined arithmetically through the inclusion–exclusion formula
  (:mod:`repro.plan.iep`) — engine-agnostic, unlike the GraphPi-internal
  IEP which only that engine's plans could reach.

The decomposition identity, for an edge-induced pattern ``p`` with an
independent suffix set ``S`` whose removal leaves a connected prefix
``P`` (every ``s ∈ S`` keeps all its neighbors in ``P``):

    count(pᴱ) = ( Σ_{matches m of P} Σ_{a ∈ Aut(P)}
                  D([ C_s(m∘a) for s in S ]) ) / |Aut(p)|

where ``C_s(f) = ⋂_{w ∈ N(s)} N_G(f(w))`` (label-filtered, minus the
prefix images for injectivity) and ``D`` is the ordered-distinct count.
The automorphism sum collapses to a few *multiplicity classes* computed
once at plan time: automorphisms inducing the same family of anchor
sets contribute identical terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable

import numpy as np

from repro.core.aggregation import Aggregation
from repro.core.costmodel import CostModel
from repro.core.equations import Item
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED
from repro.engines.setops import exclude, intersect
from repro.plan.iep import ordered_distinct_count, set_partitions

__all__ = [
    "Decompose",
    "Decomposition",
    "DirectMatch",
    "RewriteRule",
    "SuperpatternMorph",
    "decompose_count",
    "find_decompositions",
]

_EMPTY = np.empty(0, dtype=np.int64)

#: A suffix slot: (anchor prefix-vertex ids, required label or None).
SuffixSlot = tuple[tuple[int, ...], object]


@dataclass(frozen=True)
class Decomposition:
    """One way to split a counting item into prefix × IEP suffix.

    ``aut_classes`` holds the collapsed Aut(prefix) sum: each entry is a
    ``(family, multiplicity)`` pair where ``family`` is the tuple of
    suffix slots (anchor sets under that automorphism class) and
    ``multiplicity`` how many automorphisms induce it.
    """

    #: The edge-induced skeleton this decomposition answers.
    skeleton: Pattern
    #: Connected edge-induced sub-pattern the engine enumerates.
    prefix: Pattern
    #: Suffix slots in the prefix's own vertex numbering.
    suffix: tuple[SuffixSlot, ...]
    #: Collapsed automorphism sum: ((family, multiplicity), ...).
    aut_classes: tuple[tuple[tuple[SuffixSlot, ...], int], ...]
    #: |Aut(skeleton)| — the embeddings-per-occurrence divisor.
    pattern_automorphisms: int

    @property
    def suffix_size(self) -> int:
        """Number of pattern vertices answered arithmetically."""
        return len(self.suffix)

    @property
    def per_match_ops(self) -> float:
        """Interpreted planner operations per streamed prefix match.

        Candidate-set builds (one intersection chain + injectivity
        exclusion per distinct slot) plus the IEP partition terms per
        automorphism class — the quantity the cost model multiplies by
        :attr:`~repro.core.costmodel.EngineCostProfile.python_op_weight`.
        """
        slots = {slot for family, _mult in self.aut_classes for slot in family}
        builds = sum(len(anchors) + 1 for anchors, _label in slots)
        bell = sum(1 for _ in set_partitions(list(range(self.suffix_size))))
        return builds + len(self.aut_classes) * (bell + self.suffix_size)

    def predicted_cost(self, cost_model: CostModel) -> float:
        """Relative cost: stream the prefix, then IEP every match."""
        profile = cost_model.profile
        prefix_cost = cost_model.pattern_cost(self.prefix, EDGE_INDUCED)
        prefix_matches = cost_model.estimated_matches(self.prefix, EDGE_INDUCED)
        stream_cost = prefix_matches * (
            profile.materialize_weight + profile.per_udf_call_weight
        )
        iep_cost = prefix_matches * self.per_match_ops * profile.python_op_weight
        return prefix_cost + stream_cost + iep_cost


def _induced_prefix(
    skel: Pattern, kept: tuple[int, ...]
) -> tuple[Pattern, dict[int, int]]:
    """Sub-pattern of ``skel`` on ``kept`` vertices, renumbered densely."""
    remap = {v: i for i, v in enumerate(kept)}
    edges = [
        (remap[u], remap[v])
        for u, v in skel.edges
        if u in remap and v in remap
    ]
    labels = None
    if skel.labels is not None:
        labels = [skel.label(v) for v in kept]
    return Pattern(len(kept), edges, labels=labels), remap


def _slot_key(slot: SuffixSlot):
    anchors, label = slot
    return (anchors, repr(label))


def _aut_classes(
    prefix: Pattern, suffix: tuple[SuffixSlot, ...]
) -> tuple[tuple[tuple[SuffixSlot, ...], int], ...]:
    """Collapse Aut(prefix) into distinct anchor-set families."""
    from repro.core.isomorphism import automorphisms

    groups: dict[tuple[SuffixSlot, ...], int] = {}
    for aut in automorphisms(prefix):
        family = tuple(
            sorted(
                (
                    (tuple(sorted(aut[w] for w in anchors)), label)
                    for anchors, label in suffix
                ),
                key=_slot_key,
            )
        )
        groups[family] = groups.get(family, 0) + 1
    return tuple(sorted(groups.items(), key=lambda kv: repr(kv[0])))


def find_decompositions(skel: Pattern) -> tuple[Decomposition, ...]:
    """Every legal prefix/suffix split of an edge-induced skeleton.

    A suffix set must be independent in ``skel`` (so suffix candidate
    sets are prefix-determined and the IEP formula applies) and of size
    ≥ 2 (a 1-suffix is the engines' ordinary fast path), and the
    remaining prefix must be connected and non-empty so any engine can
    enumerate it. Cliques admit no split (no independent pair), and
    vertex-induced items are never offered one — their anti-edges
    between suffix vertices would break candidate independence.
    """
    if skel.n < 3 or not skel.is_edge_induced or skel.is_clique:
        return ()
    from repro.core.isomorphism import automorphisms

    num_auts = len(automorphisms(skel))
    out: list[Decomposition] = []
    vertices = range(skel.n)
    for size in range(2, skel.n):
        for suffix_vertices in combinations(vertices, size):
            chosen = set(suffix_vertices)
            if any(
                skel.has_edge(u, v)
                for u, v in combinations(suffix_vertices, 2)
            ):
                continue
            kept = tuple(v for v in vertices if v not in chosen)
            prefix, remap = _induced_prefix(skel, kept)
            if not prefix.is_connected:
                continue
            suffix = tuple(
                (
                    tuple(sorted(remap[w] for w in skel.neighbors(s))),
                    skel.label(s),
                )
                for s in suffix_vertices
            )
            out.append(
                Decomposition(
                    skeleton=skel,
                    prefix=prefix,
                    suffix=suffix,
                    aut_classes=_aut_classes(prefix, suffix),
                    pattern_automorphisms=num_auts,
                )
            )
    return tuple(out)


def decompose_count(
    graph,
    decomposition: Decomposition,
    stream: Callable[[Pattern, Callable], None],
    stats,
) -> int:
    """Execute a decomposition: stream the prefix, IEP the suffix.

    ``stream(pattern, callback)`` must invoke ``callback(pattern,
    match)`` once per occurrence of ``pattern`` — the session passes its
    sharded-or-serial ``_explore``, so workers, retries and deadlines
    compose unchanged. ``stats`` collects the suffix set operations.
    """
    total = 0
    prefix_n = decomposition.prefix.n
    by_label = graph.vertices_by_label if graph.is_labeled else None

    def on_match(_pattern: Pattern, match) -> None:
        nonlocal total
        images = [int(match[u]) for u in range(prefix_n)]
        cache: dict[SuffixSlot, np.ndarray] = {}

        def candidates(slot: SuffixSlot) -> np.ndarray:
            got = cache.get(slot)
            if got is not None:
                return got
            anchors, label = slot
            current = graph.neighbors(images[anchors[0]])
            for a in anchors[1:]:
                current = intersect(
                    current, graph.neighbors(images[a]), stats.setops
                )
            if label is not None and by_label is not None:
                current = intersect(
                    current, by_label.get(label, _EMPTY), stats.setops
                )
            current = exclude(current, images)
            cache[slot] = current
            return current

        for family, multiplicity in decomposition.aut_classes:
            sets = [candidates(slot) for slot in family]
            ordered = ordered_distinct_count(sets, stats)
            if ordered:
                total += multiplicity * ordered

    stream(decomposition.prefix, on_match)
    # Embeddings / |Aut(p)| = occurrences; exact for complete streams
    # (interrupted partial streams are discarded by the session).
    return total // decomposition.pattern_automorphisms


class RewriteRule:
    """One move in the planner's rewrite space.

    Rules are stateless deciders: :meth:`applies` gates legality for an
    ``(item, aggregation)`` pair, and the search prices the applicable
    moves against each other under the shared cost model.
    """

    name = "rule"

    def applies(self, item: Item, aggregation: Aggregation) -> bool:
        """Whether this rule may rewrite ``item`` under ``aggregation``."""
        raise NotImplementedError


class DirectMatch(RewriteRule):
    """Measure the item with the engine exactly as stated (always legal)."""

    name = "direct"

    def applies(self, item: Item, aggregation: Aggregation) -> bool:
        """Direct measurement is the universal fallback."""
        return True


class SuperpatternMorph(RewriteRule):
    """Algorithm 1's move: replace an item by its superpattern closure.

    Legal in both Eq. 1 directions for invertible aggregations; for
    non-invertible ones only edge-induced items may morph (the V-union
    direction), mirroring :func:`repro.plan.search.legal_variants`.
    """

    name = "morph"

    def applies(self, item: Item, aggregation: Aggregation) -> bool:
        """Invertible aggregations morph anything; others only E items."""
        return aggregation.invertible or item[1] == EDGE_INDUCED


class Decompose(RewriteRule):
    """Split a counting item into prefix matching plus IEP arithmetic.

    Only offered for invertible aggregations (the recombination is an
    arithmetic identity on counts — MNI tables, match lists and
    existence cannot be reassembled from sub-pattern aggregates) and
    only for edge-induced items (vertex-induced anti-edges between
    suffix vertices would invalidate candidate independence).
    """

    name = "decompose"

    _candidates_cache: dict[Pattern, tuple[Decomposition, ...]] = {}

    def applies(self, item: Item, aggregation: Aggregation) -> bool:
        """Invertible aggregation + edge-induced non-clique item."""
        skel, variant = item
        if not aggregation.invertible or variant != EDGE_INDUCED:
            return False
        return bool(self.candidates(item))

    def candidates(self, item: Item) -> tuple[Decomposition, ...]:
        """All legal decompositions of the item's skeleton (memoized)."""
        skel, _variant = item
        cached = self._candidates_cache.get(skel)
        if cached is None:
            cached = find_decompositions(skel)
            self._candidates_cache[skel] = cached
        return cached

    def best(
        self, item: Item, cost_model: CostModel
    ) -> tuple[Decomposition, float] | None:
        """Cheapest decomposition under the cost model, or ``None``."""
        best: tuple[Decomposition, float] | None = None
        for dec in self.candidates(item):
            cost = dec.predicted_cost(cost_model)
            if best is None or cost < best[1]:
                best = (dec, cost)
        return best
