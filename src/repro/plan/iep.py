"""Engine-agnostic inclusion–exclusion counting arithmetic.

The permanent-style ordered-distinct count used to live inside the
GraphPi engine (:mod:`repro.engines.graphpi.iep`), which meant only that
engine could exploit it. The rewrite planner's ``Decompose`` rule needs
the same arithmetic to recombine sub-pattern measurements on *any*
engine, so the partition enumeration and the ordered-distinct formula
live here; the GraphPi module now imports them (its plan-suffix
eligibility analysis and execution loop stay engine-side, where the
:class:`~repro.engines.plan.ExplorationPlan` types live).

The core identity: given candidate sets ``C_1 .. C_k``, the number of
ordered assignments of *pairwise-distinct* vertices, one from each set,
is

    D = Σ_{partitions P of {1..k}} (-1)^{k - |P|} ·
        Π_{block B ∈ P} (|B| - 1)! · |⋂_{u ∈ B} C_u|

implemented over set partitions (``k`` is at most a pattern's vertex
count, so Bell numbers stay tiny).
"""

from __future__ import annotations

from math import factorial
from typing import Iterator

import numpy as np

from repro.engines.setops import intersect

__all__ = ["ordered_distinct_count", "set_partitions"]


def set_partitions(items: list[int]) -> Iterator[list[list[int]]]:
    """All set partitions of ``items`` (Bell(k) of them)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1 :]
        yield [[first]] + partition


def ordered_distinct_count(
    candidate_sets: list[np.ndarray], stats
) -> int:
    """Ordered assignments of distinct vertices, one from each set.

    ``stats`` is an :class:`~repro.engines.base.EngineStats` (or any
    object with a ``setops`` counter bundle); the block intersections
    are counted there like any other kernel set operation. Identical
    blocks share one cached intersection, so repeated candidate sets —
    the star-pattern case — cost a single set op.
    """
    k = len(candidate_sets)
    intersections: dict[frozenset[int], np.ndarray] = {}

    def block_set(block: frozenset[int]) -> np.ndarray:
        cached = intersections.get(block)
        if cached is not None:
            return cached
        members = sorted(block)
        current = candidate_sets[members[0]]
        for m in members[1:]:
            current = intersect(current, candidate_sets[m], stats.setops)
        intersections[block] = current
        return current

    total = 0
    for partition in set_partitions(list(range(k))):
        term = 1
        for block in partition:
            size = len(block_set(frozenset(block)))
            if size == 0:
                term = 0
                break
            term *= factorial(len(block) - 1) * size
        if term:
            sign = -1 if (k - len(partition)) % 2 else 1
            total += sign * term
    return total
