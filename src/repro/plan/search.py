"""Cost-driven search over the rewrite-rule space (planner core).

This module owns what ``core/selection.py`` used to: the Algorithm 1
greedy (Section 5.2) that decides *which items to measure*, now recast
as the :class:`~repro.plan.rules.SuperpatternMorph` move inside a wider
search. On top of it, :func:`search_plan` lets the execution rules —
:class:`~repro.plan.rules.DirectMatch` vs
:class:`~repro.plan.rules.Decompose` — compete per measured item under
the same cost model, and emits the typed
:class:`~repro.plan.rewrite.RewritePlan` the session executes.

Strategies:

* ``"direct"`` — no rewriting: measure each query as stated;
* ``"morph"`` — Algorithm 1 exactly, every item measured directly;
* ``"decompose"`` — Algorithm 1's measured set, but every item that
  admits a legal decomposition is answered by prefix + IEP arithmetic;
* ``"auto"`` (default) — Algorithm 1's measured set, with decomposition
  replacing direct measurement only where the cost model predicts a
  win by at least the session margin.

Because the execution rule never changes *which* items are measured,
``auto`` reproduces Algorithm 1's choices by construction — only how an
item's value is obtained may differ.

Algorithm 1's safety caps (``MAX_SUBSET_CHILDREN`` per-parent subsets,
``MAX_ROUNDS`` greedy passes) no longer drop work silently: hitting one
marks the :class:`SelectionResult` as truncated, records which cap
fired, and raises a :class:`PlanTruncationWarning`; the session mirrors
it into the ``plan.truncated`` metric.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from itertools import combinations

from repro.core.aggregation import Aggregation, CountAggregation
from repro.core.canonical import pattern_id
from repro.core.costmodel import CostModel
from repro.core.equations import (
    Item,
    UnderivableError,
    item_of,
    normalize_item,
    solve_query,
)
from repro.core.generation import superpattern_closure
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED, SDag
from repro.observe.tracer import Tracer, timed_span
from repro.plan.rewrite import CombineStep, DecomposeStep, MeasureStep, RewritePlan
from repro.plan.rules import Decompose

__all__ = [
    "MAX_ROUNDS",
    "MAX_SUBSET_CHILDREN",
    "PlanTruncationWarning",
    "STRATEGIES",
    "SelectionResult",
    "legal_variants",
    "morph_greedy",
    "search_plan",
]

#: Safety cap on the per-parent child subsets Algorithm 1 examines.
MAX_SUBSET_CHILDREN = 12
#: Safety cap on greedy passes (each pass strictly reduces total cost).
MAX_ROUNDS = 64

#: The rewrite strategies :func:`search_plan` accepts.
STRATEGIES = ("auto", "direct", "morph", "decompose")

# Backwards-compatible alias: the cap originally lived in
# core/selection.py under this name.
_MAX_SUBSET_CHILDREN = MAX_SUBSET_CHILDREN


class PlanTruncationWarning(RuntimeWarning):
    """Raised as a warning when a planner safety cap dropped candidates."""


@dataclass
class SelectionResult:
    """Outcome of Algorithm 1 plus the conversion bookkeeping."""

    #: Items the matching engine must measure.
    measured: frozenset[Item]
    #: Query pattern -> item describing its own direct measurement.
    query_items: dict[Pattern, Item]
    #: Query pattern -> True when its result comes from alternatives.
    morphed: dict[Pattern, bool]
    #: Estimated cost of the selected set and of the unmorphed query set.
    estimated_cost: float = 0.0
    estimated_query_cost: float = 0.0
    rounds: int = 0
    #: All per-item costs considered (for introspection / Fig. 15e).
    item_costs: dict[Item, float] = field(default_factory=dict)
    #: True when a safety cap (subset-children or rounds) dropped work.
    truncated: bool = False
    #: Which caps fired, e.g. ``("subset-children:house", "rounds")``.
    truncations: tuple[str, ...] = ()


def legal_variants(aggregation: Aggregation) -> tuple[str, ...]:
    """Variants an alternative pattern may take under this aggregation."""
    if aggregation.invertible:
        return (EDGE_INDUCED, VERTEX_INDUCED)
    return (VERTEX_INDUCED,)


def morph_greedy(
    queries: list[Pattern],
    cost_model: CostModel,
    aggregation: Aggregation | None = None,
    sdag: SDag | None = None,
    margin: float = 0.6,
) -> SelectionResult:
    """Run Algorithm 1 and return the measured set plus metadata.

    ``margin`` is a conservatism factor: a replacement must be predicted
    to cost less than ``margin`` times what it saves. Cost estimates carry
    noise, and a marginal morph that turns out slower than the query is
    worse than no morph (the paper's §7.5 observation that several
    alternative sets underperform the query set).
    """
    aggregation = aggregation or CountAggregation()
    sdag = sdag or SDag.build(queries)
    variants = legal_variants(aggregation)
    truncations: list[str] = []

    # -- initializePatternCosts -------------------------------------------
    item_costs: dict[Item, float] = {}
    best_item: dict[int, Item] = {}
    for node in sdag:
        best = None
        for variant in (EDGE_INDUCED, VERTEX_INDUCED):
            item = normalize_item(node.skel, variant)
            if item in item_costs:
                continue
            item_costs[item] = cost_model.pattern_cost(*item)
        for variant in variants:
            item = normalize_item(node.skel, variant)
            if best is None or item_costs[item] < item_costs[best]:
                best = item
        assert best is not None
        best_item[node.id] = best
        node.cost = {
            EDGE_INDUCED: item_costs[normalize_item(node.skel, EDGE_INDUCED)],
            VERTEX_INDUCED: item_costs[normalize_item(node.skel, VERTEX_INDUCED)],
        }
        node.effective_cost = item_costs[best]
        node.best_variant = best[1]

    query_items = {q: item_of(q) for q in queries}
    morphable = {
        q: aggregation.invertible or query_items[q][1] == EDGE_INDUCED
        for q in queries
    }

    selected: set[Item] = {query_items[q] for q in queries}
    for item in selected:
        item_costs.setdefault(item, cost_model.pattern_cost(*item))
    initial_query_cost = sum(item_costs[query_items[q]] for q in queries)

    def closure_items(item: Item) -> frozenset[Item]:
        """The superpattern-closure measurement replacing ``item``.

        Every node of the item's closure (including its own) contributes
        its cheapest *legal* variant; the item's own slot thereby flips to
        whichever semantics the cost model prefers (Eq. 1 in either
        direction for counting, the V-union direction otherwise).
        """
        skel, _variant = item
        return frozenset(
            best_item[pattern_id(sup)] for sup in superpattern_closure(skel)
        )

    unmorphable_items = {query_items[q] for q in queries if not morphable[q]}

    # -- selectPatterns ------------------------------------------------------
    # The paper's greedy re-weights selected patterns to zero cost; here
    # that re-weighting is realized through set membership (an item already
    # in S costs nothing extra, a removed item saves its full cost), which
    # keeps the total measured cost strictly decreasing and guarantees
    # convergence.
    rounds = 0
    changed = True
    capped_parents: set[int] = set()
    while changed and rounds < MAX_ROUNDS:
        changed = False
        rounds += 1
        parent_ids: set[int] = set()
        for item in selected:
            for parent in sdag.parents(item[0]):
                parent_ids.add(parent.id)
        for pid in sorted(parent_ids):
            parent = sdag.node_by_id(pid)
            eligible = []
            for child_id in parent.children:
                child = sdag.node_by_id(child_id)
                for variant in (EDGE_INDUCED, VERTEX_INDUCED):
                    item = normalize_item(child.skel, variant)
                    if item in selected and item not in unmorphable_items:
                        eligible.append(item)
            eligible = sorted(set(eligible), key=repr)
            if len(eligible) > MAX_SUBSET_CHILDREN and pid not in capped_parents:
                capped_parents.add(pid)
                truncations.append(f"subset-children:node{pid}")
            eligible = eligible[:MAX_SUBSET_CHILDREN]
            for size in range(1, len(eligible) + 1):
                for subset in combinations(eligible, size):
                    subset_set = set(subset)
                    if not subset_set <= selected:
                        continue
                    replacement: set[Item] = set()
                    for item in subset:
                        replacement |= closure_items(item)
                    new_selected = (selected - subset_set) | replacement
                    if new_selected == selected:
                        continue
                    saved = sum(
                        item_costs[c] for c in subset_set if c not in replacement
                    )
                    added = sum(
                        item_costs[i] for i in replacement if i not in selected
                    )
                    if added < margin * saved:
                        selected = new_selected
                        changed = True
    if changed:
        truncations.append("rounds")

    if truncations:
        warnings.warn(
            "Algorithm 1 truncated its search "
            f"({', '.join(truncations)}); the selection is valid but may "
            "miss cheaper alternative sets",
            PlanTruncationWarning,
            stacklevel=2,
        )

    # -- prune to items actually used by conversions -------------------------
    measured = _prune(queries, query_items, selected, aggregation)

    morphed = {q: query_items[q] not in measured for q in queries}
    return SelectionResult(
        measured=frozenset(measured),
        query_items=query_items,
        morphed=morphed,
        estimated_cost=sum(item_costs.get(i, 0.0) for i in measured),
        estimated_query_cost=initial_query_cost,
        rounds=rounds,
        item_costs=item_costs,
        truncated=bool(truncations),
        truncations=tuple(truncations),
    )


def _prune(
    queries: list[Pattern],
    query_items: dict[Pattern, Item],
    selected: set[Item],
    aggregation: Aggregation,
) -> set[Item]:
    """Keep only the measured items some query's conversion consumes."""
    needed: set[Item] = set()
    for q in queries:
        item = query_items[q]
        if item in selected:
            needed.add(item)
            continue
        if aggregation.invertible:
            try:
                expression = solve_query(item, frozenset(selected))
            except UnderivableError:
                # Defensive: fall back to measuring the query directly.
                needed.add(item)
                continue
            needed.update(expression)
        else:
            skel, _variant = item
            for sup in superpattern_closure(skel):
                needed.add(normalize_item(sup, VERTEX_INDUCED))
    return needed


def _direct_selection(
    queries: list[Pattern],
    cost_model: CostModel,
    aggregation: Aggregation,
) -> SelectionResult:
    """The no-rewriting selection: measure each query as stated."""
    query_items = {q: item_of(q) for q in queries}
    item_costs = {
        item: cost_model.pattern_cost(*item)
        for item in set(query_items.values())
    }
    total = sum(item_costs[query_items[q]] for q in queries)
    return SelectionResult(
        measured=frozenset(query_items.values()),
        query_items=query_items,
        morphed={q: False for q in queries},
        estimated_cost=total,
        estimated_query_cost=total,
        rounds=0,
        item_costs=item_costs,
    )


def _combine_step(
    query: Pattern,
    selection: SelectionResult,
    aggregation: Aggregation,
) -> CombineStep:
    """Describe how ``query``'s answer is assembled from measurements."""
    item = selection.query_items[query]
    if item in selection.measured:
        return CombineStep(query=query, mode="identity", sources=(item,))
    if aggregation.invertible:
        try:
            expression = solve_query(item, selection.measured)
        except UnderivableError:
            expression = {}
        sources = tuple(sorted(expression, key=repr))
        return CombineStep(
            query=query,
            mode="solve",
            sources=sources,
            predicted_cost=float(len(sources)),
        )
    skel, _variant = item
    sources = tuple(
        sorted(
            {
                normalize_item(sup, VERTEX_INDUCED)
                for sup in superpattern_closure(skel)
            },
            key=repr,
        )
    )
    return CombineStep(
        query=query,
        mode="union",
        sources=sources,
        predicted_cost=float(len(sources)),
    )


def search_plan(
    queries: list[Pattern],
    cost_model: CostModel,
    aggregation: Aggregation | None = None,
    *,
    strategy: str = "auto",
    margin: float = 0.6,
    sdag: SDag | None = None,
    tracer: Tracer | None = None,
) -> RewritePlan:
    """Search the rewrite space and emit an executable plan.

    The :class:`~repro.plan.rules.SuperpatternMorph` move (Algorithm 1)
    decides the measured set; then ``DirectMatch`` and ``Decompose``
    compete per measured item. Under ``"auto"`` a decomposition must
    beat direct measurement by the same conservatism ``margin`` the
    greedy uses; ``"decompose"`` forces it wherever legal (testing /
    forcing the IEP path); ``"morph"`` and ``"direct"`` never decompose.

    Emits a ``selection`` span under the ambient tracer around the
    greedy, mirroring the session's historical span layout.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    aggregation = aggregation or CountAggregation()

    if strategy == "direct":
        selection = _direct_selection(queries, cost_model, aggregation)
    else:
        with timed_span(tracer, "selection", margin=margin) as span:
            selection = morph_greedy(
                queries, cost_model, aggregation, sdag=sdag, margin=margin
            )
        span.attributes.update(
            rounds=selection.rounds,
            measured=len(selection.measured),
            morphed_queries=sum(selection.morphed.values()),
        )

    decompose = Decompose()
    measure_steps: list[MeasureStep] = []
    decompose_steps: list[DecomposeStep] = []
    for item in sorted(selection.measured, key=repr):
        direct_cost = selection.item_costs.get(item)
        if direct_cost is None:
            direct_cost = cost_model.pattern_cost(*item)
        if strategy in ("auto", "decompose") and decompose.applies(
            item, aggregation
        ):
            best = decompose.best(item, cost_model)
            if best is not None:
                dec, dec_cost = best
                if strategy == "decompose" or dec_cost < margin * direct_cost:
                    decompose_steps.append(
                        DecomposeStep(
                            item=item,
                            decomposition=dec,
                            predicted_cost=dec_cost,
                            direct_cost=direct_cost,
                        )
                    )
                    continue
        measure_steps.append(MeasureStep(item=item, predicted_cost=direct_cost))

    combine_steps = tuple(
        _combine_step(q, selection, aggregation) for q in queries
    )
    predicted = sum(s.predicted_cost for s in measure_steps) + sum(
        s.predicted_cost for s in decompose_steps
    )
    return RewritePlan(
        strategy=strategy,
        selection=selection,
        measure_steps=tuple(measure_steps),
        decompose_steps=tuple(decompose_steps),
        combine_steps=combine_steps,
        predicted_cost=predicted,
    )
