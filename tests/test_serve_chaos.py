"""Service-level chaos harness: differential test against an oracle.

A real (socket-serving, threaded) :class:`MiningServer` runs with a
:class:`QueryFaultPlan` injecting crashes, hangs, slow responses,
corrupted frames and torn sockets — while a resilient client retries
with seeded-jitter backoff. The invariants:

* every response the client ultimately *completes* (``ok`` and not
  partial) is identical to the in-process oracle's answer for the same
  (graph, patterns) pair;
* the daemon never dies: it answers ``ping`` after the storm;
* no shared-memory segments leak (the autouse conftest probe).

Hung queries are reaped by the wall-budget sentinel, so this test uses
real (small) time budgets rather than a fake clock — the hang fault
spins until a deadline object expires, which only a running clock can
provide. Determinism still holds where it matters: the fault plan is a
pure function of (query index, attempt), client backoff is seeded with
jitter spread deterministically, and the oracle comparison is exact.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.atlas import TRIANGLE
from repro.engines.recovery import RetryPolicy
from repro.serve import Client, GraphRegistry, MiningServer, ServeRejected
from repro.testing.faults import QueryFaultPlan, QueryFaultSpec

WEDGE = repro.parse_pattern("a-b-c")
SQUARE = repro.parse_pattern("a-b-c-d-a")


class TestChaosDifferential:
    def test_storm_of_faults_converges_to_oracle_answers(self, small_graph):
        oracle = repro.run(small_graph, [TRIANGLE, WEDGE]).results
        chaos = QueryFaultPlan(
            {
                0: QueryFaultSpec("crash", times=1),
                1: QueryFaultSpec("torn-socket", times=1),
                2: QueryFaultSpec("corrupt", times=1),
                3: QueryFaultSpec("slow", times=1, seconds=0.05),
                4: QueryFaultSpec("hang", times=1),
            }
        )
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(
            registry=registry,
            workers=2,
            chaos=chaos,
            wall_budget_s=0.4,
            sample_interval=0.05,
            breaker_threshold=10,  # the breaker is not under test here
        ) as server:
            client = Client(
                port=server.port,
                client_id="chaos",
                timeout=30.0,
                retry=RetryPolicy(
                    max_retries=3, backoff_seconds=0.01, jitter=0.25, seed=0
                ),
            )
            completed = {}
            partials = []
            for index in range(6):
                pattern = TRIANGLE if index % 2 == 0 else WEDGE
                result = client.run(
                    "small",
                    [pattern],
                    chaos_index=index,
                    use_result_cache=False,
                )
                if result.partial:
                    partials.append((index, result))
                else:
                    completed[index] = (pattern, result)

            # Differential invariant: completed answers == oracle, exactly.
            assert len(completed) >= 5  # crash/torn/corrupt/slow all recover
            for index, (pattern, result) in completed.items():
                assert result.results == {pattern: oracle[pattern]}, (
                    f"query {index} diverged from oracle"
                )

            # The hang (index 4) was reaped by the wall-budget sentinel,
            # not left to wedge a worker forever.
            for index, result in partials:
                assert index == 4
                assert result.sentinel == "wall-budget"
                assert result.coverage < 1.0

            # Torn-socket / corrupt retries replayed the stored response
            # instead of recomputing (idempotency keys from the client).
            stats = client.stats()
            assert stats["metrics"].get("serve.idempotent.replays", 0) >= 1

            # The daemon survived the storm.
            assert client.ping()
            assert stats["service"]["state"] == "accepting"

    def test_crash_exhausting_retries_surfaces_typed_error(self, small_graph):
        """A fault deeper than the retry budget is reported, not hidden."""
        chaos = QueryFaultPlan({0: QueryFaultSpec("crash", times=None)})
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(
            registry=registry, workers=2, chaos=chaos, breaker_threshold=100
        ) as server:
            client = Client(
                port=server.port,
                retry=RetryPolicy(
                    max_retries=2, backoff_seconds=0.01, jitter=0.0
                ),
            )
            with pytest.raises(RuntimeError, match="WorkerCrashError"):
                client.run("small", [TRIANGLE], chaos_index=0)
            assert client.ping()

    def test_sustained_crashes_trip_the_breaker_for_the_cell(self, small_graph):
        chaos = QueryFaultPlan(
            {i: QueryFaultSpec("crash", times=None) for i in range(3)}
        )
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(
            registry=registry,
            workers=2,
            chaos=chaos,
            breaker_threshold=3,
            breaker_reset_s=60.0,
        ) as server:
            client = Client(port=server.port)  # no retries: count each hit
            for index in range(3):
                with pytest.raises(RuntimeError, match="WorkerCrashError"):
                    client.run("small", [TRIANGLE], chaos_index=index)
            with pytest.raises(ServeRejected) as excinfo:
                client.run("small", [TRIANGLE])
            assert excinfo.value.verdict == "rejected:circuit-open"
            assert excinfo.value.retry_after_s is not None
            stats = client.stats()
            assert stats["breakers"]["small/peregrine"]["state"] == "open"


class TestFaultPlanDeterminism:
    def test_random_plan_is_a_pure_function_of_seed(self):
        plans = [
            QueryFaultPlan.random(num_queries=40, seed=7, p_fault=0.5)
            for _ in range(2)
        ]
        specs = [
            {
                index: (spec.kind, spec.times, spec.seconds, spec.delta)
                for index, spec in plan.specs.items()
            }
            for plan in plans
        ]
        assert specs[0] == specs[1]
        assert specs[0]  # p=0.5 over 40 queries: some faults exist
        other = QueryFaultPlan.random(num_queries=40, seed=8, p_fault=0.5)
        assert specs[0] != {
            index: (s.kind, s.times, s.seconds, s.delta)
            for index, s in other.specs.items()
        }

    def test_begin_burns_attempts_per_query_independently(self):
        plan = QueryFaultPlan(
            {0: QueryFaultSpec("crash", times=2), 1: QueryFaultSpec("slow")}
        )
        spec, attempt = plan.begin(0)
        assert spec is not None and spec.kind == "crash" and attempt == 0
        spec, attempt = plan.begin(0)
        assert spec is not None and attempt == 1
        spec, _attempt = plan.begin(0)
        assert spec is None  # budget of 2 exhausted
        spec, attempt = plan.begin(1)
        assert spec is not None and spec.kind == "slow" and attempt == 0
        assert plan.begin(None) == (None, 0)  # unindexed queries never fault
        assert plan.begin(99) == (None, 0)

    def test_differential_square_counts_with_random_plan(self, small_graph):
        """Seeded random chaos over a second pattern family still
        converges to the oracle for everything that completes."""
        oracle = repro.run(small_graph, [SQUARE]).results
        chaos = QueryFaultPlan.random(
            num_queries=4, seed=3, p_fault=0.6, kinds=("crash", "slow")
        )
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(
            registry=registry, workers=2, chaos=chaos, breaker_threshold=50
        ) as server:
            client = Client(
                port=server.port,
                retry=RetryPolicy(
                    max_retries=3, backoff_seconds=0.01, jitter=0.0
                ),
            )
            for index in range(4):
                result = client.run(
                    "small",
                    [SQUARE],
                    chaos_index=index,
                    use_result_cache=False,
                )
                assert not result.partial
                assert result.results == {SQUARE: oracle[SQUARE]}
