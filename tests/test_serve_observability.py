"""Live observability of the resident daemon (PR 9).

Five layers, innermost first: the streaming histogram's fixed-boundary
bucketing, quantiles and merges are exact on constructed inputs; the
window gauge and the scheduler's continuously-sampled queue depth obey
reset-on-read window semantics under an injected clock; per-query
trace propagation stamps the server-minted ``query_id`` into every
span (worker spans included, via ``Tracer.adopt``); the flight
recorder retains anomalies across ring eviction and dumps valid
JSONL/Chrome traces; and the dict-level server's versioned ``stats``
snapshot validates, with a forced-slow query (measured ≫ k× predicted
cost) landing in the flight recorder and its dumped trace passing
``validate_nesting``.
"""

from __future__ import annotations

import io
import json
import math

import pytest

import repro
from repro.core.atlas import TRIANGLE, motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession
from repro.observe import (
    MetricsRegistry,
    ProgressReporter,
    RunTrace,
    Span,
    StreamingHistogram,
    Tracer,
    WindowGauge,
    load_trace,
    write_chrome_trace,
)
from repro.options import RunOptions
from repro.serve import (
    FlightRecord,
    FlightRecorder,
    GraphRegistry,
    MiningServer,
    Query,
    QueryScheduler,
    TopDashboard,
    validate_stats,
)


def tri_text() -> str:
    return repro.format_pattern(TRIANGLE)


class FakeClock:
    """Deterministic monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# StreamingHistogram


class TestStreamingHistogram:
    def test_single_value_pins_every_quantile(self):
        hist = StreamingHistogram()
        hist.record(0.125)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.125)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == pytest.approx(0.125)

    def test_quantiles_bounded_by_bucket_resolution(self):
        hist = StreamingHistogram()
        values = [10 ** (-5 + 7 * i / 999) for i in range(1000)]
        for v in values:
            hist.record(v)
        values.sort()
        for q in (0.5, 0.9, 0.99):
            exact = values[int(q * len(values)) - 1]
            approx = hist.quantile(q)
            # One bucket spans a factor of 10**(1/10) ≈ 1.26.
            assert exact / 1.3 <= approx <= exact * 1.3

    def test_under_and_overflow_are_retained(self):
        hist = StreamingHistogram(lo=1e-3, hi=1e3)
        hist.record(1e-9)
        hist.record(1e9)
        assert hist.count == 2
        assert hist.min == pytest.approx(1e-9)
        assert hist.max == pytest.approx(1e9)
        # Quantiles stay clamped to the observed extremes.
        assert hist.quantile(0.0) >= 1e-9
        assert hist.quantile(1.0) <= 1e9

    def test_merge_equals_single_feed(self):
        a, b, both = (StreamingHistogram() for _ in range(3))
        xs = [0.001 * (i + 1) for i in range(50)]
        ys = [0.01 * (i + 1) for i in range(50)]
        for x in xs:
            a.record(x)
            both.record(x)
        for y in ys:
            b.record(y)
            both.record(y)
        a.merge(b)
        assert a.count == both.count == 100
        assert a.total == pytest.approx(both.total)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == pytest.approx(both.quantile(q))

    def test_merge_rejects_layout_mismatch(self):
        a = StreamingHistogram()
        b = StreamingHistogram(buckets_per_decade=5)
        with pytest.raises(ValueError, match="bucket layouts"):
            a.merge(b)

    def test_json_round_trip(self):
        hist = StreamingHistogram()
        for i in range(100):
            hist.record(0.0001 * (i + 1))
        clone = StreamingHistogram.from_json(hist.to_json())
        assert clone.count == hist.count
        assert clone.quantile(0.5) == pytest.approx(hist.quantile(0.5))
        assert clone.snapshot() == hist.snapshot()

    def test_empty_snapshot_is_degenerate_but_valid(self):
        hist = StreamingHistogram()
        assert hist.snapshot() == {"count": 0, "sum": 0.0}
        assert hist.quantile(0.5) == 0.0

    def test_record_is_allocation_free_of_bucket_growth(self):
        hist = StreamingHistogram()
        buckets_before = len(hist._counts)
        for i in range(1000):
            hist.record(10.0 ** ((i % 200) / 10 - 10))
        assert len(hist._counts) == buckets_before


class TestWindowGauge:
    def test_envelope_and_reset_on_read(self):
        gauge = WindowGauge()
        for depth in (1, 4, 2, 0):
            gauge.record(depth)
        window = gauge.read()
        assert window == {"last": 0.0, "min": 0.0, "max": 4.0, "samples": 4}
        # The next window is seeded with the last value.
        window = gauge.read()
        assert window == {"last": 0.0, "min": 0.0, "max": 0.0, "samples": 0}
        gauge.record(7)
        assert gauge.read()["max"] == 7.0

    def test_unread_window_reports_nothing(self):
        assert WindowGauge().read() == {
            "last": None,
            "min": None,
            "max": None,
            "samples": 0,
        }


class TestMetricsRegistryHistograms:
    def test_observe_and_merge_fold_distributions(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.01, 0.02, 0.03):
            a.observe("lat", v)
        for v in (0.04, 0.05):
            b.observe("lat", v)
        a.merge(b)
        assert a.histogram("lat").count == 5
        assert a.histogram_snapshots()["lat"]["max"] == pytest.approx(0.05)

    def test_snapshot_stays_scalar_only(self):
        registry = MetricsRegistry()
        registry.add("queries", 3)
        registry.observe("lat", 0.5)
        registry.sample_window("depth", 2)
        snap = registry.snapshot()
        assert snap["queries"] == 3
        assert "lat" not in snap
        # The window's companion gauge keeps the flat view current.
        assert snap["depth"] == 2
        assert "lat" in registry and len(registry) == 3


# ---------------------------------------------------------------------------
# Satellite 1: continuously-sampled queue depth


class TestQueueDepthWindow:
    def test_depth_window_sees_transient_peak(self):
        clock = FakeClock()
        scheduler = QueryScheduler(clock=clock)
        queries = [Query({"op": "run"}, client=f"c{i}") for i in range(3)]
        for query in queries:
            assert scheduler.submit(query) == "accepted"
            clock.advance(0.1)
        while scheduler.next_query() is not None:
            pass
        window = scheduler.metrics.window("serve.queue.depth").read()
        # Admission-time gauging alone would report only the final 0.
        assert window["max"] == 3.0
        assert window["min"] == 0.0
        assert window["last"] == 0.0
        assert window["samples"] == 6  # 3 submits + 3 pops
        # Reset-on-read: the next window starts fresh at the last value.
        assert scheduler.metrics.window("serve.queue.depth").read()["samples"] == 0
        # The plain gauge still answers for legacy readers.
        assert scheduler.metrics.value("serve.queue.depth") == 0

    def test_time_based_sampling_between_transitions(self):
        clock = FakeClock()
        scheduler = QueryScheduler(clock=clock)
        scheduler.submit(Query({"op": "run"}))
        scheduler.metrics.window("serve.queue.depth").read()
        assert scheduler.sample_depth() == 1
        window = scheduler.metrics.window("serve.queue.depth").read()
        assert window["samples"] == 1 and window["last"] == 1.0

    def test_scheduler_stamps_query_timestamps(self):
        clock = FakeClock()
        scheduler = QueryScheduler(clock=clock)
        query = Query({"op": "run"}, query_id="q-000042")
        clock.advance(5.0)
        scheduler.submit(query)
        assert query.submitted_at == 5.0
        clock.advance(2.5)
        assert scheduler.run_next(lambda q: {"ok": True}) is True
        assert query.started_at == 7.5
        assert query.finished_at == 7.5
        assert query.started_at - query.submitted_at == pytest.approx(2.5)


# ---------------------------------------------------------------------------
# Per-query trace propagation


class TestTracerTags:
    def test_tags_stamp_every_span(self):
        tracer = Tracer(tags={"query_id": "q-000007"})
        with tracer.span("serve.query"):
            with tracer.span("match", item="TT"):
                pass
        assert all(s.attributes["query_id"] == "q-000007" for s in tracer.spans)
        # Explicit attributes win over tags on collision.
        with tracer.span("odd", query_id="override"):
            pass
        assert tracer.spans[-1].attributes["query_id"] == "override"

    def test_adopted_worker_spans_inherit_tags(self):
        worker = Tracer()
        with worker.span("shard", window=(0, 10)):
            with worker.span("kernel"):
                pass
        home = Tracer(tags={"query_id": "q-000009"})
        with home.span("match"):
            home.adopt(list(worker.spans))
        adopted = [s for s in home.spans if s.name in ("shard", "kernel")]
        assert len(adopted) == 2
        assert all(s.attributes["query_id"] == "q-000009" for s in adopted)
        # Worker-recorded attributes survive the stamp.
        assert next(s for s in adopted if s.name == "shard").attributes[
            "window"
        ] == (0, 10)


# ---------------------------------------------------------------------------
# Satellite 3: Chrome-trace export of adopted worker spans


class TestChromeExportOfAdoptedSpans:
    def _adopted_trace(self) -> RunTrace:
        worker = Tracer()
        with worker.span("shard", shard=0):
            with worker.span("kernel"):
                pass
        # A second worker whose clock domain is wildly skewed: its
        # intervals land far outside the parent window and must be
        # clamped on adoption.
        skewed = [
            Span(span_id=1, parent_id=None, name="shard", start=1e9, end=1e9 + 5),
            Span(span_id=2, parent_id=1, name="kernel", start=1e9 + 1, end=1e9 + 2),
        ]
        home = Tracer(tags={"query_id": "q-000001"})
        with home.span("run"):
            with home.span("match"):
                home.adopt(list(worker.spans))
                home.adopt(skewed)
        return RunTrace.from_tracer(home, query_id="q-000001")

    def test_adopted_spans_export_valid_trace_events(self, tmp_path):
        trace = self._adopted_trace()
        trace.validate_nesting()
        path = tmp_path / "adopted.chrome.json"
        write_chrome_trace(trace, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {e["name"] for e in events} >= {"run", "match", "shard", "kernel"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert math.isfinite(event["ts"]) and math.isfinite(event["dur"])
        # Re-parented/clamped children stay inside their parent's
        # [ts, ts+dur] interval — the "non-overlapping" contract a
        # flame-graph viewer needs to nest the events.
        by_name = {e["name"]: e for e in events if e["name"] in ("run", "match")}
        run_lo = by_name["run"]["ts"]
        run_hi = run_lo + by_name["run"]["dur"]
        slack = 1.0  # µs
        for event in events:
            assert event["ts"] >= run_lo - slack
            assert event["ts"] + event["dur"] <= run_hi + slack
        # The clamped skewed shard collapsed into the parent window
        # instead of stretching the timeline to 1e9 seconds.
        assert all(e["ts"] + e["dur"] < 60e6 for e in events)
        assert all(
            e["args"]["query_id"] == "q-000001"
            for e in events
            if e["name"] in ("shard", "kernel")
        )


# ---------------------------------------------------------------------------
# Satellite 2: progress line terminated on a faulted run


class TestProgressFaultTermination:
    def test_faulted_run_terminates_progress_line(self, small_graph):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)

        def boom(_query, _match):
            raise RuntimeError("boom")

        session = MorphingSession(
            PeregrineEngine(), enabled=False, progress=reporter
        )
        with pytest.raises(RuntimeError, match="boom"):
            session.run_streaming(small_graph, [TRIANGLE], boom)
        out = stream.getvalue()
        assert "\r" in out  # a line was mid-render when the run died
        assert out.endswith("\n")  # ...and was terminated in the finally

    def test_clean_run_emits_exactly_one_newline(self, small_graph):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        session = MorphingSession(
            PeregrineEngine(), enabled=False, progress=reporter
        )
        session.run(small_graph, [TRIANGLE])
        out = stream.getvalue()
        assert out.endswith("\n") and out.count("\n") == 1

    def test_close_is_idempotent_and_silent_after_finish(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        reporter.start([("a", 1.0)])
        reporter.item_finished("a", 0.1)
        reporter.finish()
        length = len(stream.getvalue())
        reporter.close()
        reporter.close()
        assert len(stream.getvalue()) == length

    def test_close_without_stream_is_safe(self):
        reporter = ProgressReporter(stream=None)
        reporter.start([("a", 1.0)])
        reporter.close()  # must not raise


# ---------------------------------------------------------------------------
# Flight recorder


def _record(query_id: str, status: str = "ok", **kwargs) -> FlightRecord:
    defaults = dict(
        client="c", graph="g", engine="peregrine", patterns=["a-b"]
    )
    defaults.update(kwargs)
    return FlightRecord(query_id=query_id, status=status, **defaults)


class TestFlightRecorder:
    def test_ring_evicts_but_anomalies_survive(self):
        recorder = FlightRecorder(capacity=4, anomaly_capacity=8)
        recorder.record(_record("q-000001", status="error", error="boom"))
        for i in range(2, 12):
            recorder.record(_record(f"q-{i:06d}"))
        assert len(recorder) == 4  # ring holds only the most recent
        assert recorder.find("q-000001") is not None  # anomaly survived
        occupancy = recorder.occupancy()
        assert occupancy["recorded"] == 11
        assert occupancy["recent"] == 4 and occupancy["anomalies"] == 1

    def test_slow_classification_uses_cost_model(self):
        recorder = FlightRecorder(slow_factor=4.0)
        fast = recorder.record(
            _record("q-000001", predicted_seconds=0.1, measured_seconds=0.2)
        )
        slow = recorder.record(
            _record("q-000002", predicted_seconds=0.1, measured_seconds=0.9)
        )
        unpredicted = recorder.record(_record("q-000003"))
        assert not fast.slow and fast.cost_ratio == pytest.approx(2.0)
        assert slow.slow and slow.anomalous
        assert slow.cost_ratio == pytest.approx(9.0)
        assert unpredicted.cost_ratio is None and not unpredicted.slow
        assert [r.query_id for r in recorder.anomalies()] == ["q-000002"]

    def test_partial_status_is_anomalous(self):
        recorder = FlightRecorder()
        record = recorder.record(_record("q-000001", status="partial"))
        assert record.anomalous and recorder.anomalies() == [record]

    def test_dump_writes_traces_and_index(self, tmp_path):
        tracer = Tracer(tags={"query_id": "q-000001"})
        with tracer.span("serve.query"):
            pass
        recorder = FlightRecorder()
        recorder.record(
            _record("q-000001", trace=RunTrace.from_tracer(tracer))
        )
        recorder.record(_record("q-000002", cached=True))  # no trace
        files = recorder.dump(str(tmp_path))
        names = {f.rsplit("/", 1)[-1] for f in files}
        assert names == {
            "q-000001.trace.jsonl",
            "q-000001.chrome.json",
            "index.json",
        }
        index = json.loads((tmp_path / "index.json").read_text())
        by_id = {r["query_id"]: r for r in index["records"]}
        assert by_id["q-000001"]["has_trace"]
        assert not by_id["q-000002"]["has_trace"]
        reloaded = load_trace(tmp_path / "q-000001.trace.jsonl")
        reloaded.validate_nesting()
        assert reloaded.spans[0].attributes["query_id"] == "q-000001"


# ---------------------------------------------------------------------------
# Dict-level server: stats schema, query ids, slow queries, dump op


@pytest.fixture()
def server(small_graph):
    """Threadless dict-level server over ``small_graph`` (no sockets)."""
    registry = GraphRegistry(share=False)
    registry.add("small", small_graph)
    server = MiningServer(registry=registry)
    yield server
    server.close()


class TestServerObservability:
    def test_stats_snapshot_validates_with_live_quantiles(self, server):
        patterns = [repro.format_pattern(p) for p in motif_patterns(3)]
        for engine in ("peregrine", "graphpi"):
            for text in patterns:
                response = server.handle(
                    {
                        "op": "run",
                        "graph": "small",
                        "patterns": [text],
                        "options": {"engine": engine},
                        "use_result_cache": False,
                    }
                )
                assert response["ok"]
        stats = validate_stats(server.handle({"op": "stats"}))
        total = stats["histograms"]["serve.latency.total"]
        assert total["count"] >= 4
        assert 0 < total["p50"] <= total["p99"] <= total["max"]
        assert stats["histograms"]["serve.latency.queue_wait"]["count"] >= 4
        assert stats["histograms"]["serve.latency.first_result"]["count"] >= 4
        # Per-engine stage distributions exist for both engines driven.
        for engine in ("peregrine", "graphpi"):
            for stage in ("plan", "match", "convert"):
                assert f"serve.stage.{stage}.{engine}" in stats["histograms"]
        assert stats["flight"]["recent"] == total["count"]

    def test_every_response_carries_a_fresh_query_id(self, server):
        ids = set()
        for _ in range(3):
            response = server.handle(
                {"op": "run", "graph": "small", "patterns": [tri_text()]}
            )
            assert response["ok"]
            ids.add(response["query_id"])
        assert len(ids) == 3
        # The flight-recorded trace carries the same id on every span.
        record = server.flight.find(sorted(ids)[0])
        assert record is not None and record.trace is not None
        assert all(
            s.attributes.get("query_id") == record.query_id
            for s in record.trace.spans
        )

    def test_rejected_query_still_gets_an_id(self, small_graph):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        from repro.serve import AdmissionPolicy

        server = MiningServer(
            registry=registry,
            policy=AdmissionPolicy(max_queue_depth=1),
        )
        try:
            # Pin a placeholder in the queue so the next admission sees
            # it full (the threadless server drains synchronously, so
            # the queue can never fill up through handle() alone).
            server.scheduler.submit(Query({"op": "noop"}, client="pin"))
            response = server.handle(
                {"op": "run", "graph": "small", "patterns": [tri_text()]}
            )
            assert not response["ok"]
            assert response["admission"] == "rejected:queue-full"
            assert response["query_id"].startswith("q-")
        finally:
            server.close()

    def test_forced_slow_query_lands_in_flight_recorder(
        self, small_graph, tmp_path
    ):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        # A threshold this aggressive makes every real measurement
        # "slow": measured seconds always exceed 1e-9 x predicted.
        server = MiningServer(registry=registry, slow_factor=1e-9)
        try:
            response = server.handle(
                {
                    "op": "run",
                    "graph": "small",
                    "patterns": [tri_text()],
                    "use_result_cache": False,
                }
            )
            assert response["ok"]
            anomalies = server.flight.anomalies()
            assert anomalies, "slow query was not retained"
            record = anomalies[-1]
            assert record.slow and record.query_id == response["query_id"]
            assert record.predicted_seconds and record.predicted_seconds > 0
            assert record.cost_ratio > 1.0
            assert server.metrics.value("serve.slow_queries") >= 1
            # Its dumped Chrome trace is a valid nested flame graph.
            dump = server.handle({"op": "dump", "dir": str(tmp_path)})
            assert dump["ok"]
            trace = load_trace(tmp_path / f"{record.query_id}.trace.jsonl")
            trace.validate_nesting()
            chrome = json.loads(
                (tmp_path / f"{record.query_id}.chrome.json").read_text()
            )
            assert chrome["traceEvents"]
            stats = validate_stats(server.handle({"op": "stats"}))
            assert stats["flight"]["anomalies"] >= 1
            assert stats["flight"]["recent_anomalies"][-1]["slow"]
        finally:
            server.close()

    def test_failed_query_is_retained_as_error(self, server, monkeypatch):
        def explode(self, *args, **kwargs):
            raise RuntimeError("engine caught fire")

        monkeypatch.setattr(
            "repro.serve.server.MorphingSession.run", explode
        )
        response = server.handle(
            {"op": "run", "graph": "small", "patterns": [tri_text()]}
        )
        assert not response["ok"]
        assert "engine caught fire" in response["error"]
        assert response["query_id"].startswith("q-")
        anomalies = server.flight.anomalies()
        assert anomalies and anomalies[-1].status == "error"
        record = anomalies[-1]
        assert record.query_id == response["query_id"]
        assert record.error and "engine caught fire" in record.error
        # The partial trace up to the failure point is retained too.
        assert record.trace is not None

    def test_health_op_is_cheap_and_truthful(self, server):
        server.handle({"op": "run", "graph": "small", "patterns": [tri_text()]})
        health = server.handle({"op": "health"})
        assert health["ok"] and health["status"] == "ok"
        assert health["queries"] == 1
        assert health["queue_depth"] == 0

    def test_cache_hit_observes_latency_but_skips_stage_histograms(self, server):
        request = {"op": "run", "graph": "small", "patterns": [tri_text()]}
        server.handle(dict(request))
        before = server.metrics.histogram("serve.stage.match.peregrine").count
        response = server.handle(dict(request))
        assert response["cached"]
        assert (
            server.metrics.histogram("serve.stage.match.peregrine").count
            == before
        )
        assert server.metrics.histogram("serve.latency.total").count == 2
        hit_record = server.flight.find(response["query_id"])
        assert hit_record is not None and hit_record.cached
        assert hit_record.trace is None

    def test_validate_stats_rejects_a_broken_snapshot(self, server):
        stats = server.handle({"op": "stats"})
        del stats["histograms"]
        stats["schema_version"] = 1
        with pytest.raises(ValueError, match="histograms"):
            validate_stats(stats)


# ---------------------------------------------------------------------------
# repro top


class _FakeStatsClient:
    """Stands in for :class:`repro.serve.Client` under the dashboard."""

    host, port = "127.0.0.1", 7071

    def __init__(self, snapshots):
        self.snapshots = list(snapshots)
        self.calls = 0

    def stats(self):
        self.calls += 1
        return self.snapshots[min(self.calls - 1, len(self.snapshots) - 1)]


def _stats(queries: float, uptime: float, **extra) -> dict:
    base = {
        "ok": True,
        "schema_version": 2,
        "metrics": {"serve.queries": queries, "serve.slow_queries": 1},
        "histograms": {
            "serve.latency.total": {
                "count": queries,
                "p50": 0.012,
                "p90": 0.040,
                "p99": 0.110,
                "max": 0.200,
            },
            "serve.stage.match.peregrine": {"count": queries, "p50": 0.010},
        },
        "queue": {"last": 1, "min": 0, "max": 3, "samples": 9},
        "scheduler": {"depth": 1},
        "graphs": ["mico"],
        "result_cache_entries": 2,
        "plan_cache": {"hits": 5, "misses": 2},
        "flight": {
            "recent": 4,
            "capacity": 64,
            "anomalies": 1,
            "anomaly_capacity": 32,
            "slow_factor": 8.0,
            "recorded": 4,
            "recent_anomalies": [
                {
                    "query_id": "q-000003",
                    "engine": "peregrine",
                    "seconds": 0.45,
                    "status": "ok",
                    "slow": True,
                    "cost_ratio": 12.3,
                }
            ],
        },
        "uptime_seconds": uptime,
    }
    base.update(extra)
    return base


class TestTopDashboard:
    def test_frames_render_rates_between_polls(self):
        client = _FakeStatsClient([_stats(10, 10.0), _stats(40, 20.0)])
        stream = io.StringIO()
        slept = []
        dashboard = TopDashboard(
            client,
            interval=0.5,
            stream=stream,
            clock=FakeClock(),
            sleep=slept.append,
        )
        assert dashboard.run(iterations=2) == 2
        out = stream.getvalue()
        assert "repro top — 127.0.0.1:7071" in out
        # First frame: lifetime average; second: rate between polls.
        assert "(1.00/s)" in out
        assert "(3.00/s)" in out
        assert "p50" in out and "12.0ms" in out
        assert "q-000003" in out and "12.3x predicted" in out
        assert "queue 1 (min 0 / max 3, 9 samples)" in out
        assert slept == [0.5]  # throttled between the two frames

    def test_render_survives_empty_daemon(self):
        client = _FakeStatsClient(
            [
                {
                    "ok": True,
                    "schema_version": 2,
                    "metrics": {},
                    "histograms": {},
                    "queue": {"last": None, "min": None, "max": None, "samples": 0},
                    "scheduler": {"depth": 0},
                    "graphs": [],
                    "result_cache_entries": 0,
                    "plan_cache": {"hits": 0, "misses": 0},
                    "flight": {
                        "recent": 0,
                        "capacity": 64,
                        "anomalies": 0,
                        "anomaly_capacity": 32,
                        "slow_factor": 8.0,
                        "recorded": 0,
                        "recent_anomalies": [],
                    },
                    "uptime_seconds": 0.0,
                }
            ]
        )
        stream = io.StringIO()
        dashboard = TopDashboard(client, interval=1.0, stream=stream)
        frame = dashboard.tick()
        assert "(no samples)" in frame
        assert "queries 0" in frame
