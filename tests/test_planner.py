"""Rewrite-planner tests: the differential matrix and the plan machinery.

The heart is the strategy differential — every rewrite strategy
(``direct``, ``morph``, ``decompose``, ``auto``) must return results
byte-identical to the serial no-morphing baseline across all five
engines and all four aggregations, and identical to the brute-force
oracle where the oracle is feasible. The rest pins the planner's
contracts: Decompose legality, truncation surfacing, the plan cache,
graph fingerprints, and the cost-model calibration fit.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core import atlas
from repro.core.aggregation import (
    CountAggregation,
    ExistenceAggregation,
    MatchListAggregation,
    MNIAggregation,
)
from repro.core.costmodel import CostModel, GraphModel
from repro.core.equations import item_of
from repro.core.sdag import VERTEX_INDUCED
from repro.engines.base import EngineStats
from repro.morph.cache import PlanCache
from repro.morph.profiles import profile_for
from repro.plan import (
    Decompose,
    PlanTruncationWarning,
    STRATEGIES,
    decompose_count,
    find_decompositions,
    search_plan,
)
from repro.plan import search as search_mod

from .oracle import brute_force_count, brute_force_match_tuples
from .strategies import data_graphs

ENGINES = sorted(repro.ENGINES)
AGGREGATIONS = {
    "count": CountAggregation,
    "existence": ExistenceAggregation,
    "mni": MNIAggregation,
    "matchlist": MatchListAggregation,
}
MATRIX_PATTERNS = list(atlas.motif_patterns(4)) + [atlas.FIVE_STAR]


def _cost_model(graph, engine="peregrine"):
    return CostModel(GraphModel.from_graph(graph), profile_for(engine))


class TestDifferentialMatrix:
    """Every strategy == serial baseline, across engines × aggregations."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("agg_name", sorted(AGGREGATIONS))
    def test_strategies_match_baseline(self, tiny_graph, engine, agg_name):
        agg = AGGREGATIONS[agg_name]()
        baseline = repro.run(
            tiny_graph, MATRIX_PATTERNS, engine, aggregation=agg, morph=False
        )
        for strategy in STRATEGIES:
            got = repro.run(
                tiny_graph,
                MATRIX_PATTERNS,
                engine,
                aggregation=agg,
                strategy=strategy,
            )
            assert got.results == baseline.results, (engine, agg_name, strategy)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_counts_match_oracle(self, small_graph, strategy):
        result = repro.run(small_graph, MATRIX_PATTERNS, strategy=strategy)
        for pattern in MATRIX_PATTERNS:
            assert result.results[pattern] == brute_force_count(
                small_graph, pattern
            ), (strategy, pattern)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        graph=data_graphs(min_n=6, max_n=12),
        strategy=st.sampled_from(STRATEGIES),
    )
    def test_random_graphs_match_oracle(self, graph, strategy):
        patterns = [atlas.FOUR_PATH, atlas.FIVE_STAR]
        result = repro.run(graph, patterns, strategy=strategy)
        for pattern in patterns:
            assert result.results[pattern] == brute_force_count(graph, pattern)

    def test_unknown_strategy_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="strategy"):
            repro.run(tiny_graph, [atlas.FOUR_PATH], strategy="greedy")
        with pytest.raises(ValueError, match="strategy"):
            search_plan([atlas.FOUR_PATH], _cost_model(tiny_graph), strategy="x")


class TestDecomposeRule:
    def test_only_invertible_aggregations(self):
        rule = Decompose()
        item = item_of(atlas.FIVE_STAR)
        assert rule.applies(item, CountAggregation())
        for agg in (ExistenceAggregation(), MNIAggregation(), MatchListAggregation()):
            assert not rule.applies(item, agg)

    def test_only_edge_induced_items(self):
        rule = Decompose()
        v_item = (atlas.FIVE_STAR, VERTEX_INDUCED)
        assert not rule.applies(v_item, CountAggregation())

    def test_cliques_and_cycles_admit_no_split(self):
        assert find_decompositions(atlas.FOUR_CLIQUE) == ()
        # Both independent pairs of the 4-cycle leave a disconnected prefix.
        assert find_decompositions(atlas.FOUR_CYCLE) == ()

    def test_star_decompositions(self):
        decs = find_decompositions(atlas.FIVE_STAR)
        assert decs, "a star is the canonical decomposable pattern"
        assert {d.suffix_size for d in decs} == {2, 3, 4}
        for dec in decs:
            assert dec.prefix.is_connected
            assert dec.pattern_automorphisms == 24  # 4! leaf permutations

    def test_non_invertible_strategy_never_decomposes(self, tiny_graph):
        plan = search_plan(
            [atlas.FIVE_STAR],
            _cost_model(tiny_graph),
            MNIAggregation(),
            strategy="decompose",
        )
        assert plan.decompose_steps == ()

    @pytest.mark.parametrize(
        "pattern", [atlas.FOUR_PATH, atlas.FOUR_STAR, atlas.FIVE_STAR]
    )
    def test_every_decomposition_counts_exactly(self, tiny_graph, pattern):
        """Each legal split independently reproduces the oracle count."""
        expected = brute_force_count(tiny_graph, pattern)
        decs = find_decompositions(pattern)
        assert decs
        for dec in decs:
            stats = EngineStats()

            def stream(prefix, callback):
                for match in brute_force_match_tuples(tiny_graph, prefix):
                    callback(prefix, match)

            assert decompose_count(tiny_graph, dec, stream, stats) == expected


class TestAutoStrategy:
    def test_auto_reproduces_algorithm1_measured_set(self, small_graph):
        """The execution rule never changes *which* items are measured."""
        cm = _cost_model(small_graph)
        auto = search_plan(MATRIX_PATTERNS, cm, strategy="auto")
        morph = search_plan(MATRIX_PATTERNS, cm, strategy="morph")
        legacy = repro.select_alternative_patterns(MATRIX_PATTERNS, cm)
        assert auto.selection.measured == morph.selection.measured
        assert auto.selection.measured == legacy.measured
        assert auto.selection.morphed == legacy.morphed

    def test_auto_answers_five_star_by_decomposition(self, medium_graph):
        """Acceptance: a standing 5-vertex counting workload goes through
        a Decompose plan under ``auto``, with a differential proof."""
        auto = repro.run(medium_graph, [atlas.FIVE_STAR], strategy="auto")
        steps = [
            s
            for s in auto.plan.decompose_steps
            if s.item[0] == item_of(atlas.FIVE_STAR)[0]
        ]
        assert steps, "auto should decompose the 5-star on a dense graph"
        assert steps[0].predicted_cost < steps[0].direct_cost
        direct = repro.run(medium_graph, [atlas.FIVE_STAR], strategy="direct")
        assert auto.results == direct.results

    def test_plan_surfaces_on_result(self, tiny_graph):
        result = repro.run(tiny_graph, [atlas.FOUR_PATH])
        plan = result.plan
        assert plan is not None and plan.strategy == "auto"
        assert plan.measured == result.selection.measured
        for item in plan.measured:
            assert plan.step_for(item).item == item
        assert {c.query for c in plan.combine_steps} == {atlas.FOUR_PATH}
        assert "auto" in plan.describe()


class TestTruncationSurfacing:
    def test_caps_fire_loudly(self, small_graph, monkeypatch):
        monkeypatch.setattr(search_mod, "MAX_SUBSET_CHILDREN", 1)
        monkeypatch.setattr(search_mod, "MAX_ROUNDS", 1)
        cm = _cost_model(small_graph)
        with pytest.warns(PlanTruncationWarning):
            selection = search_mod.morph_greedy(MATRIX_PATTERNS, cm)
        assert selection.truncated
        assert any(t.startswith("subset-children:") for t in selection.truncations)

    def test_untruncated_by_default(self, small_graph):
        selection = search_mod.morph_greedy(
            MATRIX_PATTERNS, _cost_model(small_graph)
        )
        assert not selection.truncated
        assert selection.truncations == ()

    def test_session_emits_metric(self, tiny_graph, monkeypatch):
        monkeypatch.setattr(search_mod, "MAX_SUBSET_CHILDREN", 1)
        tracer = repro.Tracer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PlanTruncationWarning)
            result = repro.run(tiny_graph, MATRIX_PATTERNS, trace=tracer)
        assert result.trace.metrics.get("plan.truncated", 0) >= 1


class TestPlanCache:
    def test_hit_skips_search_and_counts(self, tiny_graph):
        cache = PlanCache()
        tracer = repro.Tracer()
        first = repro.run(
            tiny_graph, MATRIX_PATTERNS, plan_cache=cache, trace=tracer
        )
        assert len(cache) == 1
        assert cache.misses == 1 and cache.hits == 0
        assert tracer.metrics.snapshot()["plan.cache.miss"] == 1
        tracer2 = repro.Tracer()
        second = repro.run(
            tiny_graph, MATRIX_PATTERNS, plan_cache=cache, trace=tracer2
        )
        assert cache.hits == 1 and len(cache) == 1
        assert tracer2.metrics.snapshot()["plan.cache.hit"] == 1
        assert second.results == first.results
        assert second.plan is first.plan

    def test_key_discriminates(self, tiny_graph, small_graph):
        cache = PlanCache()
        repro.run(tiny_graph, MATRIX_PATTERNS, plan_cache=cache)
        repro.run(tiny_graph, MATRIX_PATTERNS, plan_cache=cache, strategy="direct")
        repro.run(tiny_graph, MATRIX_PATTERNS, plan_cache=cache, engine="graphpi")
        repro.run(small_graph, MATRIX_PATTERNS, plan_cache=cache)
        repro.run(tiny_graph, MATRIX_PATTERNS[:-1], plan_cache=cache)
        assert len(cache) == 5
        assert cache.hits == 0

    def test_clear(self, tiny_graph):
        cache = PlanCache()
        repro.run(tiny_graph, [atlas.FOUR_PATH], plan_cache=cache)
        cache.clear()
        assert len(cache) == 0


class TestGraphFingerprint:
    def test_stable_across_instances(self, tiny_graph):
        from repro.graph.datagraph import DataGraph

        clone = DataGraph(8, sorted(tiny_graph.edges()), name="other-name")
        assert clone.fingerprint == tiny_graph.fingerprint

    def test_sensitive_to_structure_and_labels(self, tiny_graph):
        from repro.graph.datagraph import DataGraph

        edges = sorted(tiny_graph.edges())
        more = DataGraph(8, edges + [(0, 7)])
        assert more.fingerprint != tiny_graph.fingerprint
        labeled = DataGraph(8, edges, labels=[0] * 8)
        assert labeled.fingerprint != tiny_graph.fingerprint


def _load_calibrate():
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "tools"
        / "calibrate_costmodel.py"
    )
    spec = importlib.util.spec_from_file_location("calibrate_costmodel", path)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: the tool's dataclass resolves annotations
    # through sys.modules[cls.__module__].
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestCalibrateTool:
    def _record(self, cost, seconds, **kw):
        from repro.observe import CostAuditRecord

        defaults = dict(
            item="X^E", pattern_id=1, variant="E", role="alternative"
        )
        defaults.update(kw)
        return CostAuditRecord(
            predicted_cost=cost, measured_seconds=seconds, **defaults
        )

    def test_fit_recovers_exact_proportionality(self):
        calib = _load_calibrate()
        audits = [self._record(c, 2e-6 * c) for c in (10.0, 55.0, 200.0, 900.0)]
        k, r2 = calib.fit_unit_seconds(audits)
        assert k == pytest.approx(2e-6)
        assert r2 == pytest.approx(1.0)

    def test_cached_and_summary_records_excluded(self):
        calib = _load_calibrate()
        audits = [
            self._record(10.0, 1.0),
            self._record(10.0, 99.0, cached=True),
            self._record(10.0, 99.0, role="selection", variant="*"),
            self._record(0.0, 1.0),
        ]
        assert calib.usable_audits(audits) == audits[:1]

    def test_degenerate_runs_flagged_not_fitted(self):
        calib = _load_calibrate()
        good = [self._record(c, 2e-6 * c) for c in (10.0, 50.0, 300.0)]
        tied = [self._record(10.0, s) for s in (1.0, 2.0, 3.0)]  # no rank info
        fits = calib.calibrate([("peregrine", good), ("peregrine", tied)])
        (fit,) = fits
        assert fit.records == len(good)
        assert fit.degenerate_runs == 1
        assert fit.unit_seconds == pytest.approx(2e-6)
        assert fit.rank_agreement == 1.0

    def test_end_to_end_on_stored_trace(self, small_graph, tmp_path, capsys):
        calib = _load_calibrate()
        trace_path = tmp_path / "run.jsonl"
        repro.run(small_graph, MATRIX_PATTERNS, trace=str(trace_path))
        assert calib.main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "peregrine" in out


class TestCliStrategy:
    def test_count_accepts_strategy_flag(self, capsys, tmp_path, small_graph):
        from repro.cli import main
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.edges"
        save_edge_list(small_graph, path)
        expected = brute_force_count(small_graph, atlas.FIVE_STAR)
        for strategy in ("direct", "decompose"):
            assert (
                main(
                    [
                        "count",
                        "--graph-file",
                        str(path),
                        "--pattern",
                        "5S",
                        "--strategy",
                        strategy,
                    ]
                )
                == 0
            )
            assert str(expected) in capsys.readouterr().out


class TestPlanTracing:
    def test_spans_and_rule_attribution(self, small_graph):
        tracer = repro.Tracer()
        result = repro.run(
            small_graph, [atlas.FIVE_STAR], strategy="decompose", trace=tracer
        )
        trace = result.trace
        (search,) = trace.find("plan.search")
        assert search.attributes["strategy"] == "decompose"
        assert search.attributes["decompose_steps"] >= 1
        rules = {s.attributes.get("rule") for s in trace.find("match.item")}
        assert "decompose" in rules
        assert trace.find("plan.step"), "combine steps are traced"
        audits = [a for a in trace.audits if a.extra.get("rule") == "decompose"]
        assert audits, "decomposed items audit the executed step's cost"
