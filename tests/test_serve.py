"""Tests for the resident mining service (:mod:`repro.serve`).

Four layers, innermost first: the tagged wire encoding round-trips
every aggregation value type exactly; the scheduler's admission
verdicts and priority ordering are deterministic (injectable clock, no
threads); the server's dict-level protocol serves cached results
byte-identical to cold ones and reports plan-cache hits on warm
repeats; and the full socket stack answers concurrent multi-client
query mixes identically to the serial in-process oracle, then shuts
down without leaking a shared-memory segment (the suite-wide autouse
probe enforces that part).
"""

from __future__ import annotations

import json
import threading

import pytest

import repro
from repro.core.atlas import TRIANGLE, motif_patterns
from repro.engines.peregrine.engine import PeregrineEngine
from repro.morph.session import MorphingSession
from repro.options import RunOptions
from repro.serve import (
    AdmissionPolicy,
    Client,
    GraphRegistry,
    MiningServer,
    Query,
    QueryScheduler,
    connect,
    decode_value,
    encode_value,
)


def tri_text() -> str:
    return repro.format_pattern(TRIANGLE)


class TestProtocolEncoding:
    @pytest.mark.parametrize(
        "value",
        [
            0,
            308,
            True,
            False,
            None,
            3.5,
            "text",
            [(0, 1, 2), (3, 4, 5)],                      # match list
            (frozenset({1, 2}), frozenset({3}), frozenset()),  # MNI table
            {"nested": [1, (2, 3)]},
        ],
    )
    def test_round_trip_is_exact(self, value):
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_types_distinguished(self):
        """Tuples, lists and frozensets survive as themselves."""
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert decode_value(encode_value([1, 2])) == [1, 2]
        assert isinstance(decode_value(encode_value(frozenset({1}))), frozenset)
        assert isinstance(decode_value(encode_value({1})), set)

    def test_encoding_is_construction_order_independent(self):
        """frozenset iteration order varies; the encoding must not."""
        a = frozenset([5, 1, 9, 3])
        b = frozenset([9, 3, 5, 1])
        assert json.dumps(encode_value(a)) == json.dumps(encode_value(b))

    def test_malformed_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_value({"t": "mystery", "v": []})
        with pytest.raises(ValueError):
            decode_value({"untagged": "dict"})

    def test_unencodable_object_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())


class TestGraphRegistry:
    def test_add_get_describe(self, small_graph):
        with GraphRegistry(share=False) as registry:
            registry.add("g", small_graph)
            assert registry.get("g").graph is small_graph
            (row,) = registry.describe()
            assert row["name"] == "g"
            assert row["vertices"] == small_graph.num_vertices
            assert row["shared"] is False

    def test_add_is_idempotent(self, small_graph):
        with GraphRegistry(share=False) as registry:
            first = registry.add("g", small_graph)
            assert registry.add("g", small_graph) is first
            assert len(registry) == 1

    def test_missing_graph_raises(self):
        with GraphRegistry(share=False) as registry:
            with pytest.raises(KeyError, match="not resident"):
                registry.get("nope")

    def test_unknown_name_raises(self):
        with GraphRegistry(share=False) as registry:
            with pytest.raises(KeyError, match="unknown graph"):
                registry.load("no-such-dataset-or-path")

    def test_load_dataset_and_dispose_segments(self):
        registry = GraphRegistry()
        resident = registry.load("mico")
        assert registry.load("MI") is not resident  # code vs name differ as keys
        registry.close()
        # autouse leak probe verifies the segments are gone


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestScheduler:
    def test_priority_ordering_fifo_within_level(self):
        scheduler = QueryScheduler()
        queries = [
            Query({"tag": "low"}, priority=0),
            Query({"tag": "high"}, priority=5),
            Query({"tag": "mid"}, priority=1),
            Query({"tag": "high2"}, priority=5),
        ]
        for query in queries:
            assert scheduler.submit(query) == "accepted"
        order = [scheduler.next_query().request["tag"] for _ in range(4)]
        assert order == ["high", "high2", "mid", "low"]

    def test_queue_full_rejection(self):
        scheduler = QueryScheduler(policy=AdmissionPolicy(max_queue_depth=2))
        assert scheduler.submit(Query({})) == "accepted"
        assert scheduler.submit(Query({})) == "accepted"
        assert scheduler.submit(Query({})) == "rejected:queue-full"
        assert scheduler.metrics.value("serve.admission.rejected.queue-full") == 1

    def test_per_client_limit(self):
        scheduler = QueryScheduler(policy=AdmissionPolicy(max_per_client=2))
        assert scheduler.submit(Query({}, client="a")) == "accepted"
        assert scheduler.submit(Query({}, client="a")) == "accepted"
        assert scheduler.submit(Query({}, client="a")) == "rejected:client-limit"
        assert scheduler.submit(Query({}, client="b")) == "accepted"

    def test_inflight_released_after_run(self):
        scheduler = QueryScheduler(policy=AdmissionPolicy(max_per_client=1))
        query = Query({}, client="a")
        assert scheduler.submit(query) == "accepted"
        assert scheduler.submit(Query({}, client="a")) == "rejected:client-limit"
        assert scheduler.run_next(lambda q: {"ok": True})
        assert scheduler.inflight("a") == 0
        assert scheduler.submit(Query({}, client="a")) == "accepted"

    def test_deadline_infeasible_at_submit_rejected(self):
        clock = FakeClock()
        scheduler = QueryScheduler(
            policy=AdmissionPolicy(estimated_service_seconds=1.0), clock=clock
        )
        for _ in range(3):
            assert scheduler.submit(Query({})) == "accepted"
        # 3 queued × ~1s each, but only 2s of deadline headroom: reject.
        hopeless = Query({}, deadline=scheduler.make_deadline(2.0))
        assert scheduler.submit(hopeless) == "rejected:deadline"
        feasible = Query({}, deadline=scheduler.make_deadline(10.0))
        assert scheduler.submit(feasible) == "accepted"

    def test_deadline_expired_while_queued_never_runs(self):
        clock = FakeClock()
        scheduler = QueryScheduler(clock=clock)
        query = Query({}, deadline=scheduler.make_deadline(1.0))
        assert scheduler.submit(query) == "accepted"
        clock.advance(2.0)
        executed = []
        assert not scheduler.run_next(lambda q: executed.append(q) or {"ok": True})
        assert executed == []
        assert query.response == {
            "ok": False,
            "error": "rejected:deadline",
            "admission": "rejected:deadline",
        }

    def test_execute_exception_becomes_error_response(self):
        scheduler = QueryScheduler()
        query = Query({})
        scheduler.submit(query)

        def boom(_query):
            raise RuntimeError("kaput")

        assert scheduler.run_next(boom)
        assert query.response == {"ok": False, "error": "RuntimeError: kaput"}

    def test_close_rejects_pending(self):
        scheduler = QueryScheduler()
        query = Query({})
        scheduler.submit(query)
        scheduler.close()
        assert query.response == {"ok": False, "error": "scheduler closed"}
        assert scheduler.depth == 0

    def test_depth_gauge_tracks_queue(self):
        scheduler = QueryScheduler()
        scheduler.submit(Query({}))
        scheduler.submit(Query({}))
        assert scheduler.metrics.value("serve.queue.depth") == 2
        scheduler.run_next(lambda q: {"ok": True})
        assert scheduler.metrics.value("serve.queue.depth") == 1


@pytest.fixture()
def server(small_graph):
    """Threadless dict-level server over ``small_graph`` (no sockets)."""
    registry = GraphRegistry(share=False)
    registry.add("small", small_graph)
    server = MiningServer(registry=registry)
    yield server
    server.close()


class TestServerProtocol:
    def test_ping_and_unknown_op(self, server):
        assert server.handle({"op": "ping"}) == {"ok": True, "pong": True}
        response = server.handle({"op": "transmogrify"})
        assert not response["ok"] and "unknown op" in response["error"]

    def test_run_counts_match_inprocess(self, server, small_graph):
        response = server.handle(
            {"op": "run", "graph": "small", "patterns": [tri_text()]}
        )
        assert response["ok"] and not response["cached"]
        oracle = repro.run(small_graph, [TRIANGLE])
        assert response["results"][tri_text()] == oracle.results[TRIANGLE]

    def test_unknown_graph_is_an_error_not_a_crash(self, server):
        response = server.handle(
            {"op": "run", "graph": "nope", "patterns": [tri_text()]}
        )
        assert not response["ok"] and "not resident" in response["error"]

    def test_bad_options_rejected_loudly(self, server):
        response = server.handle(
            {
                "op": "run",
                "graph": "small",
                "patterns": [tri_text()],
                "options": {"strategy": "greedy"},
            }
        )
        assert not response["ok"] and "unknown strategy" in response["error"]

    def test_result_cache_hit_is_byte_identical(self, server):
        request = {"op": "run", "graph": "small", "patterns": [tri_text()]}
        cold = server.handle(dict(request))
        warm = server.handle(dict(request))
        assert not cold["cached"] and warm["cached"]
        # Each submission gets its own daemon-minted id, even on a hit.
        assert cold["query_id"] != warm["query_id"]
        strip = lambda r: {
            k: v for k, v in r.items() if k not in ("cached", "query_id")
        }
        assert json.dumps(strip(warm), sort_keys=True) == json.dumps(
            strip(cold), sort_keys=True
        )
        assert server.metrics.value("serve.result_cache.hits") == 1

    def test_warm_repeat_hits_plan_cache(self, server):
        request = {
            "op": "run",
            "graph": "small",
            "patterns": [tri_text()],
            "use_result_cache": False,
        }
        cold = server.handle(dict(request))
        warm = server.handle(dict(request))
        assert cold["metrics"] == {"plan.cache.miss": 1}
        assert warm["metrics"] == {"plan.cache.hit": 1}
        assert warm["results"] == cold["results"]

    def test_cache_key_separates_options(self, server):
        base = {"op": "run", "graph": "small", "patterns": [tri_text()]}
        server.handle(dict(base))
        different = server.handle(
            {**base, "options": {"aggregation": "exists"}}
        )
        assert not different["cached"]
        assert different["results"][tri_text()] is True

    def test_stats_surface(self, server):
        server.handle({"op": "run", "graph": "small", "patterns": [tri_text()]})
        stats = server.handle({"op": "stats"})
        assert stats["ok"]
        assert stats["metrics"]["serve.queries"] == 1
        assert stats["metrics"]["serve.admission.accepted"] == 1
        assert stats["graphs"] == ["small"]
        assert stats["scheduler"]["depth"] == 0

    @pytest.mark.parametrize("aggregation", ["count", "mni", "matches", "exists"])
    def test_typed_results_round_trip(self, server, small_graph, aggregation):
        response = server.handle(
            {
                "op": "run",
                "graph": "small",
                "patterns": [tri_text()],
                "options": {"aggregation": aggregation},
            }
        )
        assert response["ok"]
        remote = decode_value(response["results"][tri_text()])
        oracle = repro.run(
            small_graph, [TRIANGLE], options=RunOptions(aggregation=aggregation)
        )
        assert remote == oracle.results[TRIANGLE]


class TestEngineSharingContract:
    def test_fresh_rejects_instances(self):
        with pytest.raises(TypeError, match="fresh engine"):
            repro.resolve_engine(PeregrineEngine(), fresh=True)

    def test_busy_instance_rejected(self):
        engine = PeregrineEngine()
        engine.busy = True
        with pytest.raises(ValueError, match="mid-run"):
            repro.resolve_engine(engine)

    def test_session_marks_engine_busy_and_clears(self, small_graph):
        engine = PeregrineEngine()
        session = MorphingSession(engine)
        assert engine.busy is False
        session.run(small_graph, [TRIANGLE])
        assert engine.busy is False  # cleared even though it was set mid-run

    def test_concurrent_session_reuse_raises(self, small_graph):
        engine = PeregrineEngine()
        engine.busy = True  # simulate another run in flight
        with pytest.raises(ValueError, match="mid-run"):
            MorphingSession(engine).run(small_graph, [TRIANGLE])
        engine.busy = False

    def test_busy_cleared_on_failure(self, small_graph):
        engine = PeregrineEngine()
        session = MorphingSession(engine)
        with pytest.raises(Exception):
            session.run(small_graph, ["not a pattern"])
        assert engine.busy is False


class TestSocketStack:
    def test_connect_run_and_shutdown(self, small_graph):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(registry=registry, workers=2) as server:
            client = connect(port=server.port)
            result = client.run("small", TRIANGLE)
            oracle = repro.run(small_graph, [TRIANGLE])
            assert result.results[TRIANGLE] == oracle.results[TRIANGLE]
            assert not result.partial

    def test_client_requires_bound_port(self):
        with pytest.raises(ValueError, match="port"):
            Client(port=0)

    def test_admission_rejection_surfaces_to_client(self, small_graph):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        server = MiningServer(
            registry=registry,
            policy=AdmissionPolicy(max_queue_depth=8, max_per_client=1),
            workers=0,  # nothing drains the queue behind the test's back
        )
        try:
            # Fill the per-client budget; with workers=0 it stays queued.
            blocker = Query({}, client="greedy")
            assert server.scheduler.submit(blocker) == "accepted"
            server.start()
            client = connect(port=server.port, client_id="greedy")
            with pytest.raises(RuntimeError, match="rejected:client-limit"):
                client.run("small", TRIANGLE)
        finally:
            server.close()

    def test_concurrent_clients_match_serial_oracle(self, small_graph):
        patterns = list(motif_patterns(3))
        workload = [
            ("peregrine", "count"),
            ("autozero", "count"),
            ("bigjoin", "exists"),
            ("peregrine", "mni"),
            ("autozero", "matches"),
            ("peregrine", "exists"),
        ]
        oracle = {
            spec: repro.run(
                small_graph,
                patterns,
                options=RunOptions(engine=spec[0], aggregation=spec[1]),
            ).results
            for spec in set(workload)
        }
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        failures = []
        with MiningServer(registry=registry, workers=3) as server:
            def one_client(index, spec):
                try:
                    client = Client(port=server.port, client_id=f"c{index}")
                    options = RunOptions(engine=spec[0], aggregation=spec[1])
                    result = client.run("small", patterns, options=options)
                    if result.results != oracle[spec]:
                        failures.append((spec, "results diverged from oracle"))
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append((spec, repr(exc)))

            threads = [
                threading.Thread(target=one_client, args=(i, spec))
                for i, spec in enumerate(workload)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stats = server.handle({"op": "stats"})
        assert not failures, failures
        assert stats["metrics"]["serve.admission.accepted"] == len(workload)

    def test_repeat_queries_cached_across_clients(self, small_graph):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(registry=registry, workers=2) as server:
            first = connect(port=server.port, client_id="a").run("small", TRIANGLE)
            second = connect(port=server.port, client_id="b").run("small", TRIANGLE)
            assert not first.cached and second.cached
            assert first.results == second.results

    def test_load_on_demand_over_socket(self):
        with MiningServer(registry=GraphRegistry(share=False)) as server:
            server.start()
            client = connect(port=server.port)
            description = client.load("mico")
            assert description["name"] == "mico"
            assert any(row["name"] == "mico" for row in client.graphs())
            result = client.run("mico", TRIANGLE)
            assert result.results[TRIANGLE] > 0
