"""Tests for alternative-pattern-set enumeration."""

from __future__ import annotations

import pytest

from repro.core import atlas
from repro.core.aggregation import MNIAggregation
from repro.core.alternatives import (
    enumerate_alternative_sets,
    query_options,
    space_size,
)
from repro.core.equations import evaluate, item_of, materialize, solve_query
from repro.core.sdag import VERTEX_INDUCED

from .oracle import brute_force_count


class TestQueryOptions:
    def test_four_cycle_option_count(self):
        """Closure {C4, C4C, 4CL}: 2 free nodes -> 4 assignments + direct,
        minus the duplicate where the assignment equals the direct set."""
        options = query_options(atlas.FOUR_CYCLE.vertex_induced())
        assert len(options) == 5
        assert frozenset({item_of(atlas.FOUR_CYCLE.vertex_induced())}) == options[0]

    def test_clique_has_single_option(self):
        options = query_options(atlas.FOUR_CLIQUE)
        assert len(options) == 1  # its closure is itself

    def test_options_all_distinct(self):
        options = query_options(atlas.FOUR_PATH.vertex_induced())
        assert len(options) == len(set(options))

    def test_mni_options(self):
        options = query_options(atlas.FOUR_STAR, MNIAggregation())
        assert len(options) == 2  # direct, or the all-V closure
        all_v = options[1]
        assert all(
            v == VERTEX_INDUCED or s.is_clique for s, v in all_v
        )


class TestEnumeration:
    def test_first_is_query_set(self):
        queries = [atlas.FOUR_CYCLE.vertex_induced()]
        first = next(enumerate_alternative_sets(queries))
        assert first == frozenset({item_of(queries[0])})

    def test_all_sets_valid_counts(self, tiny_graph):
        """Every enumerated set reconstructs the exact query count."""
        query = atlas.FOUR_CYCLE.vertex_induced()
        expected = brute_force_count(tiny_graph, query)
        for measured in enumerate_alternative_sets([query]):
            values = {
                item: brute_force_count(tiny_graph, materialize(item))
                for item in measured
            }
            expression = solve_query(item_of(query), measured)
            assert evaluate(expression, values) == expected

    def test_limit_respected(self):
        queries = list(atlas.motif_patterns(4))
        sets = list(enumerate_alternative_sets(queries, limit=10))
        assert len(sets) == 10

    def test_dedup_across_queries(self):
        """Overlapping closures collapse: far fewer sets than the product."""
        queries = [
            atlas.FOUR_CYCLE.vertex_induced(),
            atlas.TAILED_TRIANGLE.vertex_induced(),
        ]
        sets = list(enumerate_alternative_sets(queries, limit=10_000))
        assert len(sets) < space_size(queries)
        assert len(sets) == len(set(sets))

    def test_paper_scale_space(self):
        """The 4-motif space is comfortably larger than a handful —
        the exponential growth Section 5 motivates."""
        queries = list(atlas.motif_patterns(4))
        assert space_size(queries) > 250

    def test_mni_enumeration_legal(self, tiny_graph):
        queries = [atlas.FOUR_STAR]
        agg = MNIAggregation()
        sets = list(enumerate_alternative_sets(queries, agg))
        assert len(sets) == 2
        for measured in sets[1:]:
            for skel, variant in measured:
                assert variant == VERTEX_INDUCED or skel.is_clique
