"""Result transformation (Algorithms 2 & 3) against the oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.aggregation import MatchListAggregation, MNIAggregation
from repro.core.conversion import (
    OnTheFlyConverter,
    convert_aggregation_store,
    convert_counts,
    on_the_fly_plan,
    query_embeddings,
)
from repro.core.equations import UnderivableError, item_of, materialize, normalize_item
from repro.core.generation import skeleton, superpattern_closure
from repro.core.pattern import Pattern
from repro.core.sdag import EDGE_INDUCED, VERTEX_INDUCED
from repro.engines.peregrine.engine import PeregrineEngine

from .oracle import (
    brute_force_count,
    brute_force_match_tuples,
    brute_force_mni,
)
from .strategies import connected_skeletons, data_graphs


def _measure_counts(graph, query, variant):
    store = {}
    for sup in superpattern_closure(skeleton(query)):
        item = normalize_item(sup, variant)
        store[item] = brute_force_count(graph, materialize(item))
    return store


class TestConvertCounts:
    @given(data_graphs(), connected_skeletons(max_n=4))
    @settings(max_examples=25, deadline=None)
    def test_from_vertex_closure(self, graph, p):
        store = _measure_counts(graph, p, VERTEX_INDUCED)
        out = convert_counts([p.edge_induced(), p.vertex_induced()], store)
        assert out[p.edge_induced()] == brute_force_count(graph, p.edge_induced())
        assert out[p.vertex_induced()] == brute_force_count(
            graph, p.vertex_induced()
        )

    @given(data_graphs(), connected_skeletons(max_n=4))
    @settings(max_examples=25, deadline=None)
    def test_from_edge_closure(self, graph, p):
        store = _measure_counts(graph, p, EDGE_INDUCED)
        out = convert_counts([p.vertex_induced()], store)
        assert out[p.vertex_induced()] == brute_force_count(
            graph, p.vertex_induced()
        )


class TestConvertMNI:
    """Algorithm 2 with the FSM aggregation (Figure 10's conversion)."""

    @pytest.mark.parametrize(
        "query", [atlas.FOUR_CYCLE, atlas.TAILED_TRIANGLE, atlas.FOUR_PATH, atlas.FOUR_STAR]
    )
    def test_matches_oracle(self, query, small_graph):
        agg = MNIAggregation()
        engine = PeregrineEngine()
        store = {}
        for sup in superpattern_closure(skeleton(query)):
            item = normalize_item(sup, VERTEX_INDUCED)
            store[item] = engine.aggregate(small_graph, materialize(item), agg)
        out = convert_aggregation_store([query], store, agg)
        assert out[query] == brute_force_mni(small_graph, query)

    def test_labeled_query(self, small_labeled_graph):
        query = Pattern(3, [(0, 1), (1, 2)], labels=[0, 0, 0])
        agg = MNIAggregation()
        engine = PeregrineEngine()
        store = {}
        for sup in superpattern_closure(skeleton(query)):
            item = normalize_item(sup, VERTEX_INDUCED)
            store[item] = engine.aggregate(small_labeled_graph, materialize(item), agg)
        out = convert_aggregation_store([query], store, agg)
        assert out[query] == brute_force_mni(small_labeled_graph, query)

    def test_direct_measurement_permutes_back(self, small_graph):
        """A query measured directly must come back in its own numbering."""
        query = atlas.TAILED_TRIANGLE.relabel([3, 1, 0, 2])
        agg = MNIAggregation()
        engine = PeregrineEngine()
        item = item_of(query)
        store = {item: engine.aggregate(small_graph, materialize(item), agg)}
        out = convert_aggregation_store([query], store, agg)
        assert out[query] == brute_force_mni(small_graph, query)

    def test_vertex_induced_query_needs_direct_measurement(self):
        agg = MNIAggregation()
        with pytest.raises(UnderivableError):
            convert_aggregation_store(
                [atlas.FOUR_CYCLE.vertex_induced()],
                {normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED): ()},
                agg,
            )

    def test_missing_alternative_raises(self):
        agg = MNIAggregation()
        with pytest.raises(UnderivableError):
            convert_aggregation_store([atlas.FOUR_CYCLE], {}, agg)


class TestOnTheFly:
    """Algorithm 3: streams reconstructed from vertex-induced alternatives."""

    def _oracle_occurrences(self, graph, pattern):
        return {
            frozenset(tuple(sorted((m[u], m[v]))) for u, v in pattern.edges)
            for m in brute_force_match_tuples(graph, pattern)
        }

    @pytest.mark.parametrize(
        "query", [atlas.FOUR_CYCLE, atlas.FOUR_PATH, atlas.TAILED_TRIANGLE]
    )
    def test_stream_covers_oracle(self, query, small_graph):
        engine = PeregrineEngine()
        seen = set()
        emitted = [0]

        def process(pattern, match):
            emitted[0] += 1
            seen.add(
                frozenset(tuple(sorted((match[u], match[v]))) for u, v in pattern.edges)
            )

        measured = {
            normalize_item(sup, VERTEX_INDUCED)
            for sup in superpattern_closure(skeleton(query))
        }
        plan = on_the_fly_plan(query, measured, process)
        for item, converter in plan.items():
            engine.explore(
                small_graph,
                materialize(item),
                lambda p, m, conv=converter: conv(m),
            )
        assert seen == self._oracle_occurrences(small_graph, query)
        # Eq. 1 is a disjoint partition: every occurrence exactly once.
        assert emitted[0] == len(seen)

    def test_expansion_factor_is_coefficient(self):
        conv = OnTheFlyConverter(atlas.FOUR_CYCLE, skeleton(atlas.FOUR_CLIQUE), lambda p, m: None)
        assert conv.expansion_factor == 3

    def test_vertex_induced_query_direct_only(self):
        measured = {item_of(atlas.FOUR_CYCLE.vertex_induced())}
        plan = on_the_fly_plan(
            atlas.FOUR_CYCLE.vertex_induced(), measured, lambda p, m: None
        )
        assert len(plan) == 1

    def test_vertex_induced_query_underivable_from_closure(self):
        measured = {normalize_item(atlas.FOUR_CLIQUE, EDGE_INDUCED)}
        with pytest.raises(UnderivableError):
            on_the_fly_plan(
                atlas.FOUR_CYCLE.vertex_induced(), measured, lambda p, m: None
            )

    def test_converted_matches_are_valid(self, small_graph):
        """Every emitted match must map query edges onto graph edges."""
        query = atlas.FOUR_CYCLE

        def process(pattern, match):
            for u, v in pattern.edges:
                assert small_graph.has_edge(match[u], match[v])
            assert len(set(match)) == pattern.n

        engine = PeregrineEngine()
        measured = {
            normalize_item(sup, VERTEX_INDUCED)
            for sup in superpattern_closure(skeleton(query))
        }
        for item, converter in on_the_fly_plan(query, measured, process).items():
            engine.explore(
                small_graph, materialize(item), lambda p, m, c=converter: c(m)
            )


class TestQueryEmbeddings:
    def test_respects_original_numbering(self):
        query = atlas.FOUR_CYCLE.relabel([2, 0, 3, 1])
        maps = query_embeddings(query, skeleton(atlas.FOUR_CYCLE))
        assert len(maps) == 1
        g = maps[0]
        skel = skeleton(atlas.FOUR_CYCLE)
        for u, v in query.edges:
            assert tuple(sorted((g[u], g[v]))) in skel.edges

    def test_count_matches_occurrences(self):
        maps = query_embeddings(atlas.FOUR_CYCLE, skeleton(atlas.FOUR_CLIQUE))
        assert len(maps) == 3


class TestMatchListConversion:
    def test_store_conversion_counts(self, tiny_graph):
        """MatchList through Algorithm 2 equals the direct enumeration."""
        agg = MatchListAggregation()
        engine = PeregrineEngine()
        query = atlas.FOUR_CYCLE
        store = {}
        for sup in superpattern_closure(skeleton(query)):
            item = normalize_item(sup, VERTEX_INDUCED)
            store[item] = engine.aggregate(tiny_graph, materialize(item), agg)
        out = convert_aggregation_store([query], store, agg)
        assert len(out[query]) == brute_force_count(tiny_graph, query)
