"""Tests for superpattern generation and the S-DAG."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core import atlas
from repro.core.canonical import canonical_form, pattern_id
from repro.core.generation import (
    direct_superpatterns,
    skeleton,
    superpattern_closure,
)
from repro.core.pattern import Pattern
from repro.core.sdag import SDag

from .strategies import connected_skeletons


class TestSuperpatterns:
    def test_four_cycle_direct_supers(self):
        """Every chord of the 4-cycle gives the same chordal 4-cycle."""
        supers = direct_superpatterns(canonical_form(atlas.FOUR_CYCLE))
        assert len(supers) == 1
        assert canonical_form(supers[0]) == canonical_form(atlas.CHORDAL_FOUR_CYCLE)

    def test_clique_has_no_supers(self):
        assert direct_superpatterns(canonical_form(Pattern.clique(4))) == ()

    def test_closure_of_four_cycle(self):
        closure = superpattern_closure(skeleton(atlas.FOUR_CYCLE))
        names = {atlas.pattern_name(p) for p in closure}
        assert names == {"C4", "C4C", "4CL"}

    def test_closure_of_tailed_triangle(self):
        closure = superpattern_closure(skeleton(atlas.TAILED_TRIANGLE))
        names = {atlas.pattern_name(p) for p in closure}
        assert names == {"TT", "C4C", "4CL"}

    def test_closure_includes_self_and_clique(self):
        for p in atlas.all_connected_patterns(4):
            closure = superpattern_closure(skeleton(p))
            assert canonical_form(p) in closure
            assert any(q.is_clique for q in closure)

    def test_labeled_closure_preserves_labels(self):
        p = Pattern.path(3, labels=[0, 1, 0])
        for q in superpattern_closure(skeleton(p)):
            assert sorted(q.labels) == [0, 0, 1]

    def test_labeled_patterns_distinct_closures(self):
        """Figure 8 (right): labelings multiply the S-DAG nodes."""
        a = superpattern_closure(skeleton(Pattern.path(3, labels=[0, 1, 0])))
        b = superpattern_closure(skeleton(Pattern.path(3, labels=[1, 0, 1])))
        assert {pattern_id(p) for p in a}.isdisjoint(pattern_id(p) for p in b)

    @given(connected_skeletons(max_n=5))
    @settings(max_examples=60, deadline=None)
    def test_closure_edge_monotone(self, p: Pattern):
        base = skeleton(p)
        for q in superpattern_closure(base):
            assert q.num_edges >= base.num_edges
            assert q.n == base.n


class TestSDag:
    def test_motif_set_dag_is_exactly_the_motifs(self):
        """4-MC is morphing's best case: the S-DAG adds no new patterns."""
        dag = SDag.build(list(atlas.motif_patterns(4)))
        assert len(dag) == 6
        assert all(node.is_query for node in dag)

    def test_single_pattern_dag(self):
        dag = SDag.build([atlas.FOUR_CYCLE.vertex_induced()])
        assert len(dag) == 3  # C4, C4C, 4CL
        assert sum(node.is_query for node in dag) == 1

    def test_parent_child_symmetry(self):
        dag = SDag.build(list(atlas.motif_patterns(4)))
        for node in dag:
            for pid in node.parents:
                assert node.id in dag.node_by_id(pid).children
            for cid in node.children:
                assert node.id in dag.node_by_id(cid).parents

    def test_edges_go_one_edge_up(self):
        dag = SDag.build(list(atlas.motif_patterns(4)))
        for node in dag:
            for pid in node.parents:
                assert dag.node_by_id(pid).skel.num_edges == node.skel.num_edges + 1

    def test_closure_query(self):
        dag = SDag.build([atlas.FOUR_PATH])
        closure_names = {atlas.pattern_name(n.skel) for n in dag.closure(atlas.FOUR_PATH)}
        assert closure_names == {"4P", "TT", "C4", "C4C", "4CL"}

    def test_shared_nodes_across_queries(self):
        dag = SDag.build([atlas.FOUR_PATH, atlas.FOUR_CYCLE.vertex_induced()])
        # 4P's closure is {4P, TT, C4, C4C, 4CL}; C4's adds nothing new.
        assert len(dag) == 5

    def test_contains_and_lookup(self):
        dag = SDag.build([atlas.FOUR_CYCLE])
        assert atlas.FOUR_CYCLE in dag
        assert atlas.FOUR_CYCLE.vertex_induced() in dag  # same skeleton
        assert atlas.FOUR_CLIQUE in dag  # generated superpattern
        assert atlas.FOUR_STAR not in dag

    def test_by_edge_count_desc(self):
        dag = SDag.build([atlas.FOUR_PATH])
        counts = [n.skel.num_edges for n in dag.by_edge_count_desc()]
        assert counts == sorted(counts, reverse=True)

    def test_memoized_extension(self):
        """Building with overlapping queries must not duplicate nodes."""
        dag = SDag.build(
            [atlas.FOUR_PATH, atlas.TAILED_TRIANGLE, atlas.FOUR_CYCLE, atlas.FOUR_PATH]
        )
        ids = [n.id for n in dag]
        assert len(ids) == len(set(ids))
