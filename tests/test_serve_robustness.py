"""Tests for the hardened resident service (shed/sentinel/breaker/drain).

Every robustness mechanism is exercised deterministically: the shed
controller is a pure function of (histogram state, queue depth), the
circuit breaker and sentinels run on injectable fake clocks, drain and
warm restart round-trip through a temp journal, and the protocol-error
handler answers garbage with a typed response over a real socket. No
test reads the wall clock or an unseeded RNG for its verdicts.
"""

from __future__ import annotations

import json
import random
import socket

import pytest

import repro
from repro.core.atlas import TRIANGLE
from repro.engines.recovery import RetryPolicy
from repro.observe.metrics import MetricsRegistry
from repro.options import RunOptions
from repro.serve import (
    AdmissionPolicy,
    BreakerBoard,
    CircuitBreaker,
    Client,
    GraphRegistry,
    MiningServer,
    Query,
    QueryScheduler,
    SentinelBoard,
    ServeRejected,
    ShedController,
    validate_stats,
)
from repro.serve.shed import LATENCY_METRIC
from repro.testing.faults import QueryFaultPlan, QueryFaultSpec


class FakeClock:
    """Deterministic monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tri_text() -> str:
    return repro.format_pattern(TRIANGLE)


# ---------------------------------------------------------------------------
# shed controller


class TestShedController:
    def _metrics_with_latencies(self, values) -> MetricsRegistry:
        metrics = MetricsRegistry()
        for value in values:
            metrics.observe(LATENCY_METRIC, value)
        return metrics

    def test_disabled_controller_always_admits(self):
        controller = ShedController(
            self._metrics_with_latencies([10.0] * 50), slo_p99=None
        )
        decision = controller.evaluate(priority=0, queue_depth=1000)
        assert not decision.shed
        assert controller.shed_total == 0

    def test_cold_start_admits_until_min_samples(self):
        metrics = self._metrics_with_latencies([10.0] * 7)
        controller = ShedController(metrics, slo_p99=0.5, min_samples=8)
        assert not controller.evaluate(priority=0, queue_depth=0).shed
        metrics.observe(LATENCY_METRIC, 10.0)  # 8th sample: signal is real
        decision = controller.evaluate(priority=0, queue_depth=0)
        assert decision.shed and decision.reason == "slo-p99"

    def test_protected_priority_never_shed(self):
        controller = ShedController(
            self._metrics_with_latencies([10.0] * 50),
            slo_p99=0.5,
            protect_priority=1,
        )
        assert not controller.evaluate(priority=1, queue_depth=50).shed
        assert not controller.evaluate(priority=7, queue_depth=50).shed
        assert controller.evaluate(priority=0, queue_depth=50).shed

    def test_verdict_is_deterministic_given_histogram_state(self):
        """Same histogram + same depth -> byte-identical decision, always."""
        controller = ShedController(
            self._metrics_with_latencies([0.1] * 20 + [3.0] * 5), slo_p99=0.5
        )
        decisions = [
            controller.evaluate(priority=0, queue_depth=4) for _ in range(5)
        ]
        assert all(d.shed for d in decisions)
        assert len({(d.reason, d.retry_after_s, d.p99) for d in decisions}) == 1

    def test_queue_infeasible_reason_without_slow_tail(self):
        """A fast histogram but a hopeless backlog sheds on feasibility."""
        controller = ShedController(
            self._metrics_with_latencies([0.01] * 20),
            slo_p99=0.5,
            estimated_service_seconds=0.2,
        )
        assert not controller.evaluate(priority=0, queue_depth=2).shed
        decision = controller.evaluate(priority=0, queue_depth=10)
        assert decision.shed and decision.reason == "queue-infeasible"

    def test_retry_after_scales_with_backlog_and_floors(self):
        controller = ShedController(
            self._metrics_with_latencies([0.1] * 10 + [9.0]),
            slo_p99=0.5,
            retry_after_floor=0.25,
        )
        shallow = controller.evaluate(priority=0, queue_depth=1)
        deep = controller.evaluate(priority=0, queue_depth=100)
        assert shallow.shed and deep.shed
        assert deep.retry_after_s >= shallow.retry_after_s >= 0.25

    def test_snapshot_counts_by_reason(self):
        controller = ShedController(
            self._metrics_with_latencies([10.0] * 20), slo_p99=0.5
        )
        for _ in range(3):
            controller.evaluate(priority=0, queue_depth=0)
        snapshot = controller.snapshot()
        assert snapshot["shed_total"] == 3
        assert snapshot["by_reason"] == {"slo-p99": 3}
        assert snapshot["slo_p99"] == 0.5

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="slo_p99"):
            ShedController(MetricsRegistry(), slo_p99=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            ShedController(MetricsRegistry(), min_samples=0)


# ---------------------------------------------------------------------------
# circuit breaker


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one concurrent probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=2.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # cool-down restarted
        assert breaker.retry_after() == pytest.approx(2.0)

    def test_transition_callback_sees_every_edge(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_seconds=1.0,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert seen == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_board_isolates_cells_and_labels_transitions(self):
        clock = FakeClock()
        seen = []
        board = BreakerBoard(
            failure_threshold=1,
            clock=clock,
            on_transition=lambda cell, old, new: seen.append((cell, old, new)),
        )
        board.get("g1", "peregrine").record_failure()
        assert board.get("g1", "peregrine").state == "open"
        assert board.get("g1", "bigjoin").state == "closed"
        assert board.get("g2", "peregrine").state == "closed"
        assert seen == [("g1/peregrine", "closed", "open")]
        snapshot = board.snapshot()
        assert snapshot["g1/peregrine"]["state"] == "open"
        assert snapshot["g1/peregrine"]["transitions"] == 1


# ---------------------------------------------------------------------------
# sentinels


class TestSentinels:
    def test_no_budgets_and_no_deadline_arms_nothing(self):
        board = SentinelBoard(clock=FakeClock())
        assert board.watch("q1", None) is None
        assert board.watch("q2", 3.0) is not None  # a deadline is enforceable

    def test_wall_budget_trips_via_poll(self):
        clock = FakeClock()
        board = SentinelBoard(clock=clock, wall_budget_s=2.0)
        sentinel = board.watch("q1", None)
        assert board.poll() == []
        clock.advance(2.5)
        assert board.poll() == [("q1", "wall-budget")]
        assert sentinel.tripped == "wall-budget"
        assert sentinel.deadline.expired()
        assert sentinel.deadline.expiry_reason == "wall-budget"
        assert board.poll() == []  # idempotent: a trip fires once
        assert board.snapshot()["trips"] == {"wall-budget": 1}

    def test_rss_growth_budget_trips_with_fake_reader(self):
        clock = FakeClock()
        rss = {"value": 1_000}
        board = SentinelBoard(
            clock=clock,
            rss_budget_bytes=1_000,
            rss_reader=lambda: rss["value"],
        )
        sentinel = board.watch("q1", None)
        assert sentinel.rss_start == 1_000
        rss["value"] = 1_500  # growth 500 < budget
        assert board.poll() == []
        rss["value"] = 2_500  # growth 1500 > budget
        assert board.poll() == [("q1", "rss-budget")]
        assert sentinel.deadline.expiry_reason == "rss-budget"

    def test_effective_deadline_is_the_tighter_bound(self):
        clock = FakeClock()
        board = SentinelBoard(clock=clock, wall_budget_s=5.0)
        tight = board.watch("q1", 2.0)
        loose = board.watch("q2", 10.0)
        assert tight.deadline.remaining() == pytest.approx(2.0)
        assert loose.deadline.remaining() == pytest.approx(5.0)

    def test_finish_disarms(self):
        clock = FakeClock()
        board = SentinelBoard(clock=clock, wall_budget_s=1.0)
        board.watch("q1", None)
        assert board.snapshot()["active"] == 1
        assert board.finish("q1") is not None
        clock.advance(5.0)
        assert board.poll() == []  # nothing left to trip
        assert board.finish("q1") is None

    def test_partial_rss_information_never_cancels(self):
        """Budget + baseline + sample are all required to trip on RSS."""
        clock = FakeClock()
        board = SentinelBoard(
            clock=clock, rss_budget_bytes=100, rss_reader=lambda: None
        )
        sentinel = board.watch("q1", None)
        assert sentinel.rss_start is None
        assert board.poll() == []
        assert sentinel.tripped is None


# ---------------------------------------------------------------------------
# scheduler: drain + anti-starvation


class TestSchedulerRobustness:
    def test_draining_rejects_new_work_but_keeps_queued_work(self):
        scheduler = QueryScheduler()
        queued = Query({"tag": "early"})
        assert scheduler.submit(queued) == "accepted"
        scheduler.set_draining(True)
        assert scheduler.submit(Query({})) == "rejected:draining"
        assert scheduler.metrics.value("serve.admission.rejected.draining") == 1
        assert scheduler.run_next(lambda q: {"ok": True})
        assert queued.response == {"ok": True}
        assert scheduler.snapshot()["draining"] is True

    def test_shed_verdict_wired_through_submit(self):
        metrics = MetricsRegistry()
        for _ in range(20):
            metrics.observe(LATENCY_METRIC, 10.0)
        shed = ShedController(metrics, slo_p99=0.5)
        scheduler = QueryScheduler(metrics=metrics, shed=shed)
        low = Query({}, priority=0)
        assert scheduler.submit(low) == "rejected:overload"
        assert low.retry_after_s is not None and low.retry_after_s > 0
        assert scheduler.submit(Query({}, priority=1)) == "accepted"
        assert metrics.value("serve.shed.slo-p99") == 1
        assert metrics.value("serve.admission.rejected.overload") == 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_priority_stream_cannot_starve_feasible_deadline(self, seed):
        """Property: under a continuous high-priority stream, a queued
        low-priority query with a feasible deadline is dispatched before
        the deadline-feasibility bound passes (urgent pre-emption)."""
        rng = random.Random(seed)
        clock = FakeClock()
        estimate = 1.0
        scheduler = QueryScheduler(
            policy=AdmissionPolicy(
                max_queue_depth=4096,
                max_per_client=4096,
                estimated_service_seconds=estimate,
            ),
            clock=clock,
        )
        victim = Query(
            {"tag": "victim"}, priority=0,
            deadline=scheduler.make_deadline(5.0),
        )
        assert scheduler.submit(victim) == "accepted"
        executed = []
        for _ in range(20):
            for _ in range(rng.randint(1, 3)):
                scheduler.submit(Query({"tag": "noise"}, priority=10))
            assert scheduler.run_next(
                lambda q: executed.append(q.request["tag"]) or {"ok": True}
            )
            clock.advance(estimate)
            if victim.response is not None:
                break
        assert victim.response == {"ok": True}
        assert "victim" in executed
        assert scheduler.metrics.value("serve.scheduler.urgent_dispatch") >= 1

    def test_urgent_scan_ignores_already_expired(self):
        """Expired queries are not urgent: the existing dispatch check
        rejects them with the exact established response shape."""
        clock = FakeClock()
        scheduler = QueryScheduler(
            policy=AdmissionPolicy(estimated_service_seconds=1.0), clock=clock
        )
        doomed = Query({}, deadline=scheduler.make_deadline(10.0))
        assert scheduler.submit(doomed) == "accepted"
        clock.advance(11.0)
        assert not scheduler.run_next(lambda q: {"ok": True})
        assert doomed.response == {
            "ok": False,
            "error": "rejected:deadline",
            "admission": "rejected:deadline",
        }


# ---------------------------------------------------------------------------
# server integration (dict-level, workers=0, fake clock)


@pytest.fixture()
def sync_server(small_graph):
    """Threadless server over ``small_graph`` with a fake clock."""
    clock = FakeClock()
    registry = GraphRegistry(share=False)
    registry.add("small", small_graph)
    server = MiningServer(registry=registry, workers=0, clock=clock)
    server.clock = clock  # test-side handle
    yield server
    server.close()


class TestServerRobustness:
    def test_stats_schema_v3_validates(self, sync_server):
        stats = sync_server.handle({"op": "stats"})
        validate_stats(stats)
        assert stats["schema_version"] == 3
        assert stats["service"]["state"] == "accepting"
        assert stats["shed"]["shed_total"] == 0
        assert stats["sentinels"]["active"] == 0
        assert stats["breakers"] == {}

    def test_overload_rejection_carries_retry_hint(self, small_graph):
        clock = FakeClock()
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        server = MiningServer(
            registry=registry, workers=0, clock=clock, slo_p99=0.5
        )
        try:
            for _ in range(20):
                server.metrics.observe(LATENCY_METRIC, 10.0)
            response = server.handle(
                {"op": "run", "graph": "small", "patterns": [tri_text()]}
            )
            assert response["ok"] is False
            assert response["error"] == "rejected:overload"
            assert response["retry_after_s"] > 0
            # Priority above the protection threshold still flows.
            protected = server.handle(
                {
                    "op": "run",
                    "graph": "small",
                    "patterns": [tri_text()],
                    "priority": 1,
                }
            )
            assert protected["ok"] is True
        finally:
            server.close()

    def test_idempotent_replay_returns_identical_response(self, sync_server):
        request = {
            "op": "run",
            "graph": "small",
            "patterns": [tri_text()],
            "idempotency_key": "c1:1:abc",
            "use_result_cache": False,
        }
        first = sync_server.handle(dict(request))
        second = sync_server.handle(dict(request))
        assert first["ok"] and second == first  # same query_id, same bytes
        assert sync_server.metrics.value("serve.idempotent.replays") == 1

    def test_chaos_crash_opens_breaker_then_probe_closes_it(self, small_graph):
        clock = FakeClock()
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        chaos = QueryFaultPlan({0: QueryFaultSpec("crash", times=None)})
        server = MiningServer(
            registry=registry,
            workers=0,
            clock=clock,
            chaos=chaos,
            breaker_threshold=2,
            breaker_reset_s=5.0,
        )
        try:
            request = {
                "op": "run",
                "graph": "small",
                "patterns": [tri_text()],
                "chaos_index": 0,
            }
            for _ in range(2):
                response = server.handle(dict(request))
                assert "WorkerCrashError" in response["error"]
            # Breaker open: fail fast with the typed verdict + hint.
            fast = server.handle(dict(request))
            assert fast["error"] == "rejected:circuit-open"
            assert fast["retry_after_s"] == pytest.approx(5.0)
            stats = server.handle({"op": "stats"})
            assert stats["breakers"]["small/peregrine"]["state"] == "open"
            assert stats["metrics"]["serve.breaker.transition.open"] == 1
            # Cool-down elapses; a clean probe (no fault) closes it.
            clock.advance(5.0)
            probe = server.handle(
                {"op": "run", "graph": "small", "patterns": [tri_text()]}
            )
            assert probe["ok"] is True
            assert server.breakers.get("small", "peregrine").state == "closed"
            assert (
                server.metrics.value("serve.breaker.transition.closed") == 1
            )
            # The transitions also landed in the flight recorder.
            notes = [r.error for r in server.flight.anomalies()]
            assert any("closed -> open" in (n or "") for n in notes)
        finally:
            server.close()

    def test_drain_rejects_then_persists_then_closes(self, small_graph, tmp_path):
        registry = GraphRegistry(share=False)
        registry.load("mico")
        state_path = str(tmp_path / "state.jsonl")
        server = MiningServer(
            registry=registry,
            workers=0,
            state_path=state_path,
            drain_deadline_s=2.0,
        )
        warm = server.handle(
            {"op": "run", "graph": "mico", "patterns": [tri_text()]}
        )
        assert warm["ok"] is True
        summary = server.drain(dump_dir=str(tmp_path / "flight"))
        assert summary["drained"] is True
        assert summary["state"] == "closed"
        assert summary["state_entries"] >= 2  # the graph + the result
        assert summary["flight_files"] >= 1
        rejected = server.handle(
            {"op": "run", "graph": "mico", "patterns": [tri_text()]}
        )
        assert rejected["error"] == "rejected:draining"
        # Idempotent: a second drain reports, never re-drains.
        assert server.drain() == {"state": "closed", "drained": False}
        assert server.metrics.value("serve.drain.started") == 1

        # Warm restart: a fresh incarnation resumes graphs + results.
        second = MiningServer(registry=GraphRegistry(share=False), workers=0)
        try:
            resumed = second.resume_from(state_path)
            assert resumed["graphs"] == ["mico"]
            assert resumed["results"] == 1
            hit = second.handle(
                {"op": "run", "graph": "mico", "patterns": [tri_text()]}
            )
            assert hit["ok"] is True and hit["cached"] is True
            assert hit["results"] == warm["results"]
        finally:
            second.close()

    def test_resume_skips_vanished_graphs(self, tmp_path):
        from repro.serve import save_service_state

        path = str(tmp_path / "state.jsonl")
        save_service_state(path, graphs=["no-such-graph-anywhere"], result_cache={})
        server = MiningServer(registry=GraphRegistry(share=False), workers=0)
        try:
            with pytest.warns(RuntimeWarning, match="no-such-graph"):
                resumed = server.resume_from(path)
            assert resumed["failed"] == ["no-such-graph-anywhere"]
            assert resumed["graphs"] == []
        finally:
            server.close()

    def test_resume_from_missing_journal_raises(self, tmp_path):
        server = MiningServer(registry=GraphRegistry(share=False), workers=0)
        try:
            with pytest.raises(FileNotFoundError):
                server.resume_from(str(tmp_path / "nope.jsonl"))
        finally:
            server.close()


# ---------------------------------------------------------------------------
# state journal


class TestServiceStateJournal:
    def test_round_trip(self, tmp_path):
        from repro.serve import load_service_state, save_service_state

        path = str(tmp_path / "state.jsonl")
        key = ("fp", ("a-b-c-a",), "count", "peregrine", "auto", True, 0.1, 1, None)
        entries = save_service_state(
            path, graphs=["mico", "g2"], result_cache={key: {"ok": True, "x": 1}}
        )
        assert entries == 3
        state = load_service_state(path)
        assert state.graphs == ["mico", "g2"]
        assert state.results == {key: {"ok": True, "x": 1}}
        assert state.skipped == 0
        assert state.meta["version"] == 1

    def test_torn_tail_degrades_to_skipped_lines(self, tmp_path):
        from repro.serve import load_service_state, save_service_state

        path = str(tmp_path / "state.jsonl")
        key = ("fp", ("t",), "count", "peregrine", "auto", True, 0.1, 1, None)
        save_service_state(path, graphs=["g"], result_cache={key: {"ok": True}})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "result", "key": {"trunc')  # torn mid-write
        state = load_service_state(path)
        assert state.graphs == ["g"]
        assert len(state.results) == 1
        assert state.skipped == 1

    def test_future_version_refused(self, tmp_path):
        path = str(tmp_path / "state.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "meta", "version": 99}) + "\n")
        from repro.serve import load_service_state

        with pytest.raises(ValueError, match="version 99"):
            load_service_state(path)


# ---------------------------------------------------------------------------
# client resilience (no sockets: _checked is stubbed)


class TestClientResilience:
    def _client(self, policy: RetryPolicy) -> Client:
        return Client(port=9, retry=policy)

    def test_retry_honors_server_backoff_hint(self):
        sleeps: list[float] = []
        policy = RetryPolicy(
            max_retries=2, backoff_seconds=0.01, jitter=0.0, sleep=sleeps.append
        )
        client = self._client(policy)
        attempts = {"n": 0}

        def fake_checked(payload):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise ServeRejected(
                    "run", "rejected:overload", retry_after_s=0.5
                )
            return {"ok": True}

        client._checked = fake_checked
        assert client._checked_with_retry({"op": "run"}) == {"ok": True}
        assert sleeps == [0.5]  # the hint dominates the schedule

    def test_permanent_rejection_raises_immediately(self):
        policy = RetryPolicy(max_retries=5, sleep=lambda _s: None)
        client = self._client(policy)
        attempts = {"n": 0}

        def fake_checked(payload):
            attempts["n"] += 1
            raise ServeRejected("run", "rejected:deadline")

        client._checked = fake_checked
        with pytest.raises(ServeRejected, match="rejected:deadline"):
            client._checked_with_retry({"op": "run"})
        assert attempts["n"] == 1

    def test_transient_transport_failures_retry_until_budget(self):
        sleeps: list[float] = []
        policy = RetryPolicy(
            max_retries=2, backoff_seconds=0.01, jitter=0.0, sleep=sleeps.append
        )
        client = self._client(policy)
        attempts = {"n": 0}

        def fake_checked(payload):
            attempts["n"] += 1
            raise ConnectionError("torn")

        client._checked = fake_checked
        with pytest.raises(ConnectionError):
            client._checked_with_retry({"op": "run"})
        assert attempts["n"] == 3  # initial + 2 retries
        assert len(sleeps) == 2

    def test_worker_crash_error_is_retryable(self):
        policy = RetryPolicy(max_retries=1, jitter=0.0, sleep=lambda _s: None)
        client = self._client(policy)
        attempts = {"n": 0}

        def fake_checked(payload):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError(
                    "server rejected 'run': WorkerCrashError: injected"
                )
            return {"ok": True}

        client._checked = fake_checked
        assert client._checked_with_retry({"op": "run"}) == {"ok": True}

    def test_no_policy_means_no_retries(self):
        client = Client(port=9)  # retry=None: pre-hardening behavior
        assert client.retry is None

        def fake_checked(payload):
            raise ServeRejected("run", "rejected:overload", retry_after_s=0.1)

        client._checked = fake_checked
        with pytest.raises(ServeRejected):
            client._checked_with_retry({"op": "run"})

    def test_idempotency_keys_are_unique_and_deterministic_in_shape(self):
        client = Client(port=9, client_id="c7", retry=1)
        first = client._next_idempotency_key({"op": "run", "graph": "g"})
        second = client._next_idempotency_key({"op": "run", "graph": "g"})
        assert first != second  # the per-client sequence separates repeats
        assert first.startswith("c7:1:") and second.startswith("c7:2:")
        assert len(first.split(":")[2]) == 16

    def test_seeded_backoff_schedule_replays(self):
        sleeps_a: list[float] = []
        sleeps_b: list[float] = []
        for sleeps in (sleeps_a, sleeps_b):
            policy = RetryPolicy(
                max_retries=3, backoff_seconds=0.01, seed=42, sleep=sleeps.append
            )
            client = self._client(policy)
            client._checked = lambda payload: (_ for _ in ()).throw(
                ServeRejected("run", "rejected:queue-full")
            )
            with pytest.raises(ServeRejected):
                client._checked_with_retry({"op": "run"})
        assert sleeps_a == sleeps_b  # fixed seed, fixed schedule


# ---------------------------------------------------------------------------
# protocol-error handling over a real socket


class TestProtocolErrors:
    def test_garbage_request_gets_typed_response(self, small_graph):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(registry=registry, workers=1) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"this is not json\n")
                stream.flush()
                line = stream.readline()
                response = json.loads(line)
            assert response["ok"] is False
            assert response["error"].startswith("protocol-error")
            assert server.metrics.value("serve.protocol.errors") == 1
            notes = [r.error for r in server.flight.anomalies()]
            assert any("protocol-error" in (n or "") for n in notes)
            # The daemon survived: a well-formed client still works.
            client = Client(port=server.port)
            assert client.ping()

    def test_non_object_json_line_also_answered(self, small_graph):
        registry = GraphRegistry(share=False)
        registry.add("small", small_graph)
        with MiningServer(registry=registry, workers=1) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"[1, 2, 3]\n")
                stream.flush()
                response = json.loads(stream.readline())
            assert response["ok"] is False
            assert "protocol-error" in response["error"]


# ---------------------------------------------------------------------------
# stale segment sweep


class TestSegmentSweep:
    def test_dead_incarnation_segment_swept_live_kept(self):
        from multiprocessing import shared_memory

        from repro.engines.execution import sweep_stale_segments

        # A segment "owned" by a pid that cannot exist (beyond pid_max)
        # stands in for a SIGKILLed previous daemon incarnation.
        stale = shared_memory.SharedMemory(
            name="repro-shm-99999999-0-deadbe", create=True, size=64
        )
        stale.close()
        # The sweep unlinks this segment out-of-band; unregister it so
        # the stdlib resource tracker does not complain at exit.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(stale._name, "shared_memory")
        import os

        live = shared_memory.SharedMemory(
            name=f"repro-shm-{os.getpid()}-7-feed01", create=True, size=64
        )
        try:
            with pytest.warns(RuntimeWarning, match="repro-shm-99999999"):
                swept = sweep_stale_segments()
            assert "repro-shm-99999999-0-deadbe" in swept
            # Our own (live-pid) segment must survive the sweep.
            probe = shared_memory.SharedMemory(
                name=f"repro-shm-{os.getpid()}-7-feed01"
            )
            probe.close()
        finally:
            live.close()
            live.unlink()

    def test_sweep_is_a_noop_when_clean(self):
        from repro.engines.execution import sweep_stale_segments

        assert sweep_stale_segments() == ()

    def test_exported_payloads_use_sweepable_names(self, small_graph):
        import os

        from repro.engines.execution import SharedGraphPayload

        payload = SharedGraphPayload.export(small_graph)
        try:
            assert payload.shm_name.startswith(f"repro-shm-{os.getpid()}-")
        finally:
            payload.dispose()
