"""End-to-end morphing correctness: baseline == morphed, everywhere.

This is the library's central guarantee (paper claim C1): enabling
Subgraph Morphing never changes results — across engines, aggregations,
output modes, and random inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.aggregation import MNIAggregation
from repro.engines.autozero.engine import AutoZeroEngine
from repro.engines.bigjoin.engine import BigJoinEngine
from repro.engines.graphpi.engine import GraphPiEngine
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.engine import SumPAEngine
from repro.morph.session import MorphingSession, compare_baseline_and_morphed

from .oracle import brute_force_count, brute_force_mni
from .strategies import connected_skeletons, data_graphs

ENGINES = [
    PeregrineEngine,
    AutoZeroEngine,
    GraphPiEngine,
    BigJoinEngine,
    SumPAEngine,
]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestCountingEquivalence:
    def test_motifs_3(self, engine_cls, small_graph):
        base, morphed = compare_baseline_and_morphed(
            engine_cls, small_graph, atlas.motif_patterns(3)
        )
        assert base.results == morphed.results
        for p, c in base.results.items():
            assert c == brute_force_count(small_graph, p)

    def test_motifs_4(self, engine_cls, small_graph):
        base, morphed = compare_baseline_and_morphed(
            engine_cls, small_graph, atlas.motif_patterns(4)
        )
        assert base.results == morphed.results

    def test_single_vertex_induced_pattern(self, engine_cls, small_graph):
        q = atlas.CHORDAL_FOUR_CYCLE.vertex_induced()
        base, morphed = compare_baseline_and_morphed(engine_cls, small_graph, [q])
        assert base.results == morphed.results
        assert base.results[q] == brute_force_count(small_graph, q)

    def test_mixed_variant_query_set(self, engine_cls, small_graph):
        queries = [atlas.FOUR_CYCLE, atlas.FOUR_STAR.vertex_induced(), atlas.FOUR_CLIQUE]
        base, morphed = compare_baseline_and_morphed(engine_cls, small_graph, queries)
        assert base.results == morphed.results


class TestCountingEquivalenceRandom:
    @given(data_graphs(min_n=6, max_n=12), connected_skeletons(max_n=4))
    @settings(max_examples=20, deadline=None)
    def test_peregrine_random(self, graph, skel):
        for query in (skel, skel.vertex_induced()):
            base, morphed = compare_baseline_and_morphed(
                PeregrineEngine, graph, [query]
            )
            assert base.results == morphed.results
            assert base.results[query] == brute_force_count(graph, query)

    @given(data_graphs(min_n=6, max_n=11), connected_skeletons(max_n=4))
    @settings(max_examples=12, deadline=None)
    def test_graphpi_random(self, graph, skel):
        query = skel.vertex_induced()
        base, morphed = compare_baseline_and_morphed(GraphPiEngine, graph, [query])
        assert base.results == morphed.results


class TestMNIEquivalence:
    @pytest.mark.parametrize("engine_cls", [PeregrineEngine, BigJoinEngine])
    def test_fsm_style_queries(self, engine_cls, small_labeled_graph):
        from repro.core.pattern import Pattern

        queries = [
            Pattern(3, [(0, 1), (1, 2)], labels=[0, 0, 0]),
            Pattern(3, [(0, 1), (1, 2)], labels=[0, 1, 0]),
            Pattern(2, [(0, 1)], labels=[0, 0]),
        ]
        base, morphed = compare_baseline_and_morphed(
            engine_cls, small_labeled_graph, queries, aggregation=MNIAggregation()
        )
        assert base.results == morphed.results
        for q in queries:
            assert base.results[q] == brute_force_mni(small_labeled_graph, q)

    def test_unlabeled_mni(self, small_graph):
        base, morphed = compare_baseline_and_morphed(
            PeregrineEngine,
            small_graph,
            [atlas.FOUR_STAR, atlas.FOUR_PATH],
            aggregation=MNIAggregation(),
        )
        assert base.results == morphed.results


class TestStreamingEquivalence:
    def _occurrences(self, session, graph, patterns, vertex_filter=None):
        seen: dict = {}

        def process(pattern, match):
            key = frozenset(
                tuple(sorted((match[u], match[v]))) for u, v in pattern.edges
            )
            seen.setdefault(pattern, set()).add(key)

        result = session.run_streaming(
            graph, patterns, process, vertex_filter=vertex_filter
        )
        return seen, result

    @pytest.mark.parametrize("engine_cls", [PeregrineEngine, BigJoinEngine])
    def test_streams_identical(self, engine_cls, small_graph):
        patterns = [atlas.FOUR_CYCLE, atlas.TAILED_TRIANGLE]
        base_seen, base = self._occurrences(
            MorphingSession(engine_cls(), enabled=False), small_graph, patterns
        )
        morph_seen, morphed = self._occurrences(
            MorphingSession(engine_cls(), enabled=True), small_graph, patterns
        )
        assert base_seen == morph_seen
        assert base.results == morphed.results  # emitted counts

    def test_stream_with_vertex_filter(self, small_graph, vertex_weights):
        from repro.apps.enumeration import weight_window_filter

        accept = weight_window_filter(vertex_weights)
        patterns = [atlas.FOUR_CYCLE]
        base_seen, base = self._occurrences(
            MorphingSession(PeregrineEngine(), enabled=False),
            small_graph,
            patterns,
            vertex_filter=accept,
        )
        morph_seen, morphed = self._occurrences(
            MorphingSession(PeregrineEngine(), enabled=True),
            small_graph,
            patterns,
            vertex_filter=accept,
        )
        assert base_seen == morph_seen
        assert base.results == morphed.results

    def test_no_duplicate_emissions(self, small_graph):
        counts: dict = {}

        def process(pattern, match):
            key = frozenset(
                tuple(sorted((match[u], match[v]))) for u, v in pattern.edges
            )
            counts[key] = counts.get(key, 0) + 1

        MorphingSession(PeregrineEngine(), enabled=True).run_streaming(
            small_graph, [atlas.FOUR_CYCLE], process
        )
        assert counts and all(v == 1 for v in counts.values())


class TestSessionBookkeeping:
    def test_morphed_run_reports_selection(self, small_graph):
        session = MorphingSession(PeregrineEngine(), enabled=True)
        result = session.run(small_graph, list(atlas.motif_patterns(3)))
        assert result.morphing_enabled
        assert result.selection is not None
        assert result.measured
        assert result.transform_seconds >= 0.0
        assert result.total_seconds >= result.match_seconds

    def test_baseline_run_has_no_selection(self, small_graph):
        session = MorphingSession(PeregrineEngine(), enabled=False)
        result = session.run(small_graph, [atlas.TRIANGLE])
        assert not result.morphing_enabled
        assert result.selection is None

    def test_transformation_time_is_small(self, small_graph):
        """The paper reports sub-10ms transformation for size-4/5 inputs;
        allow generous slack for Python but keep it bounded."""
        session = MorphingSession(PeregrineEngine(), enabled=True)
        result = session.run(small_graph, list(atlas.motif_patterns(4)))
        assert result.transform_seconds < 5.0

    def test_empty_query_set(self, small_graph):
        result = MorphingSession(PeregrineEngine()).run(small_graph, [])
        assert result.results == {}
