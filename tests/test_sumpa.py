"""Tests for the SumPA-style pattern-abstraction engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import atlas
from repro.core.canonical import are_isomorphic
from repro.core.pattern import Pattern
from repro.engines.peregrine.engine import PeregrineEngine
from repro.engines.sumpa.abstraction import (
    connected_subpatterns,
    embedding_of,
    maximum_common_subpattern,
)
from repro.engines.sumpa.engine import SumPAEngine

from .oracle import brute_force_count
from .strategies import connected_skeletons, data_graphs


class TestSubpatternEnumeration:
    def test_triangle_subpatterns(self):
        subs = connected_subpatterns(atlas.TRIANGLE, 3)
        # vertex, edge, path-3, triangle
        assert len(subs) == 4

    def test_all_connected(self):
        for sub in connected_subpatterns(atlas.CHORDAL_FOUR_CYCLE, 4):
            assert sub.is_connected or sub.n == 1

    def test_labels_preserved(self):
        p = Pattern.path(3, labels=[1, 2, 1])
        subs = connected_subpatterns(p, 2)
        labels = {tuple(sorted(s.labels)) for s in subs if s.n == 2 and s.labels}
        assert (1, 2) in labels


class TestMaximumCommonSubpattern:
    def test_tt_c4c_clique(self):
        """TT embeds into C4C and K4, so TT itself is the abstraction."""
        mcs = maximum_common_subpattern(
            [atlas.TAILED_TRIANGLE, atlas.CHORDAL_FOUR_CYCLE, atlas.FOUR_CLIQUE]
        )
        assert are_isomorphic(mcs, atlas.TAILED_TRIANGLE)

    def test_star_and_path(self):
        """4S ∩ 4P: the 3-path is the largest common piece."""
        mcs = maximum_common_subpattern([atlas.FOUR_STAR, atlas.FOUR_PATH])
        assert are_isomorphic(mcs, atlas.THREE_PATH)

    def test_identical_patterns(self):
        mcs = maximum_common_subpattern([atlas.FOUR_CYCLE, atlas.FOUR_CYCLE])
        assert are_isomorphic(mcs, atlas.FOUR_CYCLE)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            maximum_common_subpattern([])

    def test_embedding_is_edge_preserving(self):
        mcs = maximum_common_subpattern([atlas.TAILED_TRIANGLE, atlas.FOUR_CLIQUE])
        phi = embedding_of(mcs, atlas.FOUR_CLIQUE)
        for u, v in mcs.edges:
            assert atlas.FOUR_CLIQUE.has_edge(phi[u], phi[v])

    def test_embedding_into_renumbered_pattern(self):
        shuffled = atlas.CHORDAL_FOUR_CYCLE.relabel([2, 0, 3, 1])
        phi = embedding_of(atlas.TAILED_TRIANGLE, shuffled)
        for u, v in atlas.TAILED_TRIANGLE.edges:
            assert shuffled.has_edge(phi[u], phi[v])

    def test_no_embedding_raises(self):
        with pytest.raises(ValueError):
            embedding_of(atlas.FOUR_CLIQUE, atlas.FOUR_CYCLE)


class TestSumPACounting:
    def test_matches_oracle_shared_triangle(self, small_graph):
        patterns = [atlas.TAILED_TRIANGLE, atlas.CHORDAL_FOUR_CYCLE, atlas.FOUR_CLIQUE]
        counts = SumPAEngine().count_set(small_graph, patterns)
        for p in patterns:
            assert counts[p] == brute_force_count(small_graph, p)

    def test_matches_oracle_all_four_patterns(self, small_graph):
        patterns = list(atlas.all_connected_patterns(4))
        counts = SumPAEngine().count_set(small_graph, patterns)
        reference = PeregrineEngine().count_set(small_graph, patterns)
        assert counts == reference

    def test_abstraction_recorded(self, small_graph):
        engine = SumPAEngine()
        engine.count_set(
            small_graph, [atlas.TAILED_TRIANGLE, atlas.FOUR_CLIQUE]
        )
        assert are_isomorphic(engine.last_abstraction, atlas.TAILED_TRIANGLE)

    def test_vertex_induced_falls_back(self, small_graph):
        patterns = [
            atlas.FOUR_CYCLE.vertex_induced(),
            atlas.FOUR_STAR.vertex_induced(),
        ]
        counts = SumPAEngine().count_set(small_graph, patterns)
        for p in patterns:
            assert counts[p] == brute_force_count(small_graph, p)

    def test_mixed_variants(self, small_graph):
        patterns = [
            atlas.TAILED_TRIANGLE,
            atlas.FOUR_CLIQUE,
            atlas.FOUR_CYCLE.vertex_induced(),
        ]
        counts = SumPAEngine().count_set(small_graph, patterns)
        for p in patterns:
            assert counts[p] == brute_force_count(small_graph, p)

    def test_single_pattern_falls_back(self, small_graph):
        counts = SumPAEngine().count_set(small_graph, [atlas.FOUR_CYCLE])
        assert counts[atlas.FOUR_CYCLE] == brute_force_count(
            small_graph, atlas.FOUR_CYCLE
        )

    def test_labeled_patterns(self, small_labeled_graph):
        a = Pattern(3, [(0, 1), (1, 2)], labels=[0, 0, 0])
        b = Pattern(3, [(0, 1), (1, 2), (0, 2)], labels=[0, 0, 0])
        counts = SumPAEngine().count_set(small_labeled_graph, [a, b])
        assert counts[a] == brute_force_count(small_labeled_graph, a)
        assert counts[b] == brute_force_count(small_labeled_graph, b)

    @given(data_graphs(min_n=6, max_n=11), connected_skeletons(max_n=4),
           connected_skeletons(max_n=4))
    @settings(max_examples=15, deadline=None)
    def test_random_pairs(self, graph, a, b):
        a, b = a.edge_induced(), b.edge_induced()
        counts = SumPAEngine().count_set(graph, [a, b])
        assert counts[a] == brute_force_count(graph, a)
        if b != a:
            assert counts[b] == brute_force_count(graph, b)

    def test_morphing_session_compatible(self, small_graph):
        """SumPA slots into MorphingSession like any other engine."""
        from repro.morph.session import compare_baseline_and_morphed

        base, morphed = compare_baseline_and_morphed(
            SumPAEngine, small_graph, list(atlas.motif_patterns(3))
        )
        assert base.results == morphed.results
